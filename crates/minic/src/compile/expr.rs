//! Expression and statement lowering (the second half of the compiler;
//! see the module docs in `mod.rs` for the contract).

use vmcommon::Value;

use super::{mutates, pure_nt, residency, store_kind, tyk, Cx, FnCx, Loop, Place, SizeV};
use crate::ast::*;
use crate::bytecode::{Chunk, Op, ParamSpec, TyK, R};
use crate::rt;
use crate::sema::FrameInfo;
use crate::types::Ty;

/// Compile one function definition to a chunk.
pub(super) fn compile_fn(cx: &mut Cx<'_>, fd: &FuncDef) -> Chunk {
    let resident = residency(fd);
    let mut slot_reg: Vec<Option<R>> = vec![None; fd.frame.slots.len()];
    let mut next: R = 0;
    for (i, r) in resident.iter().enumerate() {
        if *r {
            slot_reg[i] = Some(next);
            next += 1;
        }
    }
    let zero_init: Vec<(R, TyK)> = fd
        .frame
        .slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| slot_reg[i].map(|r| (r, tyk(&s.ty).expect("reg slot is scalar"))))
        .collect();
    let mut f = FnCx {
        cx,
        frame: &fd.frame,
        ret: fd.sig.ret.clone(),
        slot_reg,
        first_tmp: next,
        tmp: next,
        max_reg: next,
        code: Vec::new(),
        loops: Vec::new(),
        cur_line: fd.sig.pos.line,
        lines: Vec::new(),
    };

    // Parameter binding specs (in declaration order, like the walker).
    let mut params = Vec::with_capacity(fd.sig.params.len());
    for p in &fd.sig.params {
        let slot = &fd.frame.slots[p.slot as usize];
        match f.slot_reg[p.slot as usize] {
            Some(reg) => params.push(ParamSpec::Reg { reg, ty: tyk(&slot.ty).unwrap() }),
            None => match store_kind(&slot.ty) {
                Some(ty) => params.push(ParamSpec::Mem { off: slot.offset as u32, ty }),
                None => {
                    // The walker's `store_typed` would trap while binding
                    // this parameter, before any body effect.
                    f.trap(format!("cannot store value of type {}", slot.ty));
                    params.push(ParamSpec::Reg { reg: f.alloc(), ty: TyK::Int });
                }
            },
        }
    }

    for s in &fd.body.stmts {
        f.stmt(s);
    }
    // Missing return: the walker falls back to I32(0), converted.
    f.tmp = f.first_tmp;
    let z = f.const_into(Value::I32(0));
    let out = f.conv_ret(z);
    f.emit(Op::Ret { src: out });

    let lines = std::mem::take(&mut f.lines);
    let line_table = f.cx.line_table(lines);
    Chunk {
        name: fd.sig.name.clone(),
        nregs: f.max_reg,
        frame_size: fd.frame.size,
        params,
        zero_init,
        code: f.code,
        line_table,
    }
}

/// Compile the synthetic global-initializer chunk (None if no global
/// has an initializer).
pub(super) fn compile_global_init(cx: &mut Cx<'_>) -> Option<Chunk> {
    let inits: Vec<(u64, Ty, Init)> = cx
        .m
        .info
        .globals
        .iter()
        .enumerate()
        .filter_map(|(i, g)| g.init.clone().map(|init| (cx.m.global_addrs[i], g.ty.clone(), init)))
        .collect();
    if inits.is_empty() {
        return None;
    }
    let empty = FrameInfo::default();
    let mut f = FnCx {
        cx,
        frame: &empty,
        ret: Ty::Void,
        slot_reg: Vec::new(),
        first_tmp: 0,
        tmp: 0,
        max_reg: 0,
        code: Vec::new(),
        loops: Vec::new(),
        cur_line: 0,
        lines: Vec::new(),
    };
    for (base, ty, init) in &inits {
        f.tmp = 0;
        f.store_init_abs(*base, ty, init);
    }
    let z = f.const_into(Value::I32(0));
    f.emit(Op::Ret { src: z });
    let lines = std::mem::take(&mut f.lines);
    let line_table = f.cx.line_table(lines);
    Some(Chunk {
        name: "<global-init>".into(),
        nregs: f.max_reg,
        frame_size: 0,
        params: Vec::new(),
        zero_init: Vec::new(),
        code: f.code,
        line_table,
    })
}

impl FnCx<'_, '_> {
    // -------------------------------------------------------- statements

    fn stmt(&mut self, s: &Stmt) {
        self.tmp = self.first_tmp;
        match s {
            Stmt::Block(b) => {
                for st in &b.stmts {
                    self.stmt(st);
                }
            }
            Stmt::Empty => {}
            Stmt::Decl(d) => self.decl(d),
            Stmt::Expr(e) => {
                self.rvalue(e);
            }
            Stmt::If { cond, then_s, else_s } => {
                let c = self.rvalue(cond);
                let jz = self.emit(Op::Jz { cond: c, to: u32::MAX });
                self.stmt(then_s);
                match else_s {
                    Some(e) => {
                        let jmp = self.emit(Op::Jmp { to: u32::MAX });
                        let here = self.here();
                        self.patch(jz, here);
                        self.stmt(e);
                        let here = self.here();
                        self.patch(jmp, here);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jz, here);
                    }
                }
            }
            Stmt::While { cond, body } => {
                let top = self.here();
                self.tmp = self.first_tmp;
                let c = self.rvalue(cond);
                let jz = self.emit(Op::Jz { cond: c, to: u32::MAX });
                self.loops.push(Loop { breaks: Vec::new(), continues: Vec::new() });
                self.stmt(body);
                self.emit(Op::Jmp { to: top });
                let end = self.here();
                self.patch(jz, end);
                let l = self.loops.pop().unwrap();
                for at in l.breaks {
                    self.patch(at, end);
                }
                for at in l.continues {
                    self.patch(at, top);
                }
            }
            Stmt::DoWhile { body, cond } => {
                let top = self.here();
                self.loops.push(Loop { breaks: Vec::new(), continues: Vec::new() });
                self.stmt(body);
                let check = self.here();
                self.tmp = self.first_tmp;
                let c = self.rvalue(cond);
                self.emit(Op::Jnz { cond: c, to: top });
                let end = self.here();
                let l = self.loops.pop().unwrap();
                for at in l.breaks {
                    self.patch(at, end);
                }
                for at in l.continues {
                    self.patch(at, check);
                }
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let top = self.here();
                let jz = cond.as_ref().map(|c| {
                    self.tmp = self.first_tmp;
                    let r = self.rvalue(c);
                    self.emit(Op::Jz { cond: r, to: u32::MAX })
                });
                self.loops.push(Loop { breaks: Vec::new(), continues: Vec::new() });
                self.stmt(body);
                let stepat = self.here();
                if let Some(st) = step {
                    self.tmp = self.first_tmp;
                    self.rvalue(st);
                }
                self.emit(Op::Jmp { to: top });
                let end = self.here();
                if let Some(jz) = jz {
                    self.patch(jz, end);
                }
                let l = self.loops.pop().unwrap();
                for at in l.breaks {
                    self.patch(at, end);
                }
                for at in l.continues {
                    self.patch(at, stepat);
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.rvalue(e),
                    None => self.const_into(Value::I32(0)),
                };
                let out = self.conv_ret(v);
                self.emit(Op::Ret { src: out });
            }
            Stmt::Break => match self.loops.last().is_some() {
                true => {
                    let at = self.emit(Op::Jmp { to: u32::MAX });
                    self.loops.last_mut().unwrap().breaks.push(at);
                }
                false => self.trap("break/continue escaped function body".into()),
            },
            Stmt::Continue => match self.loops.last().is_some() {
                true => {
                    let at = self.emit(Op::Jmp { to: u32::MAX });
                    self.loops.last_mut().unwrap().continues.push(at);
                }
                false => self.trap("break/continue escaped function body".into()),
            },
            Stmt::Omp(o) => {
                // Directives execute their body sequentially, exactly as
                // in the walker (a legal 1-thread OpenMP execution).
                self.set_line(o.pos);
                if let Some(b) = &o.body {
                    self.stmt(b);
                }
            }
        }
    }

    fn conv_ret(&mut self, v: R) -> R {
        match tyk(&self.ret.clone()) {
            Some(t) => {
                let dst = self.alloc();
                self.emit(Op::Conv { dst, src: v, ty: t });
                dst
            }
            None => v, // convert() is the identity for void/aggregate
        }
    }

    fn decl(&mut self, d: &VarDecl) {
        self.set_line(d.pos);
        let Some(init) = &d.init else { return };
        let slot = &self.frame.slots[d.slot as usize];
        let (ty, off) = (slot.ty.clone(), slot.offset as u32);
        if let (Ty::Dim3, Init::Expr(e)) = (&ty, init) {
            let d3 = self.alloc_n(3);
            self.dim3_into(e, d3);
            self.emit(Op::Dim3Store { off, src3: d3 });
            return;
        }
        match self.slot_reg[d.slot as usize] {
            Some(reg) => match init {
                Init::Expr(e) => {
                    let v = self.rvalue(e);
                    // store_typed + later load == Conv for every scalar.
                    self.emit(Op::Conv { dst: reg, src: v, ty: tyk(&ty).unwrap() });
                }
                Init::List(_) => self.trap("brace initializer on scalar".into()),
            },
            None => self.store_init_frame(off, &ty, init),
        }
    }

    fn store_init_frame(&mut self, off: u32, ty: &Ty, init: &Init) {
        match (ty, init) {
            (Ty::Array(elem, _), Init::List(list)) => match elem.size() {
                Some(es) => {
                    for (i, it) in list.iter().enumerate() {
                        self.store_init_frame(off + (i as u64 * es) as u32, elem, it);
                    }
                }
                // Documented divergence: the walker would evaluate the
                // VLA extent here; no program in the suite does this.
                None => self.trap("brace initializer on VLA".into()),
            },
            (_, Init::Expr(e)) => {
                let v = self.rvalue(e);
                match store_kind(ty) {
                    Some(t) => {
                        self.emit(Op::StoreSlot { off, src: v, ty: t });
                    }
                    None => self.trap(format!("cannot store value of type {ty}")),
                }
            }
            (_, Init::List(_)) => self.trap("brace initializer on scalar".into()),
        }
    }

    fn store_init_abs(&mut self, base: u64, ty: &Ty, init: &Init) {
        match (ty, init) {
            (Ty::Array(elem, _), Init::List(list)) => match elem.size() {
                Some(es) => {
                    for (i, it) in list.iter().enumerate() {
                        self.store_init_abs(base + i as u64 * es, elem, it);
                    }
                }
                None => self.trap("brace initializer on VLA".into()),
            },
            (_, Init::Expr(e)) => {
                let v = self.rvalue(e);
                match store_kind(ty) {
                    Some(t) => {
                        let at = self.cx.konst(Value::Ptr(base));
                        self.emit(Op::StoreAbs { at, src: v, ty: t });
                    }
                    None => self.trap(format!("cannot store value of type {ty}")),
                }
            }
            (_, Init::List(_)) => self.trap("brace initializer on scalar".into()),
        }
    }

    // ------------------------------------------------------- expressions

    pub(super) fn rvalue(&mut self, e: &Expr) -> R {
        self.set_line(e.pos);
        match &e.kind {
            ExprKind::IntLit(v) => self.const_into(Value::I32(*v as i32)),
            ExprKind::FloatLit(v, true) => self.const_into(Value::F32(*v as f32)),
            ExprKind::FloatLit(v, false) => self.const_into(Value::F64(*v)),
            ExprKind::StrLit(s) => match self.cx.m.rodata_addr(s) {
                Some(a) => self.const_into(Value::Ptr(a)),
                None => {
                    self.trap("unregistered string literal".into());
                    self.alloc()
                }
            },
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => match self.slot_reg[*slot as usize] {
                    Some(r) => r,
                    None => {
                        let s = &self.frame.slots[*slot as usize];
                        let p = Place::Slot(s.offset as u32, s.ty.clone());
                        self.load_place(p)
                    }
                },
                Resolved::Global(i) => {
                    let a = self.cx.m.global_addrs[*i as usize];
                    let ty = self.cx.m.info.globals[*i as usize].ty.clone();
                    let at = self.cx.konst(Value::Ptr(a));
                    self.load_place(Place::Abs(at, ty))
                }
                Resolved::Func => {
                    self.trap(format!("function `{name}` used as a value on the host"));
                    self.alloc()
                }
                Resolved::CudaBuiltin(_) => {
                    self.trap(format!("CUDA builtin `{name}` referenced in host code"));
                    self.alloc()
                }
                Resolved::Unresolved => {
                    self.trap(format!("unresolved identifier `{name}` (sema not run?)"));
                    self.alloc()
                }
            },
            ExprKind::Call { callee, args } => self.call_c(callee, args),
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                let gb = self.alloc_n(6);
                self.dim3_into(grid, gb);
                self.dim3_into(block, gb + 3);
                let nargs = args.len().min(u8::MAX as usize);
                if args.len() > u8::MAX as usize {
                    self.trap("kernel launch with more than 255 arguments".into());
                }
                let abase = self.alloc_n(nargs as u16);
                for (k, a) in args.iter().take(nargs).enumerate() {
                    self.rv_to(a, abase + k as R);
                }
                let name = self.cx.string(callee);
                self.emit(Op::Launch { name, gb, abase, nargs: nargs as u8 });
                self.const_into(Value::I32(0))
            }
            ExprKind::Dim3 { .. } => {
                let d3 = self.alloc_n(3);
                self.dim3_into(e, d3);
                // The walker encodes x (as i32) in scalar contexts.
                let dst = self.alloc();
                self.emit(Op::Conv { dst, src: d3, ty: TyK::Int });
                dst
            }
            ExprKind::Member { .. } | ExprKind::Index { .. } => {
                let p = self.place(e, true);
                self.load_place(p)
            }
            ExprKind::Unary { op, expr } => match op {
                UnOp::Neg => {
                    let src = self.rvalue(expr);
                    let dst = self.alloc();
                    self.emit(Op::Neg { dst, src });
                    dst
                }
                UnOp::Not => {
                    let src = self.rvalue(expr);
                    let dst = self.alloc();
                    self.emit(Op::NotL { dst, src });
                    dst
                }
                UnOp::BitNot => {
                    let src = self.rvalue(expr);
                    let dst = self.alloc();
                    self.emit(Op::BitNot { dst, src });
                    dst
                }
                UnOp::Deref => {
                    let p = self.place(e, true);
                    self.load_place(p)
                }
                UnOp::Addr => {
                    let p = self.place(expr, true);
                    self.addr_of_place(p)
                }
            },
            ExprKind::Binary { op, lhs, rhs } => self.bin_c(*op, lhs, rhs),
            ExprKind::Assign { op, lhs, rhs } => self.assign_c(*op, lhs, rhs),
            ExprKind::IncDec { pre, inc, expr } => self.incdec_c(*pre, *inc, expr),
            ExprKind::Ternary { cond, then_e, else_e } => {
                let dst = self.alloc();
                let c = self.rvalue(cond);
                let jz = self.emit(Op::Jz { cond: c, to: u32::MAX });
                self.rv_to(then_e, dst);
                let jmp = self.emit(Op::Jmp { to: u32::MAX });
                let here = self.here();
                self.patch(jz, here);
                self.rv_to(else_e, dst);
                let here = self.here();
                self.patch(jmp, here);
                dst
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.rvalue(expr);
                match tyk(ty) {
                    Some(t) => {
                        let dst = self.alloc();
                        self.emit(Op::Conv { dst, src: v, ty: t });
                        dst
                    }
                    None => v, // convert() is the identity for non-scalars
                }
            }
            ExprKind::SizeofTy(ty) => {
                let ty = ty.clone();
                match self.sizeof_c(&ty) {
                    SizeV::St(s) => self.const_into(Value::I64(s as i64)),
                    SizeV::Dy(r) => r,
                }
            }
            ExprKind::SizeofExpr(inner) => {
                let ty = inner.ty.clone();
                match self.sizeof_c(&ty) {
                    SizeV::St(s) => self.const_into(Value::I64(s as i64)),
                    SizeV::Dy(r) => r,
                }
            }
            ExprKind::Comma(a, b) => {
                self.rvalue(a);
                self.rvalue(b)
            }
        }
    }

    /// Compile `e` and make sure the result lands in `dst`.
    fn rv_to(&mut self, e: &Expr, dst: R) {
        let r = self.rvalue(e);
        if r != dst {
            self.emit(Op::Mov { dst, src: r });
        }
    }

    fn addr_of_place(&mut self, p: Place) -> R {
        match p {
            // Residency analysis keeps address-taken slots in memory, so
            // a Reg place can only be reached by a program the walker
            // would also reject.
            Place::Reg(..) => {
                self.trap("expression is not an lvalue".into());
                self.alloc()
            }
            Place::Slot(off, _) => {
                let dst = self.alloc();
                self.emit(Op::FrameAddr { dst, off });
                dst
            }
            Place::Abs(at, _) => {
                let a = match self.cx.consts[at as usize] {
                    Value::Ptr(p) => p,
                    _ => unreachable!(),
                };
                self.const_into(Value::Ptr(a))
            }
            Place::Mem(addr, off, _) => {
                if off == 0 {
                    addr
                } else {
                    let o = self.const_into(Value::I64(off as i64));
                    let dst = self.alloc();
                    self.emit(Op::Bin { op: BinOp::Add, dst, a: addr, b: o, stride: 1 });
                    dst
                }
            }
            Place::Idx(base, idx, stride, _) => self.addr_of_idx(base, idx, stride),
            Place::Trapped => self.alloc(),
        }
    }

    fn bin_c(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> R {
        // Short-circuit logicals.
        if op == BinOp::LogAnd {
            let dst = self.alloc();
            let l = self.rvalue(lhs);
            let jz = self.emit(Op::Jz { cond: l, to: u32::MAX });
            let r = self.rvalue(rhs);
            self.emit(Op::Truth { dst, src: r });
            let jmp = self.emit(Op::Jmp { to: u32::MAX });
            let here = self.here();
            self.patch(jz, here);
            let idx = self.cx.konst(Value::I32(0));
            self.emit(Op::Const { dst, idx });
            let here = self.here();
            self.patch(jmp, here);
            return dst;
        }
        if op == BinOp::LogOr {
            let dst = self.alloc();
            let l = self.rvalue(lhs);
            let jnz = self.emit(Op::Jnz { cond: l, to: u32::MAX });
            let r = self.rvalue(rhs);
            self.emit(Op::Truth { dst, src: r });
            let jmp = self.emit(Op::Jmp { to: u32::MAX });
            let here = self.here();
            self.patch(jnz, here);
            let idx = self.cx.konst(Value::I32(1));
            self.emit(Op::Const { dst, idx });
            let here = self.here();
            self.patch(jmp, here);
            return dst;
        }
        let l = self.rvalue(lhs);
        let l = self.shield(l, rhs);
        let r = self.rvalue(rhs);
        let lt = lhs.ty.decayed();
        let rt_ = rhs.ty.decayed();
        // Pointer difference divides by the left stride.
        if lt.is_ptr() && rt_.is_ptr() && op == BinOp::Sub {
            let stride = self.ptr_stride_c(lhs);
            let dst = self.alloc();
            match stride {
                SizeV::St(s) if s <= u32::MAX as u64 => {
                    self.emit(Op::PtrDiff { dst, a: l, b: r, stride: s as u32 });
                }
                SizeV::St(s) => {
                    let sr = self.const_into(Value::I64(s as i64));
                    self.emit(Op::PtrDiffD { dst, a: l, b: r, stride: sr });
                }
                SizeV::Dy(sr) => {
                    self.emit(Op::PtrDiffD { dst, a: l, b: r, stride: sr });
                }
            }
            return dst;
        }
        let stride = if lt.is_ptr() {
            self.ptr_stride_c(lhs)
        } else if rt_.is_ptr() {
            self.ptr_stride_c(rhs)
        } else {
            SizeV::St(1)
        };
        let dst = self.alloc();
        match stride {
            SizeV::St(s) if s <= u32::MAX as u64 => {
                self.emit(Op::Bin { op, dst, a: l, b: r, stride: s as u32 });
            }
            SizeV::St(s) => {
                let sr = self.const_into(Value::I64(s as i64));
                self.emit(Op::BinD { op, dst, a: l, b: r, stride: sr });
            }
            SizeV::Dy(sr) => {
                self.emit(Op::BinD { op, dst, a: l, b: r, stride: sr });
            }
        }
        dst
    }

    fn assign_c(&mut self, op: Option<BinOp>, lhs: &Expr, rhs: &Expr) -> R {
        // FMA fast path: `acc += a * b` on a register-resident scalar.
        if op == Some(BinOp::Add) {
            if let ExprKind::Ident(_, Resolved::Local(slot)) = &lhs.kind {
                if let Some(reg) = self.slot_reg[*slot as usize] {
                    let ty = &self.frame.slots[*slot as usize].ty;
                    if let ExprKind::Binary { op: BinOp::Mul, lhs: x, rhs: y } = &rhs.kind {
                        if !ty.is_ptr()
                            && !x.ty.decayed().is_ptr()
                            && !y.ty.decayed().is_ptr()
                            && !mutates(rhs)
                        {
                            let a = self.rvalue(x);
                            let b = self.rvalue(y);
                            self.emit(Op::FmaAssign { dst: reg, a, b, ty: tyk(ty).unwrap() });
                            return reg;
                        }
                    }
                }
            }
        }
        let rest_pure = pure_nt(rhs);
        let p = self.place(lhs, rest_pure);
        let v = match op {
            None => self.rvalue(rhs),
            Some(op) => {
                let cur = self.load_place(p.clone());
                let cur = self.shield(cur, rhs);
                let stride = self.ptr_stride_c(lhs);
                let r = self.rvalue(rhs);
                let dst = self.alloc();
                match stride {
                    SizeV::St(s) if s <= u32::MAX as u64 => {
                        self.emit(Op::Bin { op, dst, a: cur, b: r, stride: s as u32 });
                    }
                    SizeV::St(s) => {
                        let sr = self.const_into(Value::I64(s as i64));
                        self.emit(Op::BinD { op, dst, a: cur, b: r, stride: sr });
                    }
                    SizeV::Dy(sr) => {
                        self.emit(Op::BinD { op, dst, a: cur, b: r, stride: sr });
                    }
                }
                dst
            }
        };
        self.store_converted(&p, v)
    }

    /// `convert(v, place type)`, store it, and return the converted value
    /// (the walker's assignment result).
    fn store_converted(&mut self, p: &Place, v: R) -> R {
        let pty = match p {
            Place::Reg(r, t) => {
                self.emit(Op::Conv { dst: *r, src: v, ty: *t });
                return *r;
            }
            Place::Slot(_, ty) | Place::Abs(_, ty) | Place::Mem(_, _, ty) => ty.clone(),
            Place::Idx(_, _, _, ty) => ty.clone(),
            Place::Trapped => return v,
        };
        let out = match tyk(&pty) {
            Some(t) => {
                let dst = self.alloc();
                self.emit(Op::Conv { dst, src: v, ty: t });
                dst
            }
            None => v, // convert() is the identity for dim3/aggregates
        };
        self.store_place(p, out);
        out
    }

    fn incdec_c(&mut self, pre: bool, inc: bool, expr: &Expr) -> R {
        let p = self.place(expr, true);
        let old = self.load_place(p.clone());
        let old = if self.is_slot_reg(old) {
            // The store below overwrites the slot register; keep the old
            // value for postfix results.
            let dst = self.alloc();
            self.emit(Op::Mov { dst, src: old });
            dst
        } else {
            old
        };
        let stride = self.ptr_stride_c(expr);
        let delta = self.const_into(Value::I64(if inc { 1 } else { -1 }));
        let new = self.alloc();
        match stride {
            SizeV::St(s) if s <= u32::MAX as u64 => {
                self.emit(Op::Bin { op: BinOp::Add, dst: new, a: old, b: delta, stride: s as u32 });
            }
            SizeV::St(s) => {
                let sr = self.const_into(Value::I64(s as i64));
                self.emit(Op::BinD { op: BinOp::Add, dst: new, a: old, b: delta, stride: sr });
            }
            SizeV::Dy(sr) => {
                self.emit(Op::BinD { op: BinOp::Add, dst: new, a: old, b: delta, stride: sr });
            }
        }
        let stored = self.store_converted(&p, new);
        if pre {
            stored
        } else {
            old
        }
    }

    fn call_c(&mut self, callee: &str, args: &[Expr]) -> R {
        // Resolution order matches the walker: program definitions shadow
        // printf, printf shadows builtins, builtins shadow hooks.
        if self.cx.m.func(callee).is_some() {
            if args.len() > u8::MAX as usize {
                for a in args {
                    self.rvalue(a);
                }
                self.trap(format!("call to `{callee}` with too many args"));
                return self.alloc();
            }
            let abase = self.alloc_n(args.len() as u16);
            for (k, a) in args.iter().enumerate() {
                self.rv_to(a, abase + k as R);
            }
            let dst = self.alloc();
            let func = self.cx.fn_chunk[callee];
            self.emit(Op::Call { dst, func, abase, nargs: args.len() as u8 });
            return dst;
        }
        if callee == "printf" {
            return self.printf_c(args);
        }
        let abase = self.alloc_n(args.len().min(255) as u16);
        for (k, a) in args.iter().take(255).enumerate() {
            self.rv_to(a, abase + k as R);
        }
        let nargs = args.len().min(255) as u8;
        let dst = self.alloc();
        if let Some(which) = rt::builtin_index(callee) {
            self.emit(Op::CallBuiltin { dst, which, abase, nargs });
        } else {
            let name = self.cx.string(callee);
            self.emit(Op::CallHook { dst, name, abase, nargs });
        }
        dst
    }

    fn printf_c(&mut self, args: &[Expr]) -> R {
        if args.is_empty() {
            self.trap("printf needs a format".into());
            return self.alloc();
        }
        if let ExprKind::StrLit(s) = &args[0].kind {
            // Static format: compile exactly the conversion-matched
            // arguments — surplus arguments are never evaluated, exactly
            // like the walker's zip.
            let n = rt::printf_arg_kinds(s).len().min(args.len() - 1).min(255);
            let fmt = self.cx.string(s);
            let abase = self.alloc_n(n as u16);
            for (k, a) in args[1..1 + n].iter().enumerate() {
                self.rv_to(a, abase + k as R);
            }
            let dst = self.alloc();
            self.emit(Op::Printf { dst, fmt, abase, nargs: n as u8 });
            return dst;
        }
        // Dynamic format: all arguments evaluate eagerly (documented
        // divergence — the walker zips lazily against the runtime format).
        let fmt = self.rvalue(&args[0]);
        let n = (args.len() - 1).min(255);
        let abase = self.alloc_n(n as u16);
        for (k, a) in args[1..1 + n].iter().enumerate() {
            self.rv_to(a, abase + k as R);
        }
        let dst = self.alloc();
        self.emit(Op::PrintfD { dst, fmt, abase, nargs: n as u8 });
        dst
    }

    /// Compile a grid/block configuration into three consecutive
    /// registers (each `I64(max(v,1) as u32)`, like the walker).
    fn dim3_into(&mut self, e: &Expr, dst3: R) {
        match &e.kind {
            ExprKind::Dim3 { x, y, z } => {
                let xv = self.rvalue(x);
                self.emit(Op::DimFix { dst: dst3, src: xv });
                match y {
                    Some(y) => {
                        let yv = self.rvalue(y);
                        self.emit(Op::DimFix { dst: dst3 + 1, src: yv });
                    }
                    None => {
                        let idx = self.cx.konst(Value::I64(1));
                        self.emit(Op::Const { dst: dst3 + 1, idx });
                    }
                }
                match z {
                    Some(z) => {
                        let zv = self.rvalue(z);
                        self.emit(Op::DimFix { dst: dst3 + 2, src: zv });
                    }
                    None => {
                        let idx = self.cx.konst(Value::I64(1));
                        self.emit(Op::Const { dst: dst3 + 2, idx });
                    }
                }
            }
            ExprKind::Ident(_, Resolved::Local(slot))
                if self.frame.slots[*slot as usize].ty == Ty::Dim3 =>
            {
                let off = self.frame.slots[*slot as usize].offset as u32;
                self.emit(Op::Dim3Load { dst3, off });
            }
            _ => {
                let v = self.rvalue(e);
                self.emit(Op::DimFix { dst: dst3, src: v });
                let idx = self.cx.konst(Value::I64(1));
                self.emit(Op::Const { dst: dst3 + 1, idx });
                self.emit(Op::Const { dst: dst3 + 2, idx });
            }
        }
    }
}
