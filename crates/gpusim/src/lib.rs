//! `gpusim` — a SIMT simulator of the Jetson Nano's Maxwell GPU.
//!
//! This crate is the hardware substitute of the reproduction (see
//! DESIGN.md): one Maxwell SMM with 128 cores, warps of 32 lanes in
//! lockstep with divergence masks, 16 named barriers per block with the
//! multiple-of-warp-size arrival rule, 48 KiB shared memory per block, a
//! global-memory arena with relaxed-atomic word access, and a calibrated
//! timing model ([`timing`]).
//!
//! The execution model: each *warp* runs on one OS thread so that warps of
//! a block make independent progress and can park on named barriers — the
//! concurrency the paper's master/worker scheme requires. Blocks are
//! independent and are simulated by a small worker pool.

pub mod barrier;
pub mod device;
pub mod fault;
pub mod launch;
pub mod stream;
pub mod timing;
pub mod warp;

pub use device::{DevTrace, Device, DeviceProps, DeviceStats, ExecError};
pub use fault::{FaultKind, FaultPlan, FaultPlanError, FaultRule, FaultSite};
pub use launch::{launch, launch_tiled, ExecMode, LaunchConfig, LaunchStats, TileView};
pub use stream::{EngineKind, EventId, OpSchedule, StreamEngine};
pub use warp::{iter_lanes, BlockCtx, BlockEnv, DeviceLib, LaneVec, NoLib, Warp};

/// Block `ext` slot holding the dynamic shared-memory stack pointer
/// (convention shared between the launcher and the cudadev device library).
pub const SHMEM_SP_SLOT: usize = 0;

/// For each conversion in a printf format: does it consume a string?
pub(crate) fn printf_arg_kinds(fmt: &str) -> Vec<bool> {
    let mut out = Vec::new();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            continue;
        }
        let mut conv = None;
        for c in chars.by_ref() {
            if c.is_ascii_alphabetic() && !matches!(c, 'l' | 'z' | 'h') {
                conv = Some(c);
                break;
            }
        }
        if let Some(conv) = conv {
            out.push(conv == 's');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptx::builder::{op, FnBuilder};
    use sptx::{BinOp, CvtTy, MemTy, ScalarTy, SpecialReg};

    fn device() -> Device {
        Device::new(8 << 20)
    }

    /// Build a saxpy kernel: y[i] = a*x[i] + y[i] for i < n over a 1D grid.
    fn saxpy_module() -> sptx::Module {
        let mut b = FnBuilder::new("saxpy", true);
        let a = b.param("a", ScalarTy::F32);
        let n = b.param("n", ScalarTy::I32);
        let x = b.param("x", ScalarTy::I64);
        let y = b.param("y", ScalarTy::I64);
        // i = ctaid.x * ntid.x + tid.x
        let base =
            b.bin(ScalarTy::I32, BinOp::Mul, op::sp(SpecialReg::CtaidX), op::sp(SpecialReg::NtidX));
        let i = b.bin(ScalarTy::I32, BinOp::Add, op::r(base), op::sp(SpecialReg::TidX));
        let inb = b.bin(ScalarTy::I32, BinOp::SetLt, op::r(i), op::r(n));
        b.begin_if();
        {
            let i64v = b.cvt(CvtTy::I64, CvtTy::I32, op::r(i));
            let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(i64v), op::i(4));
            let xa = b.bin(ScalarTy::I64, BinOp::Add, op::r(x), op::r(off));
            let ya = b.bin(ScalarTy::I64, BinOp::Add, op::r(y), op::r(off));
            let xv = b.ld(MemTy::F32, op::r(xa), 0);
            let yv = b.ld(MemTy::F32, op::r(ya), 0);
            let ax = b.bin(ScalarTy::F32, BinOp::Mul, op::r(a), op::r(xv));
            let s = b.bin(ScalarTy::F32, BinOp::Add, op::r(ax), op::r(yv));
            b.st(MemTy::F32, op::r(s), op::r(ya), 0);
        }
        b.end_if(op::r(inb));
        sptx::Module {
            name: "saxpy".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        }
    }

    #[test]
    fn saxpy_functional() {
        let d = device();
        let n = 1000u32;
        let x = d.mem_alloc(4 * n as u64).unwrap();
        let y = d.mem_alloc(4 * n as u64).unwrap();
        let xs: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let ys: Vec<u8> = (0..n).flat_map(|i| (2.0 * i as f32).to_le_bytes()).collect();
        d.memcpy_h2d(x, &xs).unwrap();
        d.memcpy_h2d(y, &ys).unwrap();

        let m = saxpy_module();
        sptx::verify_module(&m).unwrap();
        let cfg = LaunchConfig {
            grid: [n.div_ceil(128), 1, 1],
            block: [128, 1, 1],
            params: vec![3.0f32.to_bits() as u64, n as u64, x, y],
        };
        let stats = launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional).unwrap();
        assert_eq!(stats.blocks_total, 8);
        assert_eq!(stats.blocks_executed, 8);
        assert!(stats.kernel_cycles > 0);

        let mut out = vec![0u8; 4 * n as usize];
        d.memcpy_d2h(&mut out, y).unwrap();
        for i in 0..n as usize {
            let v = f32::from_le_bytes(out[4 * i..4 * i + 4].try_into().unwrap());
            let expect = 3.0 * i as f32 + 2.0 * i as f32;
            assert_eq!(v, expect, "element {i}");
        }
    }

    #[test]
    fn out_of_bounds_guard_lanes_inactive() {
        // n = 100 with 128-thread blocks: lanes ≥ 100 must not fault.
        let d = device();
        let n = 100u32;
        let x = d.mem_alloc(4 * n as u64).unwrap();
        let y = d.mem_alloc(4 * n as u64).unwrap();
        let m = saxpy_module();
        let cfg = LaunchConfig {
            grid: [1, 1, 1],
            block: [128, 1, 1],
            params: vec![1.0f32.to_bits() as u64, n as u64, x, y],
        };
        launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional).unwrap();
    }

    #[test]
    fn loop_sum_kernel() {
        // One thread sums 0..100 into out[0] via a loop.
        let mut b = FnBuilder::new("sum", true);
        let out = b.param("out", ScalarTy::I64);
        let acc = b.mov(op::i(0));
        let i = b.mov(op::i(0));
        b.begin_loop();
        {
            let done = b.bin(ScalarTy::I32, BinOp::SetGe, op::r(i), op::i(100));
            b.begin_if();
            b.brk();
            b.end_if(op::r(done));
            let acc2 = b.bin(ScalarTy::I32, BinOp::Add, op::r(acc), op::r(i));
            b.mov_to(acc, op::r(acc2));
            let i2 = b.bin(ScalarTy::I32, BinOp::Add, op::r(i), op::i(1));
            b.mov_to(i, op::r(i2));
        }
        b.end_loop();
        b.st(MemTy::B32, op::r(acc), op::r(out), 0);
        let m = sptx::Module {
            name: "sum".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        };
        let d = device();
        let buf = d.mem_alloc(4).unwrap();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [1, 1, 1], params: vec![buf] };
        launch(&d, &m, "sum", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let mut out4 = [0u8; 4];
        d.memcpy_d2h(&mut out4, buf).unwrap();
        assert_eq!(u32::from_le_bytes(out4), 4950);
    }

    #[test]
    fn divergent_lanes_reconverge() {
        // Each lane: out[tid] = tid % 2 ? tid * 10 : tid; then all lanes add 1.
        let mut b = FnBuilder::new("div", true);
        let out = b.param("out", ScalarTy::I64);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        let odd = b.bin(ScalarTy::I32, BinOp::Rem, op::r(tid), op::i(2));
        let val = b.alloc();
        b.begin_if();
        {
            let v = b.bin(ScalarTy::I32, BinOp::Mul, op::r(tid), op::i(10));
            b.mov_to(val, op::r(v));
        }
        b.begin_else();
        {
            b.mov_to(val, op::r(tid));
        }
        b.end_if_else(op::r(odd));
        let plus = b.bin(ScalarTy::I32, BinOp::Add, op::r(val), op::i(1));
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
        b.st(MemTy::B32, op::r(plus), op::r(addr), 0);
        let m = sptx::Module {
            name: "div".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        };
        let d = device();
        let buf = d.mem_alloc(4 * 32).unwrap();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [32, 1, 1], params: vec![buf] };
        let stats = launch(&d, &m, "div", &cfg, &NoLib, ExecMode::Functional).unwrap();
        assert!(stats.divergent_branches > 0, "odd/even split must be counted as divergence");
        let mut raw = vec![0u8; 128];
        d.memcpy_d2h(&mut raw, buf).unwrap();
        for t in 0..32u32 {
            let v = u32::from_le_bytes(raw[4 * t as usize..4 * t as usize + 4].try_into().unwrap());
            let expect = if t % 2 == 1 { t * 10 + 1 } else { t + 1 };
            assert_eq!(v, expect, "lane {t}");
        }
    }

    #[test]
    fn named_barrier_syncs_warps() {
        // Warp 0 writes shared[0]; all 4 warps bar.sync; every thread adds
        // shared[0] to its output — ordering enforced by the barrier.
        let mut b = FnBuilder::new("bar", true);
        let out = b.param("out", ScalarTy::I64);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        let wid = b.mov(op::sp(SpecialReg::WarpId));
        let is0 = b.bin(ScalarTy::I32, BinOp::SetEq, op::r(wid), op::i(0));
        b.begin_if();
        {
            b.st(MemTy::B32, op::i(42), sptx::Operand::SharedBase, 0);
        }
        b.end_if(op::r(is0));
        b.emit(sptx::Inst::BarSync { id: op::i(0), count: Some(op::i(128)) });
        let sh = b.ld(MemTy::B32, sptx::Operand::SharedBase, 0);
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
        b.st(MemTy::B32, op::r(sh), op::r(addr), 0);
        let mut f = b.build();
        f.shared_size = 4;
        let m = sptx::Module {
            name: "bar".into(),
            arch: "sm_53".into(),
            functions: vec![f],
            device_lib_linked: true,
        };
        let d = device();
        let buf = d.mem_alloc(4 * 128).unwrap();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [128, 1, 1], params: vec![buf] };
        launch(&d, &m, "bar", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let mut raw = vec![0u8; 4 * 128];
        d.memcpy_d2h(&mut raw, buf).unwrap();
        for t in 0..128usize {
            assert_eq!(
                u32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap()),
                42,
                "thread {t}"
            );
        }
    }

    #[test]
    fn atomics_across_block() {
        // All 256 threads atomically increment a counter.
        let mut b = FnBuilder::new("count", true);
        let out = b.param("out", ScalarTy::I64);
        let dst = b.alloc();
        b.emit(sptx::Inst::Atom { op: sptx::AtomOp::AddI32, dst, addr: op::r(out), val: op::i(1) });
        let m = sptx::Module {
            name: "count".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        };
        let d = device();
        let buf = d.mem_alloc(4).unwrap();
        let cfg = LaunchConfig { grid: [2, 1, 1], block: [128, 1, 1], params: vec![buf] };
        launch(&d, &m, "count", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let mut raw = [0u8; 4];
        d.memcpy_d2h(&mut raw, buf).unwrap();
        assert_eq!(u32::from_le_bytes(raw), 256);
    }

    #[test]
    fn device_function_call() {
        // helper(v) = v * 3; kernel: out[tid] = helper(tid).
        let mut h = FnBuilder::new("helper", false);
        let v = h.param("v", ScalarTy::I32);
        let r = h.bin(ScalarTy::I32, BinOp::Mul, op::r(v), op::i(3));
        h.ret(Some(op::r(r)));

        let mut b = FnBuilder::new("k", true);
        let out = b.param("out", ScalarTy::I64);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        let hres = b.call(1, vec![op::r(tid)], true).unwrap();
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
        b.st(MemTy::B32, op::r(hres), op::r(addr), 0);

        let m = sptx::Module {
            name: "call".into(),
            arch: "sm_53".into(),
            functions: vec![b.build(), h.build()],
            device_lib_linked: true,
        };
        sptx::verify_module(&m).unwrap();
        let d = device();
        let buf = d.mem_alloc(4 * 64).unwrap();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [64, 1, 1], params: vec![buf] };
        launch(&d, &m, "k", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let mut raw = vec![0u8; 4 * 64];
        d.memcpy_d2h(&mut raw, buf).unwrap();
        for t in 0..64usize {
            assert_eq!(u32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap()), 3 * t as u32);
        }
    }

    #[test]
    fn sampled_mode_extrapolates() {
        let d = device();
        let n = 128 * 64; // 64 blocks
        let x = d.mem_alloc(4 * n as u64).unwrap();
        let y = d.mem_alloc(4 * n as u64).unwrap();
        let m = saxpy_module();
        let cfg = LaunchConfig {
            grid: [64, 1, 1],
            block: [128, 1, 1],
            params: vec![1.0f32.to_bits() as u64, n as u64, x, y],
        };
        let full = launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let sampled =
            launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Sampled { max_blocks: 8 }).unwrap();
        assert_eq!(sampled.blocks_total, 64);
        assert!(sampled.blocks_executed <= 9);
        // Extrapolated totals within 10% of the full run (blocks homogeneous).
        let ratio = sampled.lane_insts as f64 / full.lane_insts as f64;
        assert!((0.9..1.1).contains(&ratio), "lane_insts ratio {ratio}");
        let tratio = sampled.time_s / full.time_s;
        assert!((0.8..1.2).contains(&tratio), "time ratio {tratio}");
    }

    #[test]
    fn device_printf() {
        let mut b = FnBuilder::new("p", true);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
        b.intrinsic_s("printf", vec![op::r(t64)], vec!["tid=%d\n".into()], true);
        let m = sptx::Module {
            name: "p".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        };
        let d = device();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [2, 1, 1], params: vec![] };
        launch(&d, &m, "p", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let out = d.take_printf_output();
        assert!(out.contains("tid=0\n") && out.contains("tid=1\n"), "got {out:?}");
    }

    #[test]
    fn launch_validation() {
        let d = device();
        let m = saxpy_module();
        // Wrong param count.
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [32, 1, 1], params: vec![0] };
        assert!(matches!(
            launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional),
            Err(ExecError::BadLaunch(_))
        ));
        // Unknown kernel.
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [32, 1, 1], params: vec![] };
        assert!(matches!(
            launch(&d, &m, "nope", &cfg, &NoLib, ExecMode::Functional),
            Err(ExecError::UnknownKernel(_))
        ));
        // Oversized block.
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [2048, 1, 1], params: vec![0, 0, 0, 0] };
        assert!(matches!(
            launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional),
            Err(ExecError::BadLaunch(_))
        ));
        // Unlinked module.
        let mut m2 = saxpy_module();
        m2.device_lib_linked = false;
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [32, 1, 1], params: vec![0, 0, 0, 0] };
        assert!(matches!(
            launch(&d, &m2, "saxpy", &cfg, &NoLib, ExecMode::Functional),
            Err(ExecError::BadLaunch(_))
        ));
    }

    #[test]
    fn wild_pointer_faults_cleanly() {
        let mut b = FnBuilder::new("wild", true);
        let v = b.ld(MemTy::F32, op::i(0x7700_0000_0000_0000u64 as i64), 0);
        b.st(MemTy::F32, op::r(v), op::i(64), 0);
        let m = sptx::Module {
            name: "wild".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        };
        let d = device();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [1, 1, 1], params: vec![] };
        assert!(launch(&d, &m, "wild", &cfg, &NoLib, ExecMode::Functional).is_err());
    }

    #[test]
    fn local_memory_per_lane_isolated() {
        // Each lane spills tid to local memory, reads it back, adds 5.
        let mut b = FnBuilder::new("loc", true);
        let out = b.param("out", ScalarTy::I64);
        let slot = b.alloc_local(4, 4);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        b.st(MemTy::B32, op::r(tid), sptx::Operand::LocalBase, slot as i64);
        let back = b.ld(MemTy::B32, sptx::Operand::LocalBase, slot as i64);
        let v = b.bin(ScalarTy::I32, BinOp::Add, op::r(back), op::i(5));
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
        b.st(MemTy::B32, op::r(v), op::r(addr), 0);
        let m = sptx::Module {
            name: "loc".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        };
        let d = device();
        let buf = d.mem_alloc(4 * 64).unwrap();
        let cfg = LaunchConfig { grid: [1, 1, 1], block: [64, 1, 1], params: vec![buf] };
        launch(&d, &m, "loc", &cfg, &NoLib, ExecMode::Functional).unwrap();
        let mut raw = vec![0u8; 4 * 64];
        d.memcpy_d2h(&mut raw, buf).unwrap();
        for t in 0..64usize {
            assert_eq!(u32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap()), t as u32 + 5);
        }
    }
}
