//! `ompi-core` — the OMPi compiler of the reproduction: the paper's primary
//! contribution (§3, §4).
//!
//! * [`transform`] — the transformation & analysis phase: two
//!   transformation sets (host + GPU) lower every OpenMP construct;
//!   `target` regions are outlined into CUDA C kernel files, with combined
//!   constructs mapped to grid launches and stand-alone parallel regions to
//!   the master/worker scheme of Fig. 3.
//! * [`driver`] — the `ompicc` compilation chain of Fig. 2 (and `CudaCc`,
//!   the plain-CUDA baseline compiler used by the evaluation).
//! * [`runner`] — executes compiled applications against the `hostomp` and
//!   `cudadev` runtimes on the simulated Jetson Nano.

pub mod analyze;
pub mod driver;
pub mod runner;
pub mod transform;

pub use analyze::TransError;
pub use driver::{CompiledApp, CompiledCudaApp, CudaCc, Ompicc, OmpiccError};
pub use runner::{
    ConfigError, OmpiHooks, ResolvedConfig, Runner, RunnerConfig, DEFAULT_DEVICE_MEM,
    DEFAULT_LAUNCH_TIMEOUT, DEFAULT_MAX_RESETS,
};
pub use transform::{
    translate, translate_traced, KernelFile, PassInfo, PassTrace, Pipeline, TraceEntry,
    TransformSet, Translation, PASSES,
};

/// Worker threads available to master/worker parallel regions (3 warps of
/// the 128-core SMM).
pub use cudadev::MW_WORKERS;
