//! Full-pipeline tests: OpenMP C source → ompicc (translate, kernel files,
//! nvcc) → interpreted host program → simulated Maxwell GPU → results.

use ompi_core::{Ompicc, Runner, RunnerConfig};
use vmcommon::Value;

fn workdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompicc-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn run_app(tag: &str, src: &str) -> (Runner, Value) {
    let cc = Ompicc::new(workdir(tag));
    let app = cc.compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    let runner = Runner::new(&app, &RunnerConfig::default()).expect("runner");
    let v = runner
        .run_main()
        .unwrap_or_else(|e| panic!("run failed: {e}\nlowered host program:\n{}", app.host_text));
    (runner, v)
}

/// The paper's Fig. 1: SAXPY with a stand-alone `parallel for` inside a
/// `target` region — exercises the master/worker scheme end to end.
#[test]
fn fig1_saxpy_master_worker() {
    let src = r#"
void saxpy_device(float a, float *x, float *y, int size)
{
    #pragma omp target map(to: a, size, x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main() {
    float x[200];
    float y[200];
    for (int i = 0; i < 200; i++) { x[i] = (float) i; y[i] = 1.0f; }
    saxpy_device(2.0f, x, y, 200);
    int bad = 0;
    for (int i = 0; i < 200; i++)
        if (y[i] != 2.0f * (float) i + 1.0f)
            bad++;
    return bad;
}
"#;
    let (runner, v) = run_app("fig1", src);
    assert_eq!(v, Value::I32(0), "all SAXPY elements must be correct");
    let clk = runner.dev_clock();
    assert_eq!(clk.launches, 1);
    assert!(clk.kernel_s > 0.0 && clk.memcpy_s() > 0.0);
}

/// The recommended combined construct (§3.1) with collapse(2).
#[test]
fn combined_construct_collapse2() {
    let src = r#"
int main() {
    int n = 64;
    float a[64 * 64];
    float b[64 * 64];
    for (int i = 0; i < n * n; i++) { a[i] = (float) i; b[i] = 0.0f; }

    #pragma omp target teams distribute parallel for collapse(2) \
            map(to: a[0:n*n]) map(from: b[0:n*n]) num_threads(256)
    for (int i = 0; i < 64; i++)
        for (int j = 0; j < 64; j++)
            b[i * 64 + j] = 2.0f * a[i * 64 + j];

    int bad = 0;
    for (int i = 0; i < n * n; i++)
        if (b[i] != 2.0f * (float) i)
            bad++;
    return bad;
}
"#;
    let (_, v) = run_app("combined", src);
    assert_eq!(v, Value::I32(0));
}

/// Reduction on a combined construct (device atomics).
#[test]
fn combined_reduction() {
    let src = r#"
int main() {
    int n = 1000;
    float x[1000];
    for (int i = 0; i < n; i++) x[i] = 1.5f;
    float sum = 0.0f;
    #pragma omp target teams distribute parallel for map(to: x[0:n]) reduction(+: sum)
    for (int i = 0; i < n; i++)
        sum += x[i];
    // 1000 * 1.5 = 1500
    return (int) sum;
}
"#;
    let (_, v) = run_app("red", src);
    assert_eq!(v, Value::I32(1500));
}

/// target data keeps buffers resident across multiple target regions.
#[test]
fn target_data_reuse() {
    let src = r#"
int main() {
    int n = 256;
    float v[256];
    for (int i = 0; i < n; i++) v[i] = 1.0f;

    #pragma omp target data map(tofrom: v[0:n])
    {
        #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
        for (int i = 0; i < n; i++)
            v[i] = v[i] + 1.0f;
        #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
        for (int i = 0; i < n; i++)
            v[i] = v[i] * 3.0f;
    }
    // (1+1)*3 = 6
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (v[i] != 6.0f) bad++;
    return bad;
}
"#;
    let (runner, v) = run_app("tdata", src);
    assert_eq!(v, Value::I32(0));
    // The inner maps must have reused the enclosing mapping: exactly one
    // H2D of the array (256 floats) and one D2H at data-region exit.
    let clk = runner.dev_clock();
    assert_eq!(clk.h2d_bytes, 1024, "inner target regions must not re-copy");
    assert_eq!(clk.d2h_bytes, 1024);
}

/// enter/exit data + target update.
#[test]
fn enter_exit_update() {
    let src = r#"
int main() {
    int n = 64;
    float v[64];
    for (int i = 0; i < n; i++) v[i] = 5.0f;
    #pragma omp target enter data map(to: v[0:n])

    // Change host copy; device still sees 5.0 until an update.
    for (int i = 0; i < n; i++) v[i] = 7.0f;

    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = v[i] + 1.0f;           // device: 5+1 = 6

    #pragma omp target update from(v[0:n])
    float first = v[0];

    #pragma omp target exit data map(from: v[0:n])
    return (int) first;
}
"#;
    let (_, v) = run_app("enterexit", src);
    assert_eq!(v, Value::I32(6));
}

/// Host-side parallel for with a reduction (the ORT path).
#[test]
fn host_parallel_for_reduction() {
    let src = r#"
int main() {
    int n = 5000;
    int sum = 0;
    #pragma omp parallel for reduction(+: sum) num_threads(4)
    for (int i = 0; i < n; i++)
        sum += i;
    return sum == 5000 * 4999 / 2;
}
"#;
    let (_, v) = run_app("hostpar", src);
    assert_eq!(v, Value::I32(1));
}

/// Host parallel region with critical and barrier.
#[test]
fn host_parallel_critical() {
    let src = r#"
int main() {
    int count = 0;
    #pragma omp parallel num_threads(4)
    {
        #pragma omp critical
        { count = count + 1; }
        #pragma omp barrier
    }
    return count;
}
"#;
    let (_, v) = run_app("hostcrit", src);
    assert_eq!(v, Value::I32(4));
}

/// `if` clause false: the region runs on the host instead.
#[test]
fn target_if_clause_host_fallback() {
    let src = r#"
int main() {
    int n = 100;
    float v[100];
    for (int i = 0; i < n; i++) v[i] = 1.0f;
    int use_gpu = 0;
    #pragma omp target teams distribute parallel for if(use_gpu) map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = v[i] + 1.0f;
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (v[i] != 2.0f) bad++;
    return bad;
}
"#;
    let (runner, v) = run_app("ifclause", src);
    assert_eq!(v, Value::I32(0));
    assert_eq!(runner.dev_clock().launches, 0, "if(false) must not offload");
}

/// Device-side scheduling: dynamic schedule on a combined construct.
#[test]
fn combined_dynamic_schedule() {
    let src = r#"
int main() {
    int n = 500;
    float v[500];
    for (int i = 0; i < n; i++) v[i] = (float) i;
    #pragma omp target teams distribute parallel for schedule(dynamic, 7) \
            map(tofrom: v[0:n]) num_teams(1) num_threads(128)
    for (int i = 0; i < n; i++)
        v[i] = v[i] + 100.0f;
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (v[i] != (float) i + 100.0f) bad++;
    return bad;
}
"#;
    let (_, v) = run_app("dynsched", src);
    assert_eq!(v, Value::I32(0));
}

/// Two parallel regions in one target region (worker pool reuse) plus
/// sequential master code between them.
#[test]
fn two_regions_with_master_code() {
    let src = r#"
int main() {
    int n = 96;
    float v[96];
    for (int i = 0; i < n; i++) v[i] = 0.0f;
    #pragma omp target map(tofrom: v[0:n]) map(to: n)
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++)
            v[i] = 10.0f;
        /* master-only sequential code */
        v[0] = v[0] + 5.0f;
        #pragma omp parallel for
        for (i = 0; i < n; i++)
            v[i] = v[i] + 1.0f;
    }
    // v[0] = 16, others 11.
    if (v[0] != 16.0f) return 1;
    for (int i = 1; i < n; i++)
        if (v[i] != 11.0f) return 2;
    return 0;
}
"#;
    let (_, v) = run_app("tworegions", src);
    assert_eq!(v, Value::I32(0));
}

/// Shared master-local scalar (Fig. 3 shape: pushed to shared memory).
#[test]
fn shared_master_local() {
    let src = r#"
int main() {
    int x[96];
    #pragma omp target map(from: x[0:96])
    {
        int i = 2;
        #pragma omp parallel num_threads(96)
        {
            x[omp_get_thread_num()] = i + 1;
        }
    }
    for (int t = 0; t < 96; t++)
        if (x[t] != 3) return 1 + t;
    return 0;
}
"#;
    let (_, v) = run_app("fig3", src);
    assert_eq!(v, Value::I32(0));
}

/// Generated kernel text has the documented shape (golden-ish test for
/// Fig. 3 codegen).
#[test]
fn fig3_kernel_text_shape() {
    let src = r#"
int main() {
    int x[96];
    #pragma omp target map(from: x[0:96])
    {
        int i = 2;
        #pragma omp parallel num_threads(96)
        {
            x[omp_get_thread_num()] = i + 1;
        }
    }
    return 0;
}
"#;
    let cc = Ompicc::new(workdir("fig3text"));
    let app = cc.compile(src).unwrap();
    assert_eq!(app.kernels.len(), 1);
    let text = &app.kernels[0].c_text;
    for needle in [
        "cudadev_in_masterwarp",
        "cudadev_is_masterthr",
        "cudadev_push_shmem",
        "cudadev_register_parallel",
        "cudadev_pop_shmem",
        "cudadev_exit_target",
        "cudadev_workerfunc",
        "__global__",
        "__device__",
    ] {
        assert!(text.contains(needle), "kernel text must contain `{needle}`:\n{text}");
    }
    assert!(app.kernels[0].master_worker);
}

/// Combined kernels carry the two-phase chunk distribution of §3.1.
#[test]
fn combined_kernel_text_shape() {
    let src = r#"
int main() {
    int n = 32;
    float v[32];
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = 1.0f;
    return 0;
}
"#;
    let cc = Ompicc::new(workdir("combtext"));
    let app = cc.compile(src).unwrap();
    let text = &app.kernels[0].c_text;
    assert!(text.contains("cudadev_get_distribute_chunk"));
    assert!(text.contains("cudadev_get_static_chunk"));
    assert!(!app.kernels[0].master_worker);
}

/// Functions called from the target region are cloned into the kernel file
/// (the call-graph closure of §3).
#[test]
fn kernel_call_closure() {
    let src = r#"
float square(float v) { return v * v; }
float plus_sq(float v) { return square(v) + 1.0f; }

int main() {
    int n = 64;
    float v[64];
    for (int i = 0; i < n; i++) v[i] = 2.0f;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = plus_sq(v[i]);
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (v[i] != 5.0f) bad++;
    return bad;
}
"#;
    let (_, v) = run_app("closure", src);
    assert_eq!(v, Value::I32(0));
    let cc = Ompicc::new(workdir("closure2"));
    let app = cc.compile(src).unwrap();
    let text = &app.kernels[0].c_text;
    assert!(text.contains("__device__ float square"));
    assert!(text.contains("__device__ float plus_sq"));
}

/// Missing map clause for a referenced pointer is a translation error.
#[test]
fn missing_map_is_an_error() {
    let src = r#"
void f(float *v, int n) {
    #pragma omp target
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++) v[i] = 0.0f;
    }
}
int main() { return 0; }
"#;
    let cc = Ompicc::new(workdir("nomap"));
    assert!(cc.compile(src).is_err());
}

/// Virtual clock: bigger problems take more simulated time.
#[test]
fn virtual_time_scales() {
    let src = |n: u32| {
        format!(
            r#"
int main() {{
    int n = {n};
    float v[{n}];
    for (int i = 0; i < n; i++) v[i] = 1.0f;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = v[i] * 2.0f + 1.0f;
    return 0;
}}
"#
        )
    };
    let (r1, _) = run_app("time_small", &src(256));
    let (r2, _) = run_app("time_big", &src(8192));
    let t1 = r1.dev_clock().total_s();
    let t2 = r2.dev_clock().total_s();
    assert!(t2 > t1, "larger problem must take longer: {t1} vs {t2}");
}

/// Guided schedule on a combined construct.
#[test]
fn combined_guided_schedule() {
    let src = r#"
int main() {
    int n = 600;
    float v[600];
    for (int i = 0; i < n; i++) v[i] = (float) i;
    #pragma omp target teams distribute parallel for schedule(guided) \
            map(tofrom: v[0:n]) num_teams(1) num_threads(128)
    for (int i = 0; i < n; i++)
        v[i] = v[i] + 7.0f;
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (v[i] != (float) i + 7.0f) bad++;
    return bad;
}
"#;
    let (_, v) = run_app("guided", src);
    assert_eq!(v, Value::I32(0));
}

/// Static schedule with an explicit chunk on the device.
#[test]
fn combined_static_chunked() {
    let src = r#"
int main() {
    int n = 500;
    float v[500];
    for (int i = 0; i < n; i++) v[i] = 0.0f;
    #pragma omp target teams distribute parallel for schedule(static, 4) \
            map(tofrom: v[0:n]) num_teams(2) num_threads(64)
    for (int i = 0; i < n; i++)
        v[i] = v[i] + 1.0f;
    // static,chunk returns each thread's first cyclic chunk: coverage may
    // be partial by design at this teams/threads shape — but no element
    // may be written twice.
    int over = 0;
    for (int i = 0; i < n; i++)
        if (v[i] > 1.5f) over++;
    return over;
}
"#;
    let (_, v) = run_app("staticchunk", src);
    assert_eq!(v, Value::I32(0));
}

/// Multiple target regions in one function get distinct kernel files.
#[test]
fn multiple_kernels_per_function() {
    let src = r#"
int main() {
    int n = 64;
    float v[64];
    for (int i = 0; i < n; i++) v[i] = 1.0f;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = v[i] + 1.0f;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = v[i] * 3.0f;
    return (int) v[10];
}
"#;
    let cc = Ompicc::new(workdir("multik"));
    let app = cc.compile(src).unwrap();
    assert_eq!(app.kernels.len(), 2);
    assert_ne!(app.kernels[0].module_name, app.kernels[1].module_name);
    let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(6));
}

/// firstprivate on a device parallel region: threads get copies.
#[test]
fn device_firstprivate_copies() {
    let src = r#"
int main() {
    int base = 7;
    int out[96];
    #pragma omp target map(from: out[0:96]) map(to: base)
    {
        #pragma omp parallel num_threads(96) firstprivate(base)
        {
            base = base + omp_get_thread_num();
            out[omp_get_thread_num()] = base;
        }
    }
    for (int t = 0; t < 96; t++)
        if (out[t] != 7 + t) return 1 + t;
    return 0;
}
"#;
    let (_, v) = run_app("devfp", src);
    assert_eq!(v, Value::I32(0));
}
