/* atax: y = A^T (A x) — OpenMP offload, two kernels under one target data. */
void run(int n, float *a, float *x, float *y, float *tmp)
{
    #pragma omp target data map(to: a[0:n*n], x[0:n]) map(from: y[0:n]) map(alloc: tmp[0:n])
    {
        #pragma omp target teams distribute parallel for num_threads(256) \
                map(to: a[0:n*n], x[0:n]) map(alloc: tmp[0:n])
        for (int i = 0; i < n; i++) {
            float t = 0.0f;
            for (int j = 0; j < n; j++)
                t += a[i * n + j] * x[j];
            tmp[i] = t;
        }
        #pragma omp target teams distribute parallel for num_threads(256) \
                map(to: a[0:n*n]) map(alloc: tmp[0:n]) map(from: y[0:n])
        for (int j = 0; j < n; j++) {
            float t = 0.0f;
            for (int i = 0; i < n; i++)
                t += a[i * n + j] * tmp[i];
            y[j] = t;
        }
    }
}
