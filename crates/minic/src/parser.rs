//! Recursive-descent parser for the mini-C dialect, including OpenMP
//! `#pragma` directives and the CUDA extensions used in kernel files.

use crate::ast::*;
use crate::lexer::{lex, lex_fragment};
use crate::omp::*;
use crate::token::{Pos, Tok, Token};
use crate::types::{ArrayLen, Ty};

/// Parse error.
#[derive(Clone, Debug)]
pub struct ParseError {
    pub pos: Pos,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a full translation unit.
pub fn parse(src: &str) -> PResult<Program> {
    let tokens = lex(src).map_err(|e| ParseError { pos: e.pos, msg: e.msg })?;
    let mut p = Parser::new(tokens);
    p.parse_program()
}

/// Parse a single expression (used by tests and tools).
pub fn parse_expr_str(src: &str) -> PResult<Expr> {
    let tokens = lex_fragment(src).map_err(|e| ParseError { pos: e.pos, msg: e.msg })?;
    let mut p = Parser::new(tokens);
    let e = p.parse_expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Parser {
        Parser { toks, i: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.i.min(self.toks.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.i + n).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i.min(self.toks.len() - 1)].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i.min(self.toks.len() - 1)].tok.clone();
        if self.i < self.toks.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}, found {:?}", t, self.peek())))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { pos: self.pos(), msg: msg.into() }
    }

    // ---------------------------------------------------------- program

    fn parse_program(&mut self) -> PResult<Program> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Pragma(_) => {
                    let text = match self.bump() {
                        Tok::Pragma(t) => t,
                        _ => unreachable!(),
                    };
                    let dir = self.parse_pragma_text(&text)?;
                    match dir.kind {
                        DirKind::DeclareTarget => items.push(Item::DeclareTarget(true)),
                        DirKind::EndDeclareTarget => items.push(Item::DeclareTarget(false)),
                        other => {
                            return Err(self.err(format!(
                                "directive `{}` is not valid at file scope",
                                other.spelling()
                            )))
                        }
                    }
                }
                _ => items.extend(self.parse_top_decl()?),
            }
        }
        Ok(Program { items })
    }

    /// A top-level declaration: function def/proto or global variables.
    fn parse_top_decl(&mut self) -> PResult<Vec<Item>> {
        let (base, quals, _shared) = self.parse_specifiers()?;
        // Each declarator.
        let mut items = Vec::new();
        loop {
            let pos = self.pos();
            let (name, ty, fn_params) = self.parse_declarator(base.clone())?;
            if let Some(params) = fn_params {
                let name = name.ok_or_else(|| self.err("function declarator needs a name"))?;
                let sig = FuncSig { name, ret: ty, params, quals, pos };
                if *self.peek() == Tok::LBrace {
                    let body = self.parse_block()?;
                    items.push(Item::Func(FuncDef {
                        sig,
                        body,
                        frame: Default::default(),
                        declare_target: false,
                    }));
                    return Ok(items);
                }
                self.expect(Tok::Semi)?;
                items.push(Item::Proto(sig));
                return Ok(items);
            }
            let name = name.ok_or_else(|| self.err("declaration needs a name"))?;
            let init = self.parse_opt_init(&ty)?;
            items.push(Item::Global(VarDecl {
                name,
                ty,
                init,
                shared: false,
                slot: u32::MAX,
                pos,
            }));
            if self.eat(Tok::Comma) {
                continue;
            }
            self.expect(Tok::Semi)?;
            return Ok(items);
        }
    }

    // ------------------------------------------------------ declarations

    /// True if the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwVoid
                | Tok::KwChar
                | Tok::KwInt
                | Tok::KwLong
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwConst
                | Tok::KwStatic
                | Tok::KwExtern
                | Tok::KwGlobal
                | Tok::KwDevice
                | Tok::KwShared
                | Tok::KwHost
        ) || matches!(self.peek(), Tok::Ident(s) if s == "dim3" || s == "size_t")
    }

    /// Parse declaration specifiers; returns (base type, fn quals, __shared__).
    fn parse_specifiers(&mut self) -> PResult<(Ty, FnQuals, bool)> {
        let mut base: Option<Ty> = None;
        let mut quals = FnQuals::default();
        let mut shared = false;
        let mut long_count = 0u32;
        let mut saw_unsigned = false;
        loop {
            match self.peek() {
                Tok::KwConst
                | Tok::KwStatic
                | Tok::KwExtern
                | Tok::KwSigned
                | Tok::KwHost
                | Tok::KwRestrict => {
                    self.bump();
                }
                Tok::KwUnsigned => {
                    saw_unsigned = true;
                    self.bump();
                }
                Tok::KwGlobal => {
                    quals.global = true;
                    self.bump();
                }
                Tok::KwDevice => {
                    quals.device = true;
                    self.bump();
                }
                Tok::KwShared => {
                    shared = true;
                    self.bump();
                }
                Tok::KwVoid => {
                    base = Some(Ty::Void);
                    self.bump();
                }
                Tok::KwChar => {
                    base = Some(Ty::Char);
                    self.bump();
                }
                Tok::KwInt => {
                    if base.is_none() {
                        base = Some(Ty::Int);
                    }
                    self.bump();
                }
                Tok::KwLong => {
                    long_count += 1;
                    base = Some(Ty::Long);
                    self.bump();
                }
                Tok::KwFloat => {
                    base = Some(Ty::Float);
                    self.bump();
                }
                Tok::KwDouble => {
                    base = Some(Ty::Double);
                    self.bump();
                }
                Tok::KwStruct => return Err(self.err("struct types are not supported")),
                Tok::Ident(s) if s == "dim3" && base.is_none() => {
                    base = Some(Ty::Dim3);
                    self.bump();
                }
                Tok::Ident(s) if s == "size_t" && base.is_none() => {
                    base = Some(Ty::Long);
                    self.bump();
                }
                _ => break,
            }
        }
        let _ = (long_count, saw_unsigned);
        let base = base.unwrap_or(Ty::Int);
        // `unsigned` is accepted but treated as its signed counterpart: the
        // benchmark dialect never relies on wrap-around semantics.
        Ok((base, quals, shared))
    }

    /// Parse a (possibly abstract) declarator. Returns the name (if any),
    /// the complete type, and `Some(params)` when this declared a function.
    fn parse_declarator(&mut self, base: Ty) -> PResult<(Option<String>, Ty, Option<Vec<Param>>)> {
        #[derive(Debug)]
        enum Wrap {
            Ptr,
            Array(ArrayLen),
            Func(Vec<Param>),
        }

        fn parse_inner(p: &mut Parser) -> PResult<(Option<String>, Vec<Wrap>)> {
            let mut ptrs = 0;
            while p.eat(Tok::Star) {
                while p.eat(Tok::KwConst) || p.eat(Tok::KwRestrict) {}
                ptrs += 1;
            }
            let (name, mut wraps) = match p.peek() {
                Tok::Ident(_) => {
                    let n = p.expect_ident()?;
                    (Some(n), Vec::new())
                }
                Tok::LParen
                    if matches!(p.peek_at(1), Tok::Star | Tok::Ident(_)) && !p.at_type_at(1) =>
                {
                    p.bump();
                    let inner = parse_inner(p)?;
                    p.expect(Tok::RParen)?;
                    (inner.0, inner.1)
                }
                _ => (None, Vec::new()),
            };
            // Suffixes bind tighter than this level's pointers.
            let mut sufs = Vec::new();
            loop {
                if p.eat(Tok::LBracket) {
                    if p.eat(Tok::RBracket) {
                        sufs.push(Wrap::Array(ArrayLen::Unspec));
                    } else {
                        let e = p.parse_assign_expr()?;
                        p.expect(Tok::RBracket)?;
                        let len = match e.const_int() {
                            Some(v) if v >= 0 => ArrayLen::Const(v as u64),
                            _ => ArrayLen::Expr(Box::new(e)),
                        };
                        sufs.push(Wrap::Array(len));
                    }
                } else if *p.peek() == Tok::LParen
                    && (p.at_type_at(1) || *p.peek_at(1) == Tok::RParen)
                {
                    // Only a parameter list makes this a function declarator;
                    // `dim3 b(32, 8)` keeps its parens for the constructor.
                    p.bump();
                    let params = p.parse_params()?;
                    p.expect(Tok::RParen)?;
                    sufs.push(Wrap::Func(params));
                } else {
                    break;
                }
            }
            wraps.extend(sufs);
            for _ in 0..ptrs {
                wraps.push(Wrap::Ptr);
            }
            Ok((name, wraps))
        }

        let (name, mut wraps) = parse_inner(self)?;
        // A function declarator is only supported as the outermost wrap.
        let params = match wraps.last() {
            Some(Wrap::Func(_)) => match wraps.pop() {
                Some(Wrap::Func(ps)) => Some(ps),
                _ => unreachable!(),
            },
            _ => None,
        };
        let mut ty = base;
        for w in wraps.into_iter().rev() {
            ty = match w {
                Wrap::Ptr => Ty::Ptr(Box::new(ty)),
                Wrap::Array(len) => Ty::Array(Box::new(ty), len),
                Wrap::Func(_) => return Err(self.err("function pointers are not supported")),
            };
        }
        Ok((name, ty, params))
    }

    fn at_type_at(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n),
            Tok::KwVoid
                | Tok::KwChar
                | Tok::KwInt
                | Tok::KwLong
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwUnsigned
                | Tok::KwConst
        ) || matches!(self.peek_at(n), Tok::Ident(s) if s == "dim3")
    }

    fn parse_params(&mut self) -> PResult<Vec<Param>> {
        let mut params = Vec::new();
        if *self.peek() == Tok::RParen {
            return Ok(params);
        }
        if *self.peek() == Tok::KwVoid && *self.peek_at(1) == Tok::RParen {
            self.bump();
            return Ok(params);
        }
        loop {
            let (base, _, _) = self.parse_specifiers()?;
            let (name, ty, fnp) = self.parse_declarator(base)?;
            if fnp.is_some() {
                return Err(self.err("function-typed parameters are not supported"));
            }
            params.push(Param {
                name: name.unwrap_or_default(),
                // Outermost array dimension of a parameter decays to pointer.
                ty: match ty {
                    Ty::Array(elem, _) => Ty::Ptr(elem),
                    other => other,
                },
                slot: u32::MAX,
            });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn parse_opt_init(&mut self, ty: &Ty) -> PResult<Option<Init>> {
        // dim3 constructor form: `dim3 b(32, 8);`
        if *ty == Ty::Dim3 && *self.peek() == Tok::LParen {
            self.bump();
            let x = self.parse_assign_expr()?;
            let y =
                if self.eat(Tok::Comma) { Some(Box::new(self.parse_assign_expr()?)) } else { None };
            let z =
                if self.eat(Tok::Comma) { Some(Box::new(self.parse_assign_expr()?)) } else { None };
            self.expect(Tok::RParen)?;
            let pos = self.pos();
            return Ok(Some(Init::Expr(Expr::new(ExprKind::Dim3 { x: Box::new(x), y, z }, pos))));
        }
        if !self.eat(Tok::Assign) {
            return Ok(None);
        }
        Ok(Some(self.parse_init()?))
    }

    fn parse_init(&mut self) -> PResult<Init> {
        if self.eat(Tok::LBrace) {
            let mut list = Vec::new();
            if !self.eat(Tok::RBrace) {
                loop {
                    list.push(self.parse_init()?);
                    if self.eat(Tok::Comma) {
                        if self.eat(Tok::RBrace) {
                            break;
                        }
                        continue;
                    }
                    self.expect(Tok::RBrace)?;
                    break;
                }
            }
            Ok(Init::List(list))
        } else {
            Ok(Init::Expr(self.parse_assign_expr()?))
        }
    }

    // ------------------------------------------------------- statements

    fn parse_block(&mut self) -> PResult<Block> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block"));
            }
            stmts.extend(self.parse_stmt_multi()?);
        }
        Ok(Block { stmts })
    }

    /// Parse one statement; declarations may expand to several.
    fn parse_stmt_multi(&mut self) -> PResult<Vec<Stmt>> {
        if self.at_type() {
            return self.parse_decl_stmt();
        }
        Ok(vec![self.parse_stmt()?])
    }

    fn parse_decl_stmt(&mut self) -> PResult<Vec<Stmt>> {
        let (base, _, shared) = self.parse_specifiers()?;
        let mut out = Vec::new();
        loop {
            let pos = self.pos();
            let (name, ty, fnp) = self.parse_declarator(base.clone())?;
            if fnp.is_some() {
                return Err(self.err("local function declarations are not supported"));
            }
            let name = name.ok_or_else(|| self.err("declaration needs a name"))?;
            let init = self.parse_opt_init(&ty)?;
            out.push(Stmt::Decl(VarDecl { name, ty, init, shared, slot: u32::MAX, pos }));
            if self.eat(Tok::Comma) {
                continue;
            }
            self.expect(Tok::Semi)?;
            return Ok(out);
        }
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.parse_block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let then_s = Box::new(self.parse_stmt()?);
                let else_s =
                    if self.eat(Tok::KwElse) { Some(Box::new(self.parse_stmt()?)) } else { None };
                Ok(Stmt::If { cond, then_s, else_s })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::While { cond, body: Box::new(self.parse_stmt()?) })
            }
            Tok::KwDo => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.eat(Tok::Semi) {
                    None
                } else if self.at_type() {
                    let mut decls = self.parse_decl_stmt()?;
                    if decls.len() != 1 {
                        // Multiple declarators in a for-init: wrap in a block
                        // is not valid C scoping; keep them as one synthetic
                        // block statement.
                        Some(Box::new(Stmt::Block(Block { stmts: decls })))
                    } else {
                        Some(Box::new(decls.remove(0)))
                    }
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == Tok::Semi { None } else { Some(self.parse_expr()?) };
                self.expect(Tok::Semi)?;
                let step =
                    if *self.peek() == Tok::RParen { None } else { Some(self.parse_expr()?) };
                self.expect(Tok::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            Tok::KwReturn => {
                self.bump();
                if self.eat(Tok::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::Pragma(text) => {
                self.bump();
                let dir = self.parse_pragma_text(&text)?;
                if dir.kind.is_standalone() {
                    return Ok(Stmt::Omp(OmpStmt { dir, body: None, pos }));
                }
                let body = Box::new(self.parse_stmt()?);
                if dir.kind.needs_loop() && !matches!(*body, Stmt::For { .. }) {
                    return Err(ParseError {
                        pos,
                        msg: format!("`{}` must be followed by a for loop", dir.kind.spelling()),
                    });
                }
                Ok(Stmt::Omp(OmpStmt { dir, body: Some(body), pos }))
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ------------------------------------------------------ expressions

    pub(crate) fn parse_expr(&mut self) -> PResult<Expr> {
        let mut e = self.parse_assign_expr()?;
        while *self.peek() == Tok::Comma {
            let pos = self.pos();
            self.bump();
            let r = self.parse_assign_expr()?;
            e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(r)), pos);
        }
        Ok(e)
    }

    fn parse_assign_expr(&mut self) -> PResult<Expr> {
        let lhs = self.parse_ternary()?;
        let pos = self.pos();
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::BitAnd),
            Tok::PipeAssign => Some(BinOp::BitOr),
            Tok::CaretAssign => Some(BinOp::BitXor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign_expr()?;
        Ok(Expr::new(ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, pos))
    }

    fn parse_ternary(&mut self) -> PResult<Expr> {
        let cond = self.parse_binary(0)?;
        if *self.peek() != Tok::Question {
            return Ok(cond);
        }
        let pos = self.pos();
        self.bump();
        let then_e = self.parse_expr()?;
        self.expect(Tok::Colon)?;
        let else_e = self.parse_assign_expr()?;
        Ok(Expr::new(
            ExprKind::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            },
            pos,
        ))
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> PResult<Expr> {
        fn prec(t: &Tok) -> Option<(BinOp, u8)> {
            Some(match t {
                Tok::PipePipe => (BinOp::LogOr, 1),
                Tok::AmpAmp => (BinOp::LogAnd, 2),
                Tok::Pipe => (BinOp::BitOr, 3),
                Tok::Caret => (BinOp::BitXor, 4),
                Tok::Amp => (BinOp::BitAnd, 5),
                Tok::EqEq => (BinOp::Eq, 6),
                Tok::BangEq => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => return None,
            })
        }
        let mut lhs = self.parse_unary()?;
        while let Some((op, p)) = prec(self.peek()) {
            if p < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.parse_binary(p + 1)?;
            lhs = Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, pos);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Plus => {
                self.bump();
                self.parse_unary()
            }
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Neg, expr: Box::new(e) }, pos))
            }
            Tok::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Not, expr: Box::new(e) }, pos))
            }
            Tok::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::BitNot, expr: Box::new(e) }, pos))
            }
            Tok::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Deref, expr: Box::new(e) }, pos))
            }
            Tok::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Addr, expr: Box::new(e) }, pos))
            }
            Tok::PlusPlus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::IncDec { pre: true, inc: true, expr: Box::new(e) }, pos))
            }
            Tok::MinusMinus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::IncDec { pre: true, inc: false, expr: Box::new(e) }, pos))
            }
            Tok::KwSizeof => {
                self.bump();
                if *self.peek() == Tok::LParen && self.at_type_at(1) {
                    self.bump();
                    let ty = self.parse_type_name()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::new(ExprKind::SizeofTy(ty), pos))
                } else {
                    let e = self.parse_unary()?;
                    Ok(Expr::new(ExprKind::SizeofExpr(Box::new(e)), pos))
                }
            }
            Tok::LParen if self.at_type_at(1) => {
                // Cast.
                self.bump();
                let ty = self.parse_type_name()?;
                self.expect(Tok::RParen)?;
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Cast { ty, expr: Box::new(e) }, pos))
            }
            _ => self.parse_postfix(),
        }
    }

    /// Parse a type-name (for casts / sizeof), with abstract declarator.
    fn parse_type_name(&mut self) -> PResult<Ty> {
        let (base, _, _) = self.parse_specifiers()?;
        let (name, ty, fnp) = self.parse_declarator(base)?;
        if name.is_some() || fnp.is_some() {
            return Err(self.err("expected abstract type name"));
        }
        Ok(ty)
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let pos = self.pos();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::new(ExprKind::Index { base: Box::new(e), index: Box::new(idx) }, pos);
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(ExprKind::Member { base: Box::new(e), field }, pos);
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec { pre: false, inc: true, expr: Box::new(e) },
                        pos,
                    );
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec { pre: false, inc: false, expr: Box::new(e) },
                        pos,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::new(ExprKind::IntLit(v), pos)),
            Tok::CharLit(v) => Ok(Expr::new(ExprKind::IntLit(v), pos)),
            Tok::FloatLit(v, f32s) => Ok(Expr::new(ExprKind::FloatLit(v, f32s), pos)),
            Tok::StrLit(s) => Ok(Expr::new(ExprKind::StrLit(s), pos)),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if name == "dim3" && *self.peek() == Tok::LParen {
                    self.bump();
                    let x = self.parse_assign_expr()?;
                    let y = if self.eat(Tok::Comma) {
                        Some(Box::new(self.parse_assign_expr()?))
                    } else {
                        None
                    };
                    let z = if self.eat(Tok::Comma) {
                        Some(Box::new(self.parse_assign_expr()?))
                    } else {
                        None
                    };
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::new(ExprKind::Dim3 { x: Box::new(x), y, z }, pos));
                }
                if *self.peek() == Tok::TripleLt {
                    // kernel<<<grid, block>>>(args)
                    self.bump();
                    let grid = self.parse_assign_expr()?;
                    self.expect(Tok::Comma)?;
                    let block = self.parse_assign_expr()?;
                    self.expect(Tok::TripleGt)?;
                    self.expect(Tok::LParen)?;
                    let args = self.parse_args()?;
                    return Ok(Expr::new(
                        ExprKind::KernelLaunch {
                            callee: name,
                            grid: Box::new(grid),
                            block: Box::new(block),
                            args,
                        },
                        pos,
                    ));
                }
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let args = self.parse_args()?;
                    return Ok(Expr::new(ExprKind::Call { callee: name, args }, pos));
                }
                Ok(Expr::new(ExprKind::Ident(name, Resolved::Unresolved), pos))
            }
            other => {
                Err(ParseError { pos, msg: format!("unexpected token {other:?} in expression") })
            }
        }
    }

    fn parse_args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if self.eat(Tok::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.parse_assign_expr()?);
            if self.eat(Tok::Comma) {
                continue;
            }
            self.expect(Tok::RParen)?;
            return Ok(args);
        }
    }

    // ---------------------------------------------------------- pragmas

    /// Parse the payload of a `#pragma` line (text after `pragma`).
    fn parse_pragma_text(&mut self, text: &str) -> PResult<Directive> {
        let toks = lex_fragment(text).map_err(|e| ParseError { pos: e.pos, msg: e.msg })?;
        let mut p = Parser::new(toks);
        if !p.eat(Tok::Ident("omp".into())) {
            return Err(self.err("only `#pragma omp` pragmas are supported"));
        }
        p.parse_omp_directive()
    }

    fn omp_word(&mut self) -> Option<String> {
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Some(s)
            }
            Tok::KwFor => {
                self.bump();
                Some("for".into())
            }
            Tok::KwIf => {
                self.bump();
                Some("if".into())
            }
            _ => None,
        }
    }

    fn parse_omp_directive(&mut self) -> PResult<Directive> {
        // Greedily read directive-name words.
        let mut words: Vec<String> = Vec::new();
        let dir_words = [
            "target",
            "teams",
            "distribute",
            "parallel",
            "for",
            "data",
            "enter",
            "exit",
            "update",
            "sections",
            "section",
            "single",
            "master",
            "critical",
            "barrier",
            "taskwait",
            "declare",
            "end",
        ];
        loop {
            match self.peek() {
                Tok::Ident(s) if dir_words.contains(&s.as_str()) => {
                    // `update`/`data` only continue a directive name after
                    // `target`/`enter`/`exit`; `for` after `parallel` or
                    // `distribute`; otherwise they are clause names.
                    let s = s.clone();
                    let extends = match s.as_str() {
                        "data" | "update" => {
                            matches!(
                                words.last().map(|w| w.as_str()),
                                Some("target") | Some("enter") | Some("exit")
                            )
                        }
                        "enter" | "exit" => {
                            matches!(words.last().map(|w| w.as_str()), Some("target"))
                        }
                        "teams" => {
                            matches!(words.last().map(|w| w.as_str()), Some("target"))
                                || words.is_empty()
                        }
                        "distribute" => {
                            matches!(words.last().map(|w| w.as_str()), Some("teams"))
                                || words.is_empty()
                        }
                        "parallel" => {
                            words.is_empty()
                                || matches!(
                                    words.last().map(|w| w.as_str()),
                                    Some("distribute") | Some("target")
                                )
                        }
                        "target" | "sections" | "section" | "single" | "master" | "critical"
                        | "barrier" | "taskwait" => words.is_empty(),
                        "declare" | "end" => {
                            words.is_empty() || words.last().map(|w| w.as_str()) == Some("end")
                        }
                        _ => false,
                    };
                    if !extends {
                        break;
                    }
                    words.push(s);
                    self.bump();
                }
                Tok::KwFor => {
                    let prev = words.last().map(|w| w.as_str());
                    if matches!(prev, Some("parallel") | Some("distribute")) || words.is_empty() {
                        words.push("for".into());
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        // `declare target` parses as ["declare"] then "target" breaks out
        // (because words is non-empty); patch up here.
        if words.as_slice() == ["declare"] && self.eat(Tok::Ident("target".into())) {
            words.push("target".into());
        }
        if words.as_slice() == ["end", "declare"] && self.eat(Tok::Ident("target".into())) {
            words.push("target".into());
        }

        let joined = words.join(" ");
        let kind = match joined.as_str() {
            "target" => DirKind::Target,
            "target data" => DirKind::TargetData,
            "target enter data" => DirKind::TargetEnterData,
            "target exit data" => DirKind::TargetExitData,
            "target update" => DirKind::TargetUpdate,
            "target teams" => DirKind::TargetTeams,
            "target teams distribute" => DirKind::TargetTeamsDistribute,
            "target teams distribute parallel for" => DirKind::TargetTeamsDistributeParallelFor,
            "target parallel" => DirKind::TargetParallel,
            "target parallel for" => DirKind::TargetParallelFor,
            "teams" => DirKind::Teams,
            "teams distribute" => DirKind::TeamsDistribute,
            "teams distribute parallel for" => DirKind::TeamsDistributeParallelFor,
            "distribute" => DirKind::Distribute,
            "distribute parallel for" => DirKind::DistributeParallelFor,
            "parallel" => DirKind::Parallel,
            "parallel for" => DirKind::ParallelFor,
            "for" => DirKind::For,
            "sections" => DirKind::Sections,
            "section" => DirKind::Section,
            "single" => DirKind::Single,
            "master" => DirKind::Master,
            "critical" => DirKind::Critical,
            "barrier" => DirKind::Barrier,
            "taskwait" => DirKind::Taskwait,
            "declare target" => DirKind::DeclareTarget,
            "end declare target" => DirKind::EndDeclareTarget,
            other => return Err(self.err(format!("unknown OpenMP directive `{other}`"))),
        };

        // `critical (name)`.
        let mut clauses = Vec::new();
        if kind == DirKind::Critical && *self.peek() == Tok::LParen {
            self.bump();
            let name = self.expect_ident()?;
            self.expect(Tok::RParen)?;
            clauses.push(Clause::Name(name));
        }

        // Clauses.
        loop {
            self.eat(Tok::Comma);
            if *self.peek() == Tok::Eof {
                break;
            }
            clauses.push(self.parse_clause()?);
        }
        Ok(Directive { kind, clauses })
    }

    fn parse_clause(&mut self) -> PResult<Clause> {
        let word = self.omp_word().ok_or_else(|| self.err("expected clause name"))?;
        match word.as_str() {
            "map" => {
                self.expect(Tok::LParen)?;
                // Optional map-kind prefix.
                let mut kind = MapKind::ToFrom;
                if let Tok::Ident(k) = self.peek() {
                    let is_kind = matches!(
                        k.as_str(),
                        "to" | "from" | "tofrom" | "alloc" | "release" | "delete"
                    );
                    if is_kind && *self.peek_at(1) == Tok::Colon {
                        kind = match k.as_str() {
                            "to" => MapKind::To,
                            "from" => MapKind::From,
                            "tofrom" => MapKind::ToFrom,
                            "alloc" => MapKind::Alloc,
                            "release" => MapKind::Release,
                            "delete" => MapKind::Delete,
                            _ => unreachable!(),
                        };
                        self.bump();
                        self.bump();
                    }
                }
                let items = self.parse_map_items()?;
                self.expect(Tok::RParen)?;
                Ok(Clause::Map { kind, items })
            }
            "num_teams" => Ok(Clause::NumTeams(self.paren_expr()?)),
            "num_threads" => Ok(Clause::NumThreads(self.paren_expr()?)),
            "thread_limit" => Ok(Clause::ThreadLimit(self.paren_expr()?)),
            "device" => Ok(Clause::Device(self.paren_expr()?)),
            "if" => {
                // `if([target:] expr)`
                self.expect(Tok::LParen)?;
                if let Tok::Ident(m) = self.peek() {
                    if m == "target" && *self.peek_at(1) == Tok::Colon {
                        self.bump();
                        self.bump();
                    }
                }
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(Clause::If(e))
            }
            "collapse" => {
                let e = self.paren_expr()?;
                let n = e
                    .const_int()
                    .filter(|&v| v >= 1)
                    .ok_or_else(|| self.err("collapse requires a positive integer constant"))?;
                Ok(Clause::Collapse(n as u32))
            }
            "schedule" => {
                self.expect(Tok::LParen)?;
                let kind = match self.bump() {
                    Tok::KwStatic => SchedKind::Static,
                    Tok::Ident(s) if s == "static" => SchedKind::Static,
                    Tok::Ident(s) if s == "dynamic" => SchedKind::Dynamic,
                    Tok::Ident(s) if s == "guided" => SchedKind::Guided,
                    other => return Err(self.err(format!("unknown schedule kind {other:?}"))),
                };
                let chunk = if self.eat(Tok::Comma) { Some(self.parse_expr()?) } else { None };
                self.expect(Tok::RParen)?;
                Ok(Clause::Schedule { kind, chunk })
            }
            "private" => Ok(Clause::Private(self.paren_ident_list()?)),
            "firstprivate" => Ok(Clause::FirstPrivate(self.paren_ident_list()?)),
            "shared" => Ok(Clause::Shared(self.paren_ident_list()?)),
            "default" => {
                self.expect(Tok::LParen)?;
                let k = match self.bump() {
                    Tok::Ident(s) if s == "shared" => DefaultKind::Shared,
                    Tok::Ident(s) if s == "none" => DefaultKind::None,
                    other => return Err(self.err(format!("unknown default kind {other:?}"))),
                };
                self.expect(Tok::RParen)?;
                Ok(Clause::Default(k))
            }
            "reduction" => {
                self.expect(Tok::LParen)?;
                let op = match self.bump() {
                    Tok::Plus => RedOp::Add,
                    Tok::Star => RedOp::Mul,
                    Tok::Ident(s) if s == "max" => RedOp::Max,
                    Tok::Ident(s) if s == "min" => RedOp::Min,
                    other => {
                        return Err(self.err(format!("unsupported reduction operator {other:?}")))
                    }
                };
                self.expect(Tok::Colon)?;
                let mut vars = vec![self.expect_ident()?];
                while self.eat(Tok::Comma) {
                    vars.push(self.expect_ident()?);
                }
                self.expect(Tok::RParen)?;
                Ok(Clause::Reduction { op, vars })
            }
            "nowait" => Ok(Clause::Nowait),
            "to" => {
                self.expect(Tok::LParen)?;
                let items = self.parse_map_items()?;
                self.expect(Tok::RParen)?;
                Ok(Clause::UpdateTo(items))
            }
            "from" => {
                self.expect(Tok::LParen)?;
                let items = self.parse_map_items()?;
                self.expect(Tok::RParen)?;
                Ok(Clause::UpdateFrom(items))
            }
            other => Err(self.err(format!("unknown clause `{other}`"))),
        }
    }

    fn paren_expr(&mut self) -> PResult<Expr> {
        self.expect(Tok::LParen)?;
        let e = self.parse_expr()?;
        self.expect(Tok::RParen)?;
        Ok(e)
    }

    fn paren_ident_list(&mut self) -> PResult<Vec<String>> {
        self.expect(Tok::LParen)?;
        let mut out = vec![self.expect_ident()?];
        while self.eat(Tok::Comma) {
            out.push(self.expect_ident()?);
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }

    fn parse_map_items(&mut self) -> PResult<Vec<MapItem>> {
        let mut items = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mut sections = Vec::new();
            while self.eat(Tok::LBracket) {
                let lower = if *self.peek() == Tok::Colon || *self.peek() == Tok::RBracket {
                    None
                } else {
                    Some(self.parse_assign_expr()?)
                };
                let length = if self.eat(Tok::Colon) {
                    if *self.peek() == Tok::RBracket {
                        None
                    } else {
                        Some(self.parse_assign_expr()?)
                    }
                } else {
                    None
                };
                self.expect(Tok::RBracket)?;
                sections.push(ArraySection { lower, length });
            }
            items.push(MapItem { name, sections });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_saxpy_figure1() {
        let src = r#"
void saxpy_device(float a, float x[], float y[], int size)
{
  #pragma omp target map(to: a,size,x[0:size]) map(tofrom: y[0:size])
  {
    int i;
    #pragma omp parallel for
    for (i = 0; i < size; i++)
      y[i] = a * x[i] + y[i];
  }
}
"#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.items.len(), 1);
        let f = match &prog.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        assert_eq!(f.sig.name, "saxpy_device");
        assert_eq!(f.sig.params.len(), 4);
        // The body is a target with a map clause.
        let omp = match &f.body.stmts[0] {
            Stmt::Omp(o) => o,
            other => panic!("expected omp stmt, got {other:?}"),
        };
        assert_eq!(omp.dir.kind, DirKind::Target);
        let maps: Vec<_> = omp.dir.maps().collect();
        assert_eq!(maps.len(), 4);
        assert_eq!(maps[0].0, MapKind::To);
        assert_eq!(maps[3].0, MapKind::ToFrom);
        assert_eq!(maps[3].1.name, "y");
    }

    #[test]
    fn combined_construct_with_clauses() {
        let src = r#"
void f(float *a, int n) {
  #pragma omp target teams distribute parallel for collapse(2) \
          num_teams(n/32*n/8) num_threads(256) schedule(static) map(tofrom: a[0:n*n])
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      a[i*n+j] = 0;
}
"#;
        let prog = parse(src).unwrap();
        let f = match &prog.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let omp = match &f.body.stmts[0] {
            Stmt::Omp(o) => o,
            _ => panic!(),
        };
        assert_eq!(omp.dir.kind, DirKind::TargetTeamsDistributeParallelFor);
        assert_eq!(omp.dir.clause_collapse(), 2);
        assert!(omp.dir.clause_num_teams().is_some());
        assert_eq!(omp.dir.clause_schedule().unwrap().0, SchedKind::Static);
    }

    #[test]
    fn declarator_pointer_to_array() {
        let prog = parse("int (*x)[96];").unwrap();
        match &prog.items[0] {
            Item::Global(v) => {
                assert_eq!(v.name, "x");
                assert_eq!(
                    v.ty,
                    Ty::Ptr(Box::new(Ty::Array(Box::new(Ty::Int), ArrayLen::Const(96))))
                );
            }
            _ => panic!(),
        }
        // And array-of-pointers for contrast.
        let prog = parse("int *a[10];").unwrap();
        match &prog.items[0] {
            Item::Global(v) => {
                assert_eq!(
                    v.ty,
                    Ty::Array(Box::new(Ty::Ptr(Box::new(Ty::Int))), ArrayLen::Const(10))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn cuda_kernel_and_launch() {
        let src = r#"
__global__ void k(float *a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) a[i] = 2.0f * a[i];
}
void host(float *a, int n) {
  dim3 block(32, 8);
  dim3 grid((n+31)/32, (n+7)/8);
  k<<<grid, block>>>(a, n);
}
"#;
        let prog = parse(src).unwrap();
        let k = match &prog.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        assert!(k.sig.quals.global);
        let host = match &prog.items[1] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let launch = host.body.stmts.iter().find_map(|s| match s {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::KernelLaunch { callee, args, .. } => Some((callee.clone(), args.len())),
                _ => None,
            },
            _ => None,
        });
        assert_eq!(launch, Some(("k".into(), 2)));
    }

    #[test]
    fn standalone_directives() {
        let src = r#"
void f(float *a, int n) {
  #pragma omp target enter data map(to: a[0:n])
  #pragma omp target update from(a[0:n])
  #pragma omp target exit data map(from: a[0:n])
}
"#;
        let prog = parse(src).unwrap();
        let f = match &prog.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let kinds: Vec<_> = f
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Omp(o) => Some(o.dir.kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![DirKind::TargetEnterData, DirKind::TargetUpdate, DirKind::TargetExitData]
        );
    }

    #[test]
    fn for_required_after_loop_directives() {
        let src = "void f(){\n#pragma omp parallel for\n{ int i; }\n}";
        assert!(parse(src).is_err());
    }

    #[test]
    fn declare_target_markers() {
        let src = "#pragma omp declare target\nint helper(int x) { return x + 1; }\n#pragma omp end declare target\n";
        let prog = parse(src).unwrap();
        assert!(matches!(prog.items[0], Item::DeclareTarget(true)));
        assert!(matches!(prog.items[1], Item::Func(_)));
        assert!(matches!(prog.items[2], Item::DeclareTarget(false)));
    }

    #[test]
    fn expressions_precedence() {
        let e = parse_expr_str("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, rhs, .. } => match rhs.kind {
                ExprKind::Binary { op: BinOp::Mul, .. } => {}
                _ => panic!("rhs should be mul"),
            },
            _ => panic!("expected add at top"),
        }
        let e = parse_expr_str("a = b = c").unwrap();
        match e.kind {
            ExprKind::Assign { rhs, .. } => assert!(matches!(rhs.kind, ExprKind::Assign { .. })),
            _ => panic!(),
        }
        // Casts.
        let e = parse_expr_str("(float)x / (float)y").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Div, .. }));
        // Ternary.
        let e = parse_expr_str("a < b ? a : b").unwrap();
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn sizeof_forms() {
        assert!(matches!(
            parse_expr_str("sizeof(float)").unwrap().kind,
            ExprKind::SizeofTy(Ty::Float)
        ));
        assert!(matches!(parse_expr_str("sizeof x").unwrap().kind, ExprKind::SizeofExpr(_)));
        assert!(matches!(
            parse_expr_str("sizeof(float*)").unwrap().kind,
            ExprKind::SizeofTy(Ty::Ptr(_))
        ));
    }

    #[test]
    fn critical_with_name_and_sections() {
        let src = r#"
void f() {
  #pragma omp parallel
  {
    #pragma omp critical(zone)
    { }
    #pragma omp sections
    {
      #pragma omp section
      { }
      #pragma omp section
      { }
    }
    #pragma omp barrier
    #pragma omp single
    { }
  }
}
"#;
        let prog = parse(src).unwrap();
        assert!(matches!(prog.items[0], Item::Func(_)));
    }

    #[test]
    fn vla_params() {
        let src = "void f(int n, float a[n][n]) { a[1][2] = 3.0f; }";
        let prog = parse(src).unwrap();
        let f = match &prog.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        // Outermost dim decays; inner dim is a VLA expr.
        match &f.sig.params[1].ty {
            Ty::Ptr(inner) => match inner.as_ref() {
                Ty::Array(el, ArrayLen::Expr(_)) => assert_eq!(**el, Ty::Float),
                other => panic!("expected VLA inner array, got {other:?}"),
            },
            other => panic!("expected decayed pointer, got {other:?}"),
        }
    }

    #[test]
    fn schedule_kinds() {
        for (txt, kind) in [
            ("static", SchedKind::Static),
            ("dynamic", SchedKind::Dynamic),
            ("guided", SchedKind::Guided),
        ] {
            let src = format!("void f(){{\n#pragma omp parallel for schedule({txt}, 4)\nfor(int i=0;i<10;i++);\n}}");
            let prog = parse(&src).unwrap();
            let f = match &prog.items[0] {
                Item::Func(f) => f,
                _ => panic!(),
            };
            let omp = match &f.body.stmts[0] {
                Stmt::Omp(o) => o,
                _ => panic!(),
            };
            assert_eq!(omp.dir.clause_schedule().unwrap().0, kind);
        }
    }
}
