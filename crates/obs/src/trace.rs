//! The span recorder and its Chrome trace-event JSON export.
//!
//! Timestamps are *simulated seconds* supplied by the caller (a `DevClock`
//! total, or a warp's cycle count over the core clock) — never wall time.
//! On export they become the microsecond `ts`/`dur` fields of the Chrome
//! trace-event format, so a trace loads directly in Perfetto or
//! `chrome://tracing`. Each device is modeled as one trace *process*
//! (`pid` = device number, the host shim comes last), and tracks within a
//! device (`tid`) separate the driver stream (tid 0) from per-warp
//! in-kernel streams.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vmcommon::sync::Mutex;

use crate::flight::FlightRecorder;
// JSON string escaping is shared with the flight recorder's JSONL dump.
use crate::json::escape_into as write_json_str;

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// `B` — span begin; paired with the next [`Phase::End`] on the track.
    Begin,
    /// `E` — span end.
    End,
    /// `X` — complete event carrying its own duration.
    Complete,
    /// `i` — zero-duration instant.
    Instant,
    /// `M` — metadata (process names).
    Metadata,
}

impl Phase {
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Metadata => "M",
        }
    }
}

/// One argument attached to an event (`args` object in the export).
#[derive(Clone, Debug)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub ph: Phase,
    pub name: String,
    pub cat: &'static str,
    /// Trace process: the device number (host shim = `num_devices`).
    pub pid: u64,
    /// Track within the device: 0 = driver stream, warps use their own.
    pub tid: u64,
    /// Simulated timestamp, in seconds since the device clock's reset.
    pub ts_s: f64,
    /// Duration in simulated seconds ([`Phase::Complete`] only).
    pub dur_s: f64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Handle for a begun span; feed it back to [`Tracer::end`].
#[derive(Clone, Copy, Debug)]
pub struct SpanId {
    pub pid: u64,
    pub tid: u64,
}

/// Scoped span: ends the span at drop, stamping it with the closure's
/// current simulated time — so error-return paths still close their spans.
pub struct SpanGuard<'a, F: Fn() -> f64> {
    tracer: &'a Tracer,
    span: SpanId,
    now: F,
}

impl<F: Fn() -> f64> Drop for SpanGuard<'_, F> {
    fn drop(&mut self) {
        self.tracer.end(self.span, (self.now)());
    }
}

/// The recorder. Disabled, every call is one relaxed atomic load; enabled,
/// a short critical section appending to a vector.
pub struct Tracer {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    named_pids: Mutex<BTreeSet<u64>>,
    named_tids: Mutex<BTreeSet<(u64, u64)>>,
    /// Always-on post-mortem ring: every non-metadata event is mirrored
    /// here *before* the enabled gate, so disabled runs still keep a tail.
    flight: Arc<FlightRecorder>,
}

impl Tracer {
    pub fn new(enabled: bool) -> Tracer {
        Tracer::with_flight(enabled, Arc::new(FlightRecorder::default()))
    }

    /// A tracer mirroring events into a shared flight ring (the
    /// [`crate::Obs`] constructors pass the metrics registry's ring).
    pub fn with_flight(enabled: bool, flight: Arc<FlightRecorder>) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(enabled),
            events: Mutex::new(Vec::new()),
            named_pids: Mutex::new(BTreeSet::new()),
            named_tids: Mutex::new(BTreeSet::new()),
            flight,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, ev: TraceEvent) {
        let mut detail = String::new();
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                detail.push(' ');
            }
            match v {
                ArgValue::U64(n) => detail.push_str(&format!("{k}={n}")),
                ArgValue::F64(x) => detail.push_str(&format!("{k}={}", fmt_f64(*x))),
                ArgValue::Str(s) => detail.push_str(&format!("{k}={s}")),
            }
        }
        self.flight.record(ev.ph.code(), ev.pid, ev.tid, ev.ts_s, &ev.name, ev.cat, detail);
        if self.is_enabled() {
            self.events.lock().push(ev);
        }
    }

    /// Open a span on `(pid, tid)` at simulated time `ts_s`.
    pub fn begin(
        &self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &'static str,
        ts_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanId {
        self.push(TraceEvent {
            ph: Phase::Begin,
            name: name.to_string(),
            cat,
            pid,
            tid,
            ts_s,
            dur_s: 0.0,
            args,
        });
        SpanId { pid, tid }
    }

    /// Close the most recent open span on the id's track.
    pub fn end(&self, span: SpanId, ts_s: f64) {
        self.end_track(span.pid, span.tid, ts_s);
    }

    /// Close the most recent open span on `(pid, tid)` — for callers that
    /// bracket a span across separate hook calls and cannot carry a
    /// [`SpanId`] between them.
    pub fn end_track(&self, pid: u64, tid: u64, ts_s: f64) {
        self.push(TraceEvent {
            ph: Phase::End,
            name: String::new(),
            cat: "",
            pid,
            tid,
            ts_s,
            dur_s: 0.0,
            args: Vec::new(),
        });
    }

    /// Begin a span and end it automatically when the guard drops, at the
    /// simulated time `now()` reports then.
    pub fn span<F: Fn() -> f64>(
        &self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &'static str,
        now: F,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard<'_, F> {
        let span = self.begin(pid, tid, name, cat, now(), args);
        SpanGuard { tracer: self, span, now }
    }

    /// A complete (`X`) event: known start and duration in one record.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &'static str,
        ts_s: f64,
        dur_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            ph: Phase::Complete,
            name: name.to_string(),
            cat,
            pid,
            tid,
            ts_s,
            dur_s,
            args,
        });
    }

    /// A zero-duration instant event.
    pub fn instant(
        &self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &'static str,
        ts_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            ph: Phase::Instant,
            name: name.to_string(),
            cat,
            pid,
            tid,
            ts_s,
            dur_s: 0.0,
            args,
        });
    }

    /// Name a trace process (device). First caller wins; later calls for
    /// the same pid are dropped so layers can race to name their device.
    pub fn set_process_name(&self, pid: u64, name: &str) {
        if !self.is_enabled() || !self.named_pids.lock().insert(pid) {
            return;
        }
        self.events.lock().push(TraceEvent {
            ph: Phase::Metadata,
            name: "process_name".to_string(),
            cat: "__metadata",
            pid,
            tid: 0,
            ts_s: 0.0,
            dur_s: 0.0,
            args: vec![("name", ArgValue::Str(name.to_string()))],
        });
    }

    /// Name a track within a process (e.g. a command stream). First caller
    /// wins, like [`Tracer::set_process_name`].
    pub fn set_thread_name(&self, pid: u64, tid: u64, name: &str) {
        if !self.is_enabled() || !self.named_tids.lock().insert((pid, tid)) {
            return;
        }
        self.events.lock().push(TraceEvent {
            ph: Phase::Metadata,
            name: "thread_name".to_string(),
            cat: "__metadata",
            pid,
            tid,
            ts_s: 0.0,
            dur_s: 0.0,
            args: vec![("name", ArgValue::Str(name.to_string()))],
        });
    }

    /// Snapshot of all recorded events, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Serialize to Chrome trace-event JSON (the array form): `ts`/`dur` in
    /// microseconds, metadata events hoisted to the front so viewers see
    /// process names before their first sample.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock();
        let mut out = String::from("[");
        let mut first = true;
        let ordered = events
            .iter()
            .filter(|e| e.ph == Phase::Metadata)
            .chain(events.iter().filter(|e| e.ph != Phase::Metadata));
        for ev in ordered {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  ");
            write_event(&mut out, ev);
        }
        out.push_str("\n]\n");
        out
    }

    /// Write the Chrome trace to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"ph\":\"");
    out.push_str(ev.ph.code());
    out.push_str("\",\"name\":");
    write_json_str(out, &ev.name);
    if !ev.cat.is_empty() {
        out.push_str(",\"cat\":");
        write_json_str(out, ev.cat);
    }
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", ev.pid, ev.tid));
    out.push_str(&format!(",\"ts\":{}", micros(ev.ts_s)));
    if ev.ph == Phase::Complete {
        out.push_str(&format!(",\"dur\":{}", micros(ev.dur_s)));
    }
    if ev.ph == Phase::Instant {
        // Thread-scoped instants render as small arrows on the track.
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(out, k);
            out.push(':');
            match v {
                ArgValue::U64(n) => out.push_str(&n.to_string()),
                ArgValue::F64(x) => out.push_str(&fmt_f64(*x)),
                ArgValue::Str(s) => write_json_str(out, s),
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Seconds → microseconds with sub-µs precision kept (Perfetto accepts
/// fractional `ts`).
fn micros(s: f64) -> String {
    fmt_f64(s * 1e6)
}

fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    let s = format!("{x:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        let s = t.begin(0, 0, "x", "test", 0.0, vec![]);
        t.end(s, 1.0);
        t.instant(0, 0, "i", "test", 0.5, vec![]);
        t.set_process_name(0, "dev0");
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_json().trim(), "[\n]");
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let t = Tracer::new(true);
        {
            let _g = t.span(1, 2, "work", "test", || 3.0, vec![("n", 7u64.into())]);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].ph, Phase::Begin);
        assert_eq!(evs[1].ph, Phase::End);
        assert_eq!((evs[1].pid, evs[1].tid), (1, 2));
        assert_eq!(evs[1].ts_s, 3.0);
    }

    #[test]
    fn chrome_json_is_parseable_and_microsecond_scaled() {
        let t = Tracer::new(true);
        t.set_process_name(3, "dev3");
        t.complete(3, 0, "h2d", "memcpy", 0.001, 0.0005, vec![("bytes", 4096u64.into())]);
        t.instant(3, 0, "fault", "fault", 0.002, vec![("site", "h2d".into())]);
        let json = t.to_chrome_json();
        let v = crate::json::parse(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        // Metadata hoisted first.
        assert_eq!(arr[0].get("ph").unwrap().as_str(), Some("M"));
        let x = &arr[1];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(1000.0));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(500.0));
        assert_eq!(x.get("args").unwrap().get("bytes").unwrap().as_f64(), Some(4096.0));
    }

    #[test]
    fn process_names_dedupe_first_wins() {
        let t = Tracer::new(true);
        t.set_process_name(0, "first");
        t.set_process_name(0, "second");
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        match &evs[0].args[0].1 {
            ArgValue::Str(s) => assert_eq!(s, "first"),
            other => panic!("unexpected arg {other:?}"),
        }
    }

    #[test]
    fn strings_are_escaped() {
        let t = Tracer::new(true);
        t.instant(0, 0, "weird \"name\"\n", "test", 0.0, vec![]);
        let json = t.to_chrome_json();
        assert!(json.contains("weird \\\"name\\\"\\n"));
        crate::json::parse(&json).unwrap();
    }
}
