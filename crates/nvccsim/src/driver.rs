//! The nvcc-equivalent driver: compiles kernel source files to on-disk
//! artifacts, in either of the two modes of §3.3:
//!
//! * **PTX mode** — emits architecture-agnostic `.sptx` text. Final
//!   compilation (assembly + device-library link) happens just-in-time at
//!   first launch, with a disk cache (owned by the cudadev host runtime).
//! * **cubin mode** (OMPi's default) — performs every step now: compile,
//!   link against the device library's symbol list, serialize to a `.cubin`
//!   binary. Launch-time work is then just deserialization.

use std::path::{Path, PathBuf};

use crate::codegen::{compile_program, CompileError};

/// Kernel binary kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinMode {
    Ptx,
    Cubin,
}

/// Driver error.
#[derive(Debug)]
pub enum NvccError {
    Compile(CompileError),
    Frontend(String),
    Link(String),
    Verify(sptx::verify::VerifyError),
    Io(std::io::Error),
}

impl std::fmt::Display for NvccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvccError::Compile(e) => write!(f, "{e}"),
            NvccError::Frontend(m) => write!(f, "kernel frontend error: {m}"),
            NvccError::Link(m) => write!(f, "device link error: {m}"),
            NvccError::Verify(e) => write!(f, "{e}"),
            NvccError::Io(e) => write!(f, "nvcc io error: {e}"),
        }
    }
}

impl std::error::Error for NvccError {}

impl From<CompileError> for NvccError {
    fn from(e: CompileError) -> Self {
        NvccError::Compile(e)
    }
}

impl From<std::io::Error> for NvccError {
    fn from(e: std::io::Error) -> Self {
        NvccError::Io(e)
    }
}

/// Intrinsics resolved by the core simulator itself (always available).
pub const CORE_INTRINSICS: &[&str] = &["printf"];

/// Link a module against a device library: verify every `intr` name
/// resolves, then mark the module linked.
pub fn link_module(m: &mut sptx::Module, lib_symbols: &[String]) -> Result<(), NvccError> {
    let mut missing: Vec<String> = Vec::new();
    for f in &m.functions {
        sptx::visit_insts(&f.body, &mut |i| {
            if let sptx::Inst::Intrinsic { name, .. } = i {
                let known = CORE_INTRINSICS.contains(&name.as_str())
                    || lib_symbols.iter().any(|s| s == name);
                if !known && !missing.contains(name) {
                    missing.push(name.clone());
                }
            }
        });
    }
    if !missing.is_empty() {
        return Err(NvccError::Link(format!("undefined device symbols: {}", missing.join(", "))));
    }
    m.device_lib_linked = true;
    Ok(())
}

/// Compile CUDA-dialect source text to an (unlinked) module.
pub fn compile_source(src: &str, module_name: &str) -> Result<sptx::Module, NvccError> {
    let mut prog = minic::parse(src).map_err(|e| NvccError::Frontend(e.to_string()))?;
    let info = minic::analyze(&mut prog).map_err(|e| NvccError::Frontend(e.to_string()))?;
    let m = compile_program(&prog, &info, module_name)?;
    sptx::verify_module(&m).map_err(NvccError::Verify)?;
    Ok(m)
}

/// The driver: compiles kernel files into `out_dir`.
pub struct Nvcc {
    pub mode: BinMode,
    pub out_dir: PathBuf,
    /// Device-library symbols to link against in cubin mode.
    pub lib_symbols: Vec<String>,
}

impl Nvcc {
    pub fn new(mode: BinMode, out_dir: impl Into<PathBuf>, lib_symbols: Vec<String>) -> Nvcc {
        Nvcc { mode, out_dir: out_dir.into(), lib_symbols }
    }

    /// Compile one kernel source; returns the artifact path
    /// (`<out_dir>/<name>.sptx` or `.cubin`).
    pub fn compile_kernel_source(&self, name: &str, src: &str) -> Result<PathBuf, NvccError> {
        std::fs::create_dir_all(&self.out_dir)?;
        let mut module = compile_source(src, name)?;
        match self.mode {
            BinMode::Ptx => {
                // Architecture-agnostic text; linking is deferred to JIT.
                let path = self.out_dir.join(format!("{name}.sptx"));
                std::fs::write(&path, sptx::text::print_module(&module))?;
                Ok(path)
            }
            BinMode::Cubin => {
                link_module(&mut module, &self.lib_symbols)?;
                let path = self.out_dir.join(format!("{name}.cubin"));
                std::fs::write(&path, sptx::cubin::encode(&module))?;
                Ok(path)
            }
        }
    }

    /// Compile a `.cu` file already on disk.
    pub fn compile_kernel_file(&self, path: &Path) -> Result<PathBuf, NvccError> {
        let src = std::fs::read_to_string(path)?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| NvccError::Frontend(format!("bad kernel path {path:?}")))?;
        self.compile_kernel_source(name, &src)
    }
}
