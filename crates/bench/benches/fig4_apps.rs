//! Criterion benches regenerating each Fig. 4 subplot at its two smallest
//! paper sizes (the full sweep is `cargo run --release --bin fig4`).
//! The measured quantity here is the wall time of the simulation; the
//! *simulated* times (the paper's metric) are printed alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::ExecMode;
use unibench::{app_by_name, build_variant, measure, Variant};

fn bench_app(c: &mut Criterion, name: &str) {
    let app = app_by_name(name).expect("app");
    let work = std::env::temp_dir().join("ompi-bench-fig4");
    let mode = ExecMode::Sampled { max_blocks: 2 };
    let mut group = c.benchmark_group(format!("fig4/{name}"));
    group.sample_size(10);
    // gramschmidt launches O(n) kernels per run; one size keeps the bench
    // wall time sane (the full sweep lives in the fig4 binary).
    let nsizes = if name == "gramschmidt" { 1 } else { 2 };
    for &n in &app.paper_sizes[..nsizes] {
        for variant in [Variant::Cuda, Variant::OmpiCudadev] {
            let built = build_variant(&app, variant, n, mode, true, &work);
            // Print the simulated time once per configuration.
            let m = measure(&app, &built, n);
            println!("# {name} {} n={n}: simulated {:.6}s", variant.label(), m.time_s);
            group.bench_with_input(
                BenchmarkId::new(variant.label(), n),
                &n,
                |b, &n| b.iter(|| measure(&app, &built, n)),
            );
        }
    }
    group.finish();
}

fn fig4a_3dconv(c: &mut Criterion) {
    bench_app(c, "3dconv");
}
fn fig4b_bicg(c: &mut Criterion) {
    bench_app(c, "bicg");
}
fn fig4c_atax(c: &mut Criterion) {
    bench_app(c, "atax");
}
fn fig4d_mvt(c: &mut Criterion) {
    bench_app(c, "mvt");
}
fn fig4e_gemm(c: &mut Criterion) {
    bench_app(c, "gemm");
}
fn fig4f_gramschmidt(c: &mut Criterion) {
    bench_app(c, "gramschmidt");
}

criterion_group!(
    benches,
    fig4a_3dconv,
    fig4b_bicg,
    fig4c_atax,
    fig4d_mvt,
    fig4e_gemm,
    fig4f_gramschmidt
);
criterion_main!(benches);
