//! The **host part** of the cudadev module (§4.2.1).
//!
//! Responsible for device discovery and *lazy* initialization, memory
//! allocation and transfers via the (simulated) CUDA driver API, the device
//! data environment (`map` clauses with reference counting, `target data`,
//! `enter`/`exit data`, `update`), and the three-phase kernel launch:
//!
//! 1. **loading** — locate the kernel binary on disk; `.cubin` files
//!    deserialize directly, `.sptx` files are JIT-assembled and linked
//!    against the device library, with a content-hash disk cache;
//! 2. **parameter preparation** — translate host addresses of mapped
//!    variables to their device counterparts;
//! 3. **launch** — set grid/block dimensions and enter the simulator
//!    (`cuLaunchKernel`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gpusim::fault::{FaultPlan, FaultSite};
use gpusim::{Device, ExecError, ExecMode, LaunchConfig, LaunchStats};
use vmcommon::sync::Mutex;
use vmcommon::MemArena;

use crate::devlib::{exports, CudaDeviceLib, NUM_LOCKS};
use crate::error::CudadevError;
use crate::jit;

mod governor;
mod recovery;
mod stream;

pub use governor::{MemPressure, PressureOutcome, TileParam};
pub use recovery::BreakerState;
pub use stream::STREAM_TRACK_BASE;

/// Mapping direction of one map clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    To,
    From,
    ToFrom,
    Alloc,
    Release,
    Delete,
}

/// One live mapping in the device data environment.
#[derive(Clone, Debug)]
struct MapEntry {
    dev_ptr: u64,
    len: u64,
    refcount: u32,
    /// Copy back to host when the last reference is removed.
    copy_out: bool,
    /// No device buffer could be allocated even after eviction: the host
    /// copy stays authoritative and the governor either streams slices per
    /// tile at offload time or declines the offload (OOM fallback).
    pending: bool,
    /// The host copy has been rewritten since the device copy was
    /// uploaded (a host fallback ran under an enclosing `target data`):
    /// skip copy-back, and re-upload before the next launch that uses it.
    host_dirty: bool,
    /// The device copy is newer than the host copy (a kernel wrote it and
    /// no copy-back has happened yet). Recovery must salvage such buffers
    /// to the host before resetting the device, or replay would resurrect
    /// pre-kernel data.
    device_dirty: bool,
}

/// Accumulated virtual device time, broken down by offload phase — the
/// attribution the paper's evaluation is built on. [`DevClock::offload_s`]
/// is the quantity the paper reports ("kernel execution time, plus any
/// required memory operations"); [`DevClock::total_s`] additionally counts
/// one-time setup, retry backoff and host-fallback time, and is exactly the
/// sum of the profile table's columns.
#[derive(Clone, Copy, Debug, Default)]
pub struct DevClock {
    /// One-time device initialization (lazy, on the first offload).
    pub init_s: f64,
    /// Module loading: cubin deserialize, PTX JIT, or JIT-cache reload.
    pub modload_s: f64,
    /// Kernel execution (including launch overhead).
    pub kernel_s: f64,
    /// Host→device transfer time.
    pub h2d_s: f64,
    /// Device→host transfer time.
    pub d2h_s: f64,
    /// Simulated backoff delay between transient-fault retries.
    pub retry_backoff_s: f64,
    /// Host time re-executing regions after this device failed terminally
    /// (only the host shim's clock accumulates this; see DESIGN.md §7).
    pub fallback_s: f64,
    /// Simulated time saved by the async command streams: the share of
    /// copy/kernel busy time hidden behind other engines' work (copy and
    /// compute engines overlapping, or concurrent `nowait` regions).
    /// Subtracted by [`DevClock::total_s`]/[`DevClock::offload_s`] so the
    /// clock reads elapsed simulated time, not summed busy time. Always 0
    /// in synchronous mode.
    pub overlap_s: f64,
    pub launches: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub jit_compiles: u64,
    pub jit_cache_hits: u64,
    /// Corrupt JIT-cache entries detected and recompiled.
    pub jit_invalidations: u64,
    /// Driver operations retried after a transient fault.
    pub retries: u64,
    /// Regions re-executed on the host after a terminal device failure.
    pub fallbacks: u64,
}

impl DevClock {
    /// Total transfer time, both directions.
    pub fn memcpy_s(&self) -> f64 {
        self.h2d_s + self.d2h_s
    }

    /// The paper's reported metric: kernel time plus required memory
    /// operations (elapsed — overlapped async work is counted once).
    pub fn offload_s(&self) -> f64 {
        self.kernel_s + self.memcpy_s() - self.overlap_s
    }

    /// Every tracked time category, minus the share hidden by async
    /// overlap; the per-device profile table's columns add up to exactly
    /// this.
    pub fn total_s(&self) -> f64 {
        self.init_s
            + self.modload_s
            + self.kernel_s
            + self.h2d_s
            + self.d2h_s
            + self.retry_backoff_s
            + self.fallback_s
            - self.overlap_s
    }

    /// Fold another clock into this one (registry-level aggregation over
    /// multiple devices).
    pub fn merge(&mut self, other: &DevClock) {
        self.init_s += other.init_s;
        self.modload_s += other.modload_s;
        self.kernel_s += other.kernel_s;
        self.h2d_s += other.h2d_s;
        self.d2h_s += other.d2h_s;
        self.retry_backoff_s += other.retry_backoff_s;
        self.fallback_s += other.fallback_s;
        self.overlap_s += other.overlap_s;
        self.launches += other.launches;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.jit_compiles += other.jit_compiles;
        self.jit_cache_hits += other.jit_cache_hits;
        self.jit_invalidations += other.jit_invalidations;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
    }

    /// Zero every accumulator *and* counter — the exact inverse of what
    /// [`DevClock::merge`] folds in, so aggregate views stay consistent
    /// across resets.
    pub fn reset(&mut self) {
        *self = DevClock::default();
    }

    /// This clock as one row of the per-device profile table.
    pub fn profile_row(&self, label: &str) -> obs::ProfileRow {
        obs::ProfileRow {
            label: label.to_string(),
            init_s: self.init_s,
            modload_s: self.modload_s,
            h2d_s: self.h2d_s,
            kernel_s: self.kernel_s,
            d2h_s: self.d2h_s,
            retry_backoff_s: self.retry_backoff_s,
            fallback_s: self.fallback_s,
            overlap_s: self.overlap_s,
            launches: self.launches,
            retries: self.retries,
            fallbacks: self.fallbacks,
            // Latency percentiles come from the metrics histograms, which
            // the clock does not see; the runner fills them in.
            ..obs::ProfileRow::default()
        }
    }
}

/// Bounded exponential backoff for transient driver faults.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How many times a transiently failing operation is retried before
    /// the error is surfaced.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based) is `base_delay_ms << (k-1)`,
    /// capped at `max_delay_ms`.
    pub base_delay_ms: u64,
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_delay_ms: 1, max_delay_ms: 20 }
    }
}

impl RetryPolicy {
    /// Backoff delay before the `attempt`-th retry (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let ms = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.max_delay_ms);
        Duration::from_millis(ms)
    }
}

/// Configuration of a CudaDev instance.
#[derive(Clone, Debug)]
pub struct CudaDevConfig {
    /// Logical device number in the registry; selects which `devN:`-scoped
    /// rules of the `OMPI_FAULT_PLAN` environment variable apply when no
    /// explicit `fault_plan` is given.
    pub device_id: u32,
    /// Device DRAM size (bytes).
    pub global_mem: usize,
    /// Directory where kernel binaries live.
    pub kernel_dir: PathBuf,
    /// JIT disk-cache directory (PTX mode).
    pub jit_cache_dir: PathBuf,
    /// How much of each grid to simulate.
    pub exec_mode: ExecMode,
    /// Launch-level sampling: after a warm-up, repeated launches of the
    /// same kernel are *estimated* from recent measured launches (scaled by
    /// total thread count) instead of simulated. Used by the Fig. 4 harness
    /// for gramschmidt-style apps that launch thousands of kernels inside a
    /// host loop. Documented substitution — see DESIGN.md.
    pub launch_sampling: bool,
    /// Deterministic fault-injection plan. `None` falls back to the
    /// `OMPI_FAULT_PLAN` environment variable (see `gpusim::fault`).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Retry policy for transient driver faults.
    pub retry: RetryPolicy,
    /// Staging-buffer bound for host↔device transfers: copies larger than
    /// this are split into chunked transfers (the governor's "stage" rung),
    /// capping peak transient usage on the shared 2 GB arena.
    pub staging_bytes: u64,
    /// Async command streams: transfers and launches inside a target
    /// region are queued on per-region streams and scheduled on a copy
    /// engine and a compute engine that overlap on the simulated clock
    /// (see `host::stream`). Execution stays eager — results are
    /// bit-identical to synchronous mode; only the virtual timeline (and
    /// `DevClock::overlap_s`) changes.
    pub async_streams: bool,
    /// Observability sink: spans and counters for every driver operation.
    /// Disabled by default (a disabled tracer is one atomic load per
    /// event). The trace process number is `device_id`.
    pub obs: Arc<obs::Obs>,
    /// Watchdog deadline for kernels and transfers: a hung operation is
    /// declared timed out after this much *simulated* waiting and handed
    /// to the recovery manager (`OMPI_LAUNCH_TIMEOUT_MS`).
    pub launch_timeout: Duration,
    /// Reset budget of the recovery circuit breaker: how many consecutive
    /// reset-and-replay attempts may fail before the device latches
    /// permanently broken (`OMPI_MAX_RESETS`).
    pub max_resets: u32,
}

impl Default for CudaDevConfig {
    fn default() -> Self {
        let base = std::env::temp_dir().join("ompi-cudadev");
        CudaDevConfig {
            device_id: 0,
            global_mem: 1 << 30,
            kernel_dir: base.join("kernels"),
            jit_cache_dir: base.join("jitcache"),
            exec_mode: ExecMode::Functional,
            launch_sampling: false,
            fault_plan: None,
            retry: RetryPolicy::default(),
            staging_bytes: 16 << 20,
            async_streams: false,
            obs: obs::Obs::disabled(),
            launch_timeout: Duration::from_millis(250),
            max_resets: 3,
        }
    }
}

/// The cudadev host module.
pub struct CudaDev {
    cfg: CudaDevConfig,
    /// Lazily created on first use (the paper's lazy initialization).
    device: Mutex<Option<Arc<Device>>>,
    initialized: AtomicBool,
    lib: Mutex<Option<Arc<CudaDeviceLib>>>,
    modules: Mutex<HashMap<String, Arc<sptx::Module>>>,
    maps: Mutex<HashMap<u64, MapEntry>>,
    /// Unmapped-but-kept device buffers (the governor's LRU transfer
    /// cache), keyed by host address. Evicted under allocation pressure.
    cache: Mutex<HashMap<u64, governor::CacheEntry>>,
    /// Monotone counter stamping cache entries for LRU ordering.
    lru_tick: std::sync::atomic::AtomicU64,
    pub clock: Mutex<DevClock>,
    /// Per-kernel launch history for launch-level sampling:
    /// (launch count, recent cycles-per-thread estimate).
    launch_hist: Mutex<HashMap<String, (u64, f64)>>,
    /// Async command-stream state (engines, streams, pending busy time).
    streams: stream::AsyncState,
    /// Recovery circuit breaker: reset budget and health state (see
    /// `host::recovery`). The `broken` latch below is only set once this
    /// breaker gives up.
    recovery: Mutex<recovery::RecoveryCtl>,
    /// Latched when the recovery breaker exhausts its reset budget (or the
    /// failure is unrecoverable, e.g. a lost copy-back): every subsequent
    /// operation fails fast with [`CudadevError::Broken`] so the runtime
    /// skips the dead device and runs on the host instead.
    broken: AtomicBool,
    /// Lifetime count of memory-governor ladder rungs taken (evictions,
    /// pending maps, tiled launches, OOM fallbacks) — the scalar pressure
    /// signal behind [`CudaDev::mem_pressure`].
    pressure_events: std::sync::atomic::AtomicU64,
}

impl CudaDev {
    pub fn new(cfg: CudaDevConfig) -> CudaDev {
        CudaDev {
            cfg,
            device: Mutex::new(None),
            initialized: AtomicBool::new(false),
            lib: Mutex::new(None),
            modules: Mutex::new(HashMap::new()),
            maps: Mutex::new(HashMap::new()),
            cache: Mutex::new(HashMap::new()),
            lru_tick: std::sync::atomic::AtomicU64::new(0),
            clock: Mutex::new(DevClock::default()),
            launch_hist: Mutex::new(HashMap::new()),
            streams: stream::AsyncState::default(),
            recovery: Mutex::new(recovery::RecoveryCtl::default()),
            broken: AtomicBool::new(false),
            pressure_events: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether the device has been fully initialized yet (it only happens
    /// when the first kernel is about to be offloaded — §4.2.1).
    pub fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::Acquire)
    }

    /// Has a terminal failure latched the device broken?
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    /// Latch the device broken; all further operations fail fast.
    pub fn mark_broken(&self) {
        self.broken.store(true, Ordering::Release);
    }

    /// This device's trace-process number.
    fn pid(&self) -> u64 {
        self.cfg.device_id as u64
    }

    /// Current simulated time on this device's clock — every trace
    /// timestamp derives from here, never from wall time.
    fn now(&self) -> f64 {
        self.clock.lock().total_s()
    }

    /// The device, initializing on first use; fails instead of panicking
    /// when the (possibly fault-injected) driver cannot come up.
    pub fn try_device(&self) -> Result<Arc<Device>, CudadevError> {
        if self.is_broken() {
            return Err(CudadevError::Broken);
        }
        let mut slot = self.device.lock();
        if let Some(d) = slot.as_ref() {
            return Ok(d.clone());
        }
        let obs = &self.cfg.obs;
        let init_span =
            obs.tracer.span(self.pid(), 0, "device init", "init", || self.now(), vec![]);
        let plan = match self.cfg.fault_plan.clone() {
            Some(p) => Some(p),
            // A malformed OMPI_FAULT_PLAN is a typed, surfaced error —
            // never a panic, never a silent fault-free run.
            None => match FaultPlan::from_env_for_device(self.cfg.device_id) {
                Ok(p) => p.map(Arc::new),
                Err(e) => {
                    return Err(CudadevError::Init(ExecError::Trap(format!(
                        "OMPI_FAULT_PLAN: {e}"
                    ))))
                }
            },
        };
        if let Some(p) = &plan {
            if let Err(e) = p.check(FaultSite::Init) {
                if e.is_terminal() {
                    // No device exists yet, so recovery has nothing to
                    // reset or replay; the breaker still paces re-probes of
                    // the init until its budget runs out.
                    let p = p.clone();
                    self.recover_terminal::<()>(None, None, "init", &[], e, || {
                        p.check(FaultSite::Init)
                    })
                    .map_err(|e| match e {
                        CudadevError::Data(e) => CudadevError::Init(e),
                        e => e,
                    })?;
                } else {
                    obs.tracer.instant(
                        self.pid(),
                        0,
                        "fault",
                        "fault",
                        self.now(),
                        vec![("site", "init".into()), ("error", e.to_string().into())],
                    );
                    return Err(CudadevError::Init(e));
                }
            }
        }
        let d = Arc::new(Device::new(self.cfg.global_mem));
        d.set_fault_plan(plan);
        if obs.tracer.is_enabled() {
            d.set_trace(Some(gpusim::DevTrace { obs: obs.clone(), pid: self.pid(), base_s: 0.0 }));
        }
        // Reserve the device runtime control block (critical-section lock
        // words).
        let lock_area = match self.retrying("init", || d.mem_alloc(NUM_LOCKS * 4)) {
            Ok(a) => a,
            Err(e) if e.is_terminal() => self
                .recover_terminal(Some(&d), None, "init", &[], e, || {
                    self.retrying("init", || d.mem_alloc(NUM_LOCKS * 4))
                })
                .map_err(|e| match e {
                    CudadevError::Data(e) => CudadevError::Init(e),
                    e => e,
                })?,
            Err(e) => return Err(CudadevError::Init(e)),
        };
        *self.lib.lock() = Some(Arc::new(CudaDeviceLib::new(lock_area)));
        *slot = Some(d.clone());
        self.clock.lock().init_s += gpusim::timing::DEVICE_INIT_S;
        drop(init_span);
        obs.tracer.set_process_name(self.pid(), &format!("dev{} (cudadev)", self.cfg.device_id));
        obs.metrics.incr(self.pid(), "device_inits", 1);
        self.initialized.store(true, Ordering::Release);
        Ok(d)
    }

    /// The device, initializing on first use. Panics on initialization
    /// failure — a convenience for tests and examples; runtime code goes
    /// through [`CudaDev::try_device`].
    pub fn device(&self) -> Arc<Device> {
        self.try_device().expect("device initialization failed")
    }

    fn devlib(&self) -> Result<Arc<CudaDeviceLib>, CudadevError> {
        self.try_device()?;
        self.lib
            .lock()
            .as_ref()
            .cloned()
            .ok_or_else(|| CudadevError::Init(ExecError::Trap("device library missing".into())))
    }

    /// Run a driver operation, retrying transient faults with bounded
    /// exponential backoff. The backoff delay is charged to the device
    /// clock as `retry_backoff_s` (and still slept in wall time); each
    /// retry leaves a nested span plus a per-site counter bump.
    fn retrying<T>(
        &self,
        site: &str,
        mut f: impl FnMut() -> Result<T, ExecError>,
    ) -> Result<T, ExecError> {
        let obs = &self.cfg.obs;
        let mut attempt = 0u32;
        loop {
            match f() {
                Err(e) if e.is_transient() && attempt < self.cfg.retry.max_retries => {
                    attempt += 1;
                    let delay = self.cfg.retry.delay(attempt);
                    let delay_s = delay.as_secs_f64();
                    let t0 = {
                        let mut clk = self.clock.lock();
                        clk.retries += 1;
                        let t = clk.total_s();
                        clk.retry_backoff_s += delay_s;
                        t
                    };
                    obs.tracer.instant(
                        self.pid(),
                        0,
                        "fault",
                        "fault",
                        t0,
                        vec![("site", site.into()), ("error", e.to_string().into())],
                    );
                    obs.tracer.complete(
                        self.pid(),
                        0,
                        "retry",
                        "retry",
                        t0,
                        delay_s,
                        vec![("site", site.into()), ("attempt", attempt.into())],
                    );
                    obs.metrics.incr(self.pid(), &format!("retries.{site}"), 1);
                    std::thread::sleep(delay);
                }
                Err(e) => {
                    obs.tracer.instant(
                        self.pid(),
                        0,
                        "fault",
                        "fault",
                        self.now(),
                        vec![("site", site.into()), ("error", e.to_string().into())],
                    );
                    obs.metrics.incr(self.pid(), &format!("faults.{site}"), 1);
                    return Err(e);
                }
                ok => return ok,
            }
        }
    }

    /// Post-process a driver result at a site where recovery cannot help
    /// (e.g. a copy-back whose device-side results are already lost):
    /// terminal failures latch the device broken. A hang is first booked
    /// as a watchdog timeout so the stall is visible and charged.
    fn latch(&self, site: &str, e: ExecError) -> ExecError {
        if matches!(e, ExecError::Hang(_)) {
            self.charge_watchdog(site);
        }
        if e.is_terminal() {
            self.latch_broken(&e);
        }
        e
    }

    /// Latch the device broken, leaving a trace instant the first time.
    /// Queued async stream work is drained first: its virtual time is
    /// charged and the stream state cleared, so the host fallback that
    /// follows starts from a quiesced device rather than re-executing next
    /// to still-pending transfers.
    fn latch_broken(&self, e: &ExecError) {
        self.streams.drain_and_clear(&self.clock);
        if !self.is_broken() {
            self.cfg.obs.tracer.instant(
                self.pid(),
                0,
                "device broken",
                "fault",
                self.now(),
                vec![("error", e.to_string().into())],
            );
            self.cfg.obs.metrics.incr(self.pid(), "broken", 1);
            self.set_breaker(BreakerState::Latched);
            // A latched device is exactly what the flight ring exists for:
            // dump the tail (first trigger wins) before fallback rewrites
            // the recent history.
            self.cfg.obs.flight.post_mortem("device latched broken");
        }
        self.mark_broken();
    }

    // ------------------------------------------------- data environment

    /// Enter a mapping for `[host_addr, host_addr+len)`.
    ///
    /// Under memory pressure this never fails with out-of-memory: the
    /// governor first reuses / evicts cached buffers, and if the arena is
    /// still too small it records a *pending* mapping (no device buffer,
    /// host copy authoritative) whose fate — tiled streaming or host
    /// fallback — is decided at offload time. Pending mappings report
    /// device address 0.
    pub fn map(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        kind: MapKind,
    ) -> Result<u64, CudadevError> {
        let device = self.try_device()?;
        {
            let mut maps = self.maps.lock();
            if let Some(entry) = maps.get_mut(&host_addr) {
                entry.refcount += 1;
                if matches!(kind, MapKind::From | MapKind::ToFrom) {
                    entry.copy_out = true;
                }
                return Ok(entry.dev_ptr);
            }
        }
        // The maps lock is NOT held across the allocation and upload
        // below: a terminal failure there enters the recovery manager,
        // which needs the map table to salvage and replay. Regions execute
        // sequentially on the host thread, so nothing races the gap.
        let obs = &self.cfg.obs;
        let want_in = matches!(kind, MapKind::To | MapKind::ToFrom);
        let mut need_h2d = want_in;

        // Transfer-reuse: a cached buffer of the same shape skips the
        // allocation, and — when its contents provably match the host copy
        // — the upload too.
        let dev_ptr = match self.cache_take(host_addr, len) {
            Some(cached) => {
                obs.metrics.incr(self.pid(), "cache.reuse", 1);
                if want_in && self.cache_contents_match(host_mem, host_addr, len, &cached) {
                    obs.tracer.instant(
                        self.pid(),
                        0,
                        "transfer reuse",
                        "mem",
                        self.now(),
                        vec![("bytes", len.into()), ("dev_ptr", cached.dev_ptr.into())],
                    );
                    obs.metrics.incr(self.pid(), "transfer_reuse", 1);
                    need_h2d = false;
                }
                Some(cached.dev_ptr)
            }
            None => match self.alloc_pressured(&device, len) {
                Ok(p) => p,
                Err(e) => {
                    let Some(ex) = e.exec_error().filter(|x| x.is_terminal()).cloned() else {
                        return Err(e);
                    };
                    Some(self.recover_terminal(
                        Some(&device),
                        Some(host_mem),
                        "alloc",
                        &[],
                        ex,
                        || self.retrying("alloc", || device.mem_alloc(len)),
                    )?)
                }
            },
        };
        let Some(dev_ptr) = dev_ptr else {
            // Out of memory even after eviction: pend the mapping.
            self.maps.lock().insert(
                host_addr,
                MapEntry {
                    dev_ptr: 0,
                    len,
                    refcount: 1,
                    copy_out: matches!(kind, MapKind::From | MapKind::ToFrom),
                    pending: true,
                    host_dirty: false,
                    device_dirty: false,
                },
            );
            obs.tracer.instant(
                self.pid(),
                0,
                "map pending",
                "pressure",
                self.now(),
                vec![("bytes", len.into()), ("host", host_addr.into())],
            );
            obs.metrics.incr(self.pid(), "maps_pending", 1);
            return Ok(0);
        };
        obs.tracer.instant(
            self.pid(),
            0,
            "alloc",
            "mem",
            self.now(),
            vec![("bytes", len.into()), ("dev_ptr", dev_ptr.into())],
        );
        obs.metrics.observe(self.pid(), "alloc_bytes", len);
        if need_h2d {
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(host_addr), &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            if let Err(e) = self.h2d_copy(&device, dev_ptr, &buf) {
                if e.is_terminal() {
                    // The buffer just allocated is not in the map table
                    // yet; `extra` keeps it alive (at the same address)
                    // across the reset so the probe can re-upload into it.
                    self.recover_terminal(
                        Some(&device),
                        Some(host_mem),
                        "h2d",
                        &[(dev_ptr, len)],
                        e,
                        || self.h2d_copy(&device, dev_ptr, &buf),
                    )?;
                } else {
                    return Err(CudadevError::Data(e));
                }
            }
        }
        self.maps.lock().insert(
            host_addr,
            MapEntry {
                dev_ptr,
                len,
                refcount: 1,
                copy_out: matches!(kind, MapKind::From | MapKind::ToFrom),
                pending: false,
                host_dirty: false,
                device_dirty: false,
            },
        );
        Ok(dev_ptr)
    }

    /// Exit a mapping; copies back and frees when the refcount drops to 0.
    pub fn unmap(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        kind: MapKind,
    ) -> Result<(), CudadevError> {
        let device = self.try_device()?;
        let mut maps = self.maps.lock();
        // Typed error (not a trap, not a panic) for addresses with no live
        // mapping — never mapped, already unmapped, or evicted. The device
        // stays usable; the runtime decides whether that is a program bug.
        let Some(mut entry) = maps.remove(&host_addr) else {
            return Err(CudadevError::NotMapped { host_addr });
        };
        entry.refcount = entry.refcount.saturating_sub(1);
        if kind != MapKind::Delete && entry.refcount > 0 {
            // Other references keep the mapping alive.
            maps.insert(host_addr, entry);
            return Ok(());
        }
        if entry.pending {
            // Never had a device buffer; the host copy is already
            // authoritative (tiled launches streamed results back as they
            // ran, or a fallback recomputed them on the host).
            return Ok(());
        }
        let obs = &self.cfg.obs;
        let want_out = entry.copy_out || matches!(kind, MapKind::From | MapKind::ToFrom);
        let mut synced: Option<Vec<u8>> = None;
        if want_out
            && kind != MapKind::Delete
            && kind != MapKind::Release
            // A dirty device copy is stale (the host recomputed the data in
            // a fallback); copying it back would clobber the good results.
            && !entry.host_dirty
        {
            let mut buf = vec![0u8; entry.len as usize];
            self.d2h_copy(&device, entry.dev_ptr, &mut buf).map_err(|e| self.latch("d2h", e))?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host_addr), &buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            synced = Some(buf);
        }
        if kind == MapKind::Delete {
            self.free_dev(&device, entry.dev_ptr)?;
            obs.tracer.instant(
                self.pid(),
                0,
                "free",
                "mem",
                self.now(),
                vec![("bytes", entry.len.into()), ("dev_ptr", entry.dev_ptr.into())],
            );
        } else {
            // Keep the buffer as an LRU cache entry for transfer reuse;
            // the evict rung reclaims it under allocation pressure.
            self.cache_insert(host_addr, &entry, synced);
        }
        Ok(())
    }

    /// `target update to(...)` / `from(...)`: refresh one side.
    pub fn update(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        to_device: bool,
    ) -> Result<(), CudadevError> {
        let device = self.try_device()?;
        let mut maps = self.maps.lock();
        let entry = maps.get_mut(&host_addr).ok_or(CudadevError::NotMapped { host_addr })?;
        if entry.pending {
            // No device buffer exists; the host copy is authoritative in
            // both directions, so there is nothing to move.
            return Ok(());
        }
        let len = len.min(entry.len);
        if to_device {
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(host_addr), &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            self.h2d_copy(&device, entry.dev_ptr, &buf).map_err(|e| self.latch("h2d", e))?;
            // The device copy is fresh again — both sides agree.
            entry.host_dirty = false;
            entry.device_dirty = false;
        } else {
            if entry.host_dirty {
                // The host side is newer (a fallback recomputed it);
                // pulling the stale device copy would lose data.
                return Ok(());
            }
            let mut buf = vec![0u8; len as usize];
            self.d2h_copy(&device, entry.dev_ptr, &mut buf).map_err(|e| self.latch("d2h", e))?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host_addr), &buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            if len == entry.len {
                // The host now holds everything the kernel wrote.
                entry.device_dirty = false;
            }
        }
        Ok(())
    }

    /// Parameter preparation: the device address for a mapped host address.
    /// Pending mappings have no device buffer and report `None`.
    pub fn dev_addr(&self, host_addr: u64) -> Option<u64> {
        self.maps.lock().get(&host_addr).filter(|e| !e.pending).map(|e| e.dev_ptr)
    }

    /// Is anything mapped? (test/diagnostic helper)
    pub fn live_mappings(&self) -> usize {
        self.maps.lock().len()
    }

    // ------------------------------------------------------ kernel launch

    /// Loading phase: find and load the kernel module `name` (file stem) in
    /// the kernel directory.
    pub fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, CudadevError> {
        if let Some(m) = self.modules.lock().get(name) {
            // In-memory hit: the module survived from an earlier job on
            // this device — the signal the batch server's affinity
            // placement is chasing.
            self.cfg.obs.metrics.incr(self.pid(), "modload.mem_hit", 1);
            return Ok(m.clone());
        }
        let load_err =
            |reason: String| CudadevError::ModuleLoad { module: name.to_string(), reason };
        let device = self.try_device()?;
        let obs = &self.cfg.obs;
        let _span = obs.tracer.span(
            self.pid(),
            0,
            "module load",
            "modload",
            || self.now(),
            vec![("module", name.into())],
        );
        self.retrying("modload", || device.fault_check(FaultSite::ModuleLoad))
            .map_err(|e| self.latch("modload", e))
            .map_err(|e| load_err(e.to_string()))?;
        let cubin_path = self.cfg.kernel_dir.join(format!("{name}.cubin"));
        let sptx_path = self.cfg.kernel_dir.join(format!("{name}.sptx"));
        let module: Arc<sptx::Module> = if cubin_path.exists() {
            let bytes = std::fs::read(&cubin_path)
                .map_err(|e| load_err(format!("reading {cubin_path:?}: {e}")))?;
            let m = Arc::new(sptx::cubin::decode(&bytes).map_err(|e| load_err(e.to_string()))?);
            self.clock.lock().modload_s += gpusim::timing::MODULE_LOAD_CUBIN_S;
            obs.tracer.instant(self.pid(), 0, "modload: cubin", "modload", self.now(), vec![]);
            obs.metrics.incr(self.pid(), "modload.cubin", 1);
            m
        } else if sptx_path.exists() {
            // JIT path with disk cache.
            let text = std::fs::read_to_string(&sptx_path)
                .map_err(|e| load_err(format!("reading {sptx_path:?}: {e}")))?;
            if device.fault_check(FaultSite::JitCache).is_err() {
                // Injected cache corruption: scribble over the cached
                // artifact so the loader must detect the damage, invalidate
                // the entry and recompile.
                let cached = jit::cache_path(&text, &self.cfg.jit_cache_dir);
                if cached.exists() {
                    let _ = std::fs::write(&cached, b"\xffcorrupted-cache-entry");
                    self.clock.lock().jit_invalidations += 1;
                    obs.tracer.instant(
                        self.pid(),
                        0,
                        "jit cache invalidated",
                        "fault",
                        self.now(),
                        vec![("module", name.into())],
                    );
                    obs.metrics.incr(self.pid(), "jit_invalidations", 1);
                }
            }
            let (m, cache_hit) = jit::jit_load(&text, &self.cfg.jit_cache_dir, &exports())
                .map_err(|reason| CudadevError::Jit { module: name.to_string(), reason })?;
            let mut clk = self.clock.lock();
            let kind = if cache_hit {
                clk.jit_cache_hits += 1;
                clk.modload_s += gpusim::timing::JIT_CACHE_HIT_S;
                "modload: jit cache hit"
            } else {
                clk.jit_compiles += 1;
                clk.modload_s += gpusim::timing::JIT_COMPILE_S;
                "modload: jit compile"
            };
            drop(clk);
            obs.tracer.instant(self.pid(), 0, kind, "modload", self.now(), vec![]);
            obs.metrics.incr(
                self.pid(),
                if cache_hit { "modload.jit_cache_hit" } else { "modload.jit_compile" },
                1,
            );
            m
        } else {
            return Err(load_err(format!(
                "kernel binary not found in {:?} (looked for .cubin and .sptx)",
                self.cfg.kernel_dir
            )));
        };
        sptx::verify_module(&module).map_err(|e| load_err(e.to_string()))?;
        self.modules.lock().insert(name.to_string(), module.clone());
        Ok(module)
    }

    /// Register an in-memory module (used by tests and the quickstart
    /// example; normal operation loads from disk).
    pub fn register_module(&self, module: sptx::Module) {
        self.modules.lock().insert(module.name.clone(), Arc::new(module));
    }

    /// Launch phase (`cuLaunchKernel`): run `kernel` from module `module`
    /// with raw parameter bits. `host_mem` is the host arena backing the
    /// mapped data environment — the recovery manager replays device
    /// buffers from it if the launch dies terminally.
    pub fn launch(
        &self,
        host_mem: &MemArena,
        module: &str,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        params: Vec<u64>,
    ) -> Result<LaunchStats, CudadevError> {
        let device = self.try_device()?;
        let lib = self.devlib()?;
        let obs = &self.cfg.obs;
        let _span = obs.tracer.span(
            self.pid(),
            0,
            &format!("launch {kernel}"),
            "launch",
            || self.now(),
            vec![
                ("module", module.into()),
                ("kernel", kernel.into()),
                ("grid", format!("{}x{}x{}", grid[0], grid[1], grid[2]).into()),
                ("block", format!("{}x{}x{}", block[0], block[1], block[2]).into()),
            ],
        );
        let m = self.load_module(module)?;
        let launch_err =
            |error: ExecError| CudadevError::Launch { kernel: kernel.to_string(), error };
        let total_threads = grid[0] as u64
            * grid[1] as u64
            * grid[2] as u64
            * block[0] as u64
            * block[1] as u64
            * block[2] as u64;

        // Launch-level sampling: estimate repeated launches of the same
        // kernel from the measured cycles-per-thread of earlier ones.
        if self.cfg.launch_sampling {
            let key = format!("{module}:{kernel}");
            let (count, cpt) = {
                let h = self.launch_hist.lock();
                h.get(&key).copied().unwrap_or((0, 0.0))
            };
            let measure = count < 8 || count % 128 == 0;
            if !measure && cpt > 0.0 {
                let cycles = cpt * total_threads as f64;
                let time_s = gpusim::timing::LAUNCH_OVERHEAD_S + cycles / device.props.clock_hz;
                self.launch_hist.lock().insert(key, (count + 1, cpt));
                let stats = LaunchStats {
                    blocks_total: (grid[0] as u64) * (grid[1] as u64) * (grid[2] as u64),
                    blocks_executed: 0,
                    kernel_cycles: cycles as u64,
                    time_s,
                    ..Default::default()
                };
                self.finish_launch(kernel, &stats);
                return Ok(stats);
            }
            let cfg = LaunchConfig { grid, block, params };
            let mut run = || {
                device.set_trace_base(self.launch_base());
                gpusim::launch(&device, &m, kernel, &cfg, lib.as_ref(), self.cfg.exec_mode)
            };
            let stats = match self.retrying("launch", &mut run) {
                Ok(s) => s,
                Err(e) if e.is_terminal() => self
                    .recover_terminal(Some(&device), Some(host_mem), "launch", &[], e, || {
                        self.retrying("launch", &mut run)
                    })
                    .map_err(|err| match err {
                        CudadevError::Data(error) => {
                            CudadevError::Launch { kernel: kernel.to_string(), error }
                        }
                        err => err,
                    })?,
                Err(e) => return Err(launch_err(e)),
            };
            self.mark_device_dirty_params(&cfg.params);
            let this_cpt = stats.kernel_cycles as f64 / total_threads.max(1) as f64;
            let new_cpt = if cpt > 0.0 { 0.7 * cpt + 0.3 * this_cpt } else { this_cpt };
            self.launch_hist.lock().insert(key, (count + 1, new_cpt));
            self.finish_launch(kernel, &stats);
            return Ok(stats);
        }

        let cfg = LaunchConfig { grid, block, params };
        let mut run = || {
            device.set_trace_base(self.launch_base());
            gpusim::launch(&device, &m, kernel, &cfg, lib.as_ref(), self.cfg.exec_mode)
        };
        let stats = match self.retrying("launch", &mut run) {
            Ok(s) => s,
            Err(e) if e.is_terminal() => self
                .recover_terminal(Some(&device), Some(host_mem), "launch", &[], e, || {
                    self.retrying("launch", &mut run)
                })
                .map_err(|err| match err {
                    CudadevError::Data(error) => {
                        CudadevError::Launch { kernel: kernel.to_string(), error }
                    }
                    err => err,
                })?,
            Err(e) => return Err(launch_err(e)),
        };
        self.mark_device_dirty_params(&cfg.params);
        self.finish_launch(kernel, &stats);
        Ok(stats)
    }

    /// After a simulated kernel actually ran, every mapped buffer it was
    /// handed may have been written: mark them device-dirty so recovery
    /// salvages them before any reset.
    fn mark_device_dirty_params(&self, params: &[u64]) {
        let mut maps = self.maps.lock();
        for e in maps.values_mut() {
            if !e.pending && params.contains(&e.dev_ptr) {
                e.device_dirty = true;
            }
        }
    }

    /// Trace base for an eager kernel simulation: the synchronous clock,
    /// or — on an async stream — where the compute engine would schedule
    /// the kernel, so in-kernel block events line up with the stream span.
    fn launch_base(&self) -> f64 {
        match self.async_stream() {
            Some(s) => self.async_kernel_base(s),
            None => self.now(),
        }
    }

    /// Charge a completed launch to the clock and emit its kernel event
    /// plus occupancy metrics. On an async stream the launch is queued on
    /// the stream engine instead and charged at the next flush.
    fn finish_launch(&self, kernel: &str, stats: &LaunchStats) {
        if let Some(s) = self.async_stream() {
            self.async_finish_launch(s, kernel, stats);
            return;
        }
        let (t0, pid) = {
            let mut clk = self.clock.lock();
            clk.kernel_s += stats.time_s;
            clk.launches += 1;
            (clk.total_s() - stats.time_s, self.pid())
        };
        let obs = &self.cfg.obs;
        obs.tracer.complete(
            pid,
            0,
            &format!("kernel {kernel}"),
            "kernel",
            t0,
            stats.time_s,
            vec![
                ("cycles", stats.kernel_cycles.into()),
                ("blocks", stats.blocks_total.into()),
                ("resident_blocks", stats.resident_blocks.into()),
                ("waves", stats.waves.into()),
            ],
        );
        obs.metrics.incr(pid, "launches", 1);
        obs.metrics.observe(pid, "kernel_cycles", stats.kernel_cycles);
        if stats.waves > 1 {
            // Blocks beyond the resident set had to wait for a wave slot —
            // the occupancy-limited share of the grid.
            obs.metrics.incr(
                pid,
                "occupancy_limited_blocks",
                stats.blocks_total.saturating_sub(stats.resident_blocks),
            );
        }
    }

    /// Reset the virtual clock (per-measurement runs). Zeroes every
    /// accumulator and counter, symmetric with [`DevClock::merge`], and
    /// discards the async stream schedule along with it.
    pub fn reset_clock(&self) {
        self.streams.reset();
        self.clock.lock().reset();
    }

    pub fn kernel_dir(&self) -> &PathBuf {
        &self.cfg.kernel_dir
    }

    pub fn exec_mode(&self) -> ExecMode {
        self.cfg.exec_mode
    }

    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.cfg.exec_mode = mode;
    }
}
