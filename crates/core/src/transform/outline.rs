//! Pipeline pass 1: **outline** (§3).
//!
//! Extracts a `target`-family region from the host AST: decides which
//! lowering scheme applies (combined §3.1 vs master/worker §3.2),
//! canonicalizes the loop nest, classifies every free variable into its
//! [`VarRole`] (mapped buffer / by-value firstprivate / reduction
//! accumulator), computes the kernel parameter list and launch arguments,
//! and seeds the kernel program with `__device__` copies of the region's
//! call-graph closure.

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{Clause, DirKind, RedOp};
use minic::sema::FrameInfo;
use minic::types::Ty;

use crate::analyze::*;

use super::{err, long_cast, sizeof_expr, HostCtx, MapItem, Translator, VarRole};

/// Everything the later passes need to know about one outlined region.
pub(crate) struct OutlinedRegion {
    pub(crate) kid: u32,
    pub(crate) module_name: String,
    pub(crate) kernel_fn: String,
    /// Combined-construct lowering (§3.1)? Otherwise master/worker (§3.2).
    pub(crate) combined: bool,
    /// `target teams distribute` without the `parallel for` part.
    pub(crate) dist_only: bool,
    /// Canonical loop nest of a combined construct.
    pub(crate) loops: Vec<LoopInfo>,
    /// Body inside the canonical nest (combined constructs only).
    pub(crate) inner_body: Stmt,
    /// Free-variable classification.
    pub(crate) roles: Vec<(String, Ty, VarRole)>,
    /// Resolved map-clause items.
    pub(crate) maps: Vec<MapItem>,
    /// `private` clause variables (fresh kernel locals).
    pub(crate) privates: Vec<String>,
    /// Kernel parameters, in launch-argument order.
    pub(crate) params: Vec<Param>,
    /// Host-side launch arguments matching `params`.
    pub(crate) launch_args: Vec<Expr>,
    /// Per-launch-argument byte stride per distribute iteration (memory-
    /// pressure tiling): non-zero when the shape analysis proved the
    /// mapped buffer sliceable along the distribute loop, `0` when the
    /// argument is a scalar or must stay resident.
    pub(crate) launch_rows: Vec<Expr>,
    /// Can the governor tile this region's iteration space under memory
    /// pressure? (Combined 1-D unit-stride zero-based nest, no
    /// reductions.)
    pub(crate) tileable: bool,
    /// Mapped scalars written back through `__out_<name>` pointers
    /// (master/worker regions only).
    pub(crate) scalar_writebacks: Vec<String>,
    /// Body handed to the master/worker pass (None for combined regions).
    pub(crate) mw_body: Option<Stmt>,
    /// The kernel program under construction (call-closure `__device__`
    /// copies; the entry kernel is appended at emission).
    pub(crate) kprog: Program,
    /// The `device()` clause expression (`-1` = default-device ICV).
    pub(crate) dev_expr: Expr,
}

impl OutlinedRegion {
    /// Human-readable summary recorded at the outline pass boundary.
    pub(crate) fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("kernel {} (module {})\n", self.kernel_fn, self.module_name));
        out.push_str(&format!(
            "scheme: {}\n",
            if self.combined {
                if self.dist_only {
                    "combined (distribute only)"
                } else {
                    "combined"
                }
            } else {
                "master/worker"
            }
        ));
        out.push_str(&format!("device: {}\n", minic::pretty::expr(&self.dev_expr)));
        for (name, _ty, role) in &self.roles {
            let role_s = match role {
                VarRole::Mapped { .. } => "mapped",
                VarRole::FirstPrivate => "firstprivate",
                VarRole::Reduction(_) => "reduction",
            };
            out.push_str(&format!("var {name}: {role_s}\n"));
        }
        for p in &self.params {
            out.push_str(&format!("param {}: {}\n", p.name, minic::pretty::declarator("", &p.ty)));
        }
        out
    }
}

impl<'p> Translator<'p> {
    /// Outline one `target`-family region.
    pub(crate) fn outline_region(
        &mut self,
        o: &OmpStmt,
        ctx: &HostCtx<'_>,
    ) -> TResult<OutlinedRegion> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "target without a body"))?;

        let kid = self.next_kernel;
        self.next_kernel += 1;
        let module_name = format!("{}k{}_{}", self.module_prefix, kid, ctx.fname);
        let kernel_fn = format!("_kernelFunc{}_{}", kid, ctx.fname);

        // Which lowering does this region need?
        let combined = matches!(
            dir.kind,
            DirKind::TargetTeamsDistributeParallelFor | DirKind::TargetTeamsDistribute
        );
        let dist_only = dir.kind == DirKind::TargetTeamsDistribute;

        // Canonical nest for combined constructs.
        let collapse = dir.clause_collapse();
        let (loops, inner_body) = if combined {
            let (l, bdy) = canonical_nest(body, collapse)?;
            (l, bdy)
        } else {
            (Vec::new(), Stmt::Empty)
        };

        // Classify free variables.
        let fvs = free_vars(body, ctx.frame);
        let maps = self.map_items(dir, ctx, o.pos)?;
        let privates: Vec<String> = dir.privates().into_iter().cloned().collect();
        let firstprivates_clause: Vec<String> = dir.firstprivates().into_iter().cloned().collect();
        let reductions: Vec<(RedOp, String)> =
            dir.reductions().map(|(op, v)| (op, v.clone())).collect();
        let loop_vars: Vec<&str> = loops.iter().map(|l| l.var.as_str()).collect();

        let mut roles: Vec<(String, Ty, VarRole)> = Vec::new();
        for fv in &fvs {
            if loop_vars.contains(&fv.name.as_str()) || privates.contains(&fv.name) {
                continue; // loop vars / privates: fresh locals
            }
            if let Some((op, _)) = reductions.iter().find(|(_, v)| *v == fv.name) {
                roles.push((fv.name.clone(), fv.ty.clone(), VarRole::Reduction(*op)));
                continue;
            }
            if let Some((_, kind, base, bytes, pty)) = maps.iter().find(|(n, ..)| *n == fv.name) {
                // Mapped *scalars* are passed by value (a copy travels with
                // the launch, like OMPi's firstprivate default for scalars);
                // only pointers/arrays become device-buffer parameters.
                if fv.ty.decayed().is_ptr() {
                    roles.push((
                        fv.name.clone(),
                        fv.ty.clone(),
                        VarRole::Mapped {
                            kind: *kind,
                            base: base.clone(),
                            bytes: bytes.clone(),
                            param_ty: pty.clone(),
                        },
                    ));
                } else {
                    roles.push((fv.name.clone(), fv.ty.clone(), VarRole::FirstPrivate));
                }
                continue;
            }
            let decayed = fv.ty.decayed();
            if decayed.is_ptr() && !firstprivates_clause.contains(&fv.name) {
                return Err(err(
                    o.pos,
                    format!(
                        "`{}` is referenced in the target region but has no map clause",
                        fv.name
                    ),
                ));
            }
            roles.push((fv.name.clone(), fv.ty.clone(), VarRole::FirstPrivate));
        }
        // Mapped-but-unreferenced variables still need their data motion:
        // they participate in map/unmap but are not kernel parameters.

        // ---- seed the kernel program ----
        let mut kprog = Program { items: Vec::new() };
        // Call-graph closure → __device__ copies.
        for name in call_closure(body, self.prog) {
            let f = self.prog.items.iter().find_map(|i| match i {
                Item::Func(f) if f.sig.name == name => Some(f),
                _ => None,
            });
            if let Some(f) = f {
                if contains_standalone_parallel(&Stmt::Block(f.body.clone())) {
                    return Err(err(
                        o.pos,
                        format!(
                            "function `{name}` called from a kernel contains OpenMP directives"
                        ),
                    ));
                }
                let mut df = f.clone();
                df.sig.quals = FnQuals { global: false, device: true };
                df.frame = FrameInfo::default();
                kprog.items.push(Item::Func(df));
            }
        }

        // Kernel parameters.
        let mut params: Vec<Param> = Vec::new();
        let mut launch_args: Vec<Expr> = Vec::new();
        for (name, _ty, role) in &roles {
            match role {
                VarRole::Mapped { base, param_ty, .. } => {
                    params.push(Param { name: name.clone(), ty: param_ty.clone(), slot: u32::MAX });
                    launch_args.push(base.clone());
                }
                VarRole::FirstPrivate => {
                    params.push(Param { name: name.clone(), ty: _ty.clone(), slot: u32::MAX });
                    launch_args.push(b::ident(name));
                }
                VarRole::Reduction(_) => {
                    params.push(Param {
                        name: format!("__red_{name}"),
                        ty: Ty::Ptr(Box::new(_ty.clone())),
                        slot: u32::MAX,
                    });
                    launch_args.push(b::addr_of(b::ident(name)));
                }
            }
        }

        // Memory-pressure tiling: can the governor split this region's
        // iteration space, and at what per-iteration byte stride does each
        // mapped buffer argument slice? Only the combined 1-D unit-stride
        // zero-based form preserves the iteration↔row correspondence the
        // slice arithmetic depends on; reductions fold across tiles and
        // are excluded.
        let tileable = combined
            && loops.len() == 1
            && loops[0].step == 1
            && !loops[0].inclusive
            && loops[0].lb.const_int() == Some(0)
            && !roles.iter().any(|(_, _, r)| matches!(r, VarRole::Reduction(_)));
        let mut launch_rows: Vec<Expr> = if tileable {
            let loop_vars: Vec<String> = loops.iter().map(|l| l.var.clone()).collect();
            let varying = varying_vars(&inner_body, &loop_vars);
            roles
                .iter()
                .map(|(name, _, role)| match role {
                    VarRole::Mapped { param_ty: Ty::Ptr(pointee), .. } => {
                        match row_stride(&inner_body, name, &loops[0].var, &varying) {
                            Some(elems) => {
                                b::bin(BinOp::Mul, long_cast(elems), sizeof_expr(pointee))
                            }
                            None => b::int(0),
                        }
                    }
                    _ => b::int(0),
                })
                .collect()
        } else {
            roles.iter().map(|_| b::int(0)).collect()
        };

        // Master/worker extras: scalar write-backs + the region body handed
        // to the master/worker pass.
        let mut scalar_writebacks: Vec<String> = Vec::new();
        let mut mw_body = None;
        if !combined {
            // Mapped scalars with write-back (map(from/tofrom: scalar)):
            // pass an output pointer and have the master store the final
            // value before exiting the target region.
            for (name, kind, _, _, _) in &maps {
                let is_scalar_wb =
                    matches!(kind, minic::omp::MapKind::From | minic::omp::MapKind::ToFrom)
                        && roles
                            .iter()
                            .any(|(n, _, r)| n == name && matches!(r, VarRole::FirstPrivate));
                if is_scalar_wb {
                    let ty = ctx
                        .frame
                        .slots
                        .iter()
                        .find(|sl| sl.name == *name)
                        .map(|sl| sl.ty.clone())
                        .unwrap_or(Ty::Int);
                    params.push(Param {
                        name: format!("__out_{name}"),
                        ty: Ty::Ptr(Box::new(ty)),
                        slot: u32::MAX,
                    });
                    launch_args.push(b::addr_of(b::ident(name)));
                    scalar_writebacks.push(name.clone());
                }
            }
            // `target parallel [for]`: the parallel part becomes an inner
            // stand-alone region so the master/worker scheme handles it.
            mw_body = Some(match dir.kind {
                DirKind::TargetParallel | DirKind::TargetParallelFor => {
                    let inner_kind = if dir.kind == DirKind::TargetParallel {
                        DirKind::Parallel
                    } else {
                        DirKind::ParallelFor
                    };
                    let forwarded: Vec<Clause> = dir
                        .clauses
                        .iter()
                        .filter(|c| {
                            matches!(
                                c,
                                Clause::NumThreads(_)
                                    | Clause::Schedule { .. }
                                    | Clause::Collapse(_)
                                    | Clause::Private(_)
                                    | Clause::Reduction { .. }
                            )
                        })
                        .cloned()
                        .collect();
                    Stmt::Omp(OmpStmt {
                        dir: minic::omp::Directive { kind: inner_kind, clauses: forwarded },
                        body: Some(Box::new(body.clone())),
                        pos: o.pos,
                    })
                }
                _ => body.clone(),
            });
        }

        // `device()` routing: -1 selects the default-device ICV at run time.
        let dev_expr = dir.clause_device().cloned().unwrap_or_else(|| b::int(-1));

        // Master/worker scalar write-backs appended launch arguments after
        // the per-role rows were computed; they are scalars (row 0).
        while launch_rows.len() < launch_args.len() {
            launch_rows.push(b::int(0));
        }

        Ok(OutlinedRegion {
            kid,
            module_name,
            kernel_fn,
            combined,
            dist_only,
            loops,
            inner_body,
            roles,
            maps,
            privates,
            params,
            launch_args,
            launch_rows,
            tileable,
            scalar_writebacks,
            mw_body,
            kprog,
            dev_expr,
        })
    }
}
