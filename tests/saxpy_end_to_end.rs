//! Workspace-level integration test: the paper's Fig. 1 example through
//! every layer — parser → translator → kernel compiler → cubin on disk →
//! host interpreter → cudadev → SIMT simulator — in both binary modes.

use ompi_nano::Value;
use ompi_nano::{BinMode, Ompicc, Runner, RunnerConfig};

const SRC: &str = r#"
void saxpy_device(float a, float *x, float *y, int size)
{
    #pragma omp target map(to: a, size, x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main() {
    int n = 300;
    float x[300];
    float y[300];
    for (int i = 0; i < n; i++) { x[i] = (float) i; y[i] = 0.5f; }
    saxpy_device(3.0f, x, y, n);
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (y[i] != 3.0f * (float) i + 0.5f) bad++;
    return bad;
}
"#;

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn saxpy_cubin_mode() {
    let app = Ompicc::new(work("cubin")).with_mode(BinMode::Cubin).compile(SRC).unwrap();
    // The kernel binary exists on disk as a cubin.
    let bin = app.kernel_dir.join(format!("{}.cubin", app.kernels[0].module_name));
    assert!(bin.exists(), "cubin artifact missing: {bin:?}");
    let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
}

#[test]
fn saxpy_ptx_jit_mode() {
    let dir = work("ptx");
    let app = Ompicc::new(&dir).with_mode(BinMode::Ptx).compile(SRC).unwrap();
    let sptx_file = app.kernel_dir.join(format!("{}.sptx", app.kernels[0].module_name));
    assert!(sptx_file.exists(), "PTX artifact missing: {sptx_file:?}");
    let cfg = RunnerConfig { jit_cache_dir: dir.join("jit"), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert_eq!(runner.dev_clock().jit_compiles, 1, "first launch JIT-compiles");

    // A fresh runner hits the JIT disk cache.
    let runner2 = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner2.run_main().unwrap(), Value::I32(0));
    let clk = runner2.dev_clock();
    assert_eq!(clk.jit_compiles, 0);
    assert_eq!(clk.jit_cache_hits, 1, "second process must hit the disk cache");
}

#[test]
fn kernel_file_is_separate_and_readable() {
    // §3.3: OMPi does not embed kernels in the executable — they are
    // stand-alone CUDA C files compiled separately.
    let dir = work("files");
    let app = Ompicc::new(&dir).compile(SRC).unwrap();
    let cu = dir.join("src").join(format!("{}.cu", app.kernels[0].module_name));
    let text = std::fs::read_to_string(&cu).expect("kernel .cu file on disk");
    assert!(text.contains("__global__ void _kernelFunc0_saxpy_device"));
    // And it reparses as valid CUDA-dialect mini-C.
    minic::parse(&text).expect("generated kernel file must reparse");
}
