//! Deterministic fault-injection tests for the robust device runtime:
//! transient faults are retried to success, terminal faults latch the
//! device broken and degrade to host execution with identical results,
//! and JIT-cache corruption is invalidated and recompiled.

use std::sync::Arc;

use ompi_nano::unibench::{app_by_name, compile_omp, run_once, runner_config};
use ompi_nano::{BinMode, BreakerState, ExecMode, FaultPlan, Ompicc, Runner, RunnerConfig, Value};

/// The paper's Fig. 1 SAXPY; `main` returns the number of wrong elements,
/// so `I32(0)` proves the computed `y` is bit-identical to the host-side
/// expectation regardless of where the region actually executed.
const SAXPY: &str = r#"
void saxpy_device(float a, float *x, float *y, int size)
{
    #pragma omp target map(to: a, size, x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main() {
    int n = 300;
    float x[300];
    float y[300];
    for (int i = 0; i < n; i++) { x[i] = (float) i; y[i] = 0.5f; }
    saxpy_device(3.0f, x, y, n);
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (y[i] != 3.0f * (float) i + 0.5f) bad++;
    return bad;
}
"#;

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn plan(text: &str) -> Option<Arc<FaultPlan>> {
    Some(Arc::new(FaultPlan::parse(text).expect("valid fault plan")))
}

fn saxpy_runner(tag: &str, fault: &str) -> Runner {
    let app = Ompicc::new(work(tag)).compile(SAXPY).unwrap();
    let cfg = RunnerConfig { fault_plan: plan(fault), ..Default::default() };
    Runner::new(&app, &cfg).unwrap()
}

/// A transient launch fault (two failing calls, then clean) is retried
/// within the default budget; the program still succeeds on the device.
#[test]
fn transient_launch_fault_is_retried_to_success() {
    let runner = saxpy_runner("launch-transient", "launch@1x2");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    let clk = runner.dev_clock();
    assert_eq!(clk.retries, 2, "both failing launch attempts must be retried");
    assert!(!runner.device_broken(), "transient faults must not latch the device");
    assert!(clk.launches >= 1, "the retried launch must eventually run");
}

/// Transient faults on the copy-in path are likewise absorbed by retry.
#[test]
fn transient_h2d_fault_is_retried_to_success() {
    let runner = saxpy_runner("h2d-transient", "h2d@1x1");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    let clk = runner.dev_clock();
    assert_eq!(clk.retries, 1);
    assert!(!runner.device_broken());
}

/// A transient fault that outlives the retry budget is a genuine error:
/// it surfaces to the caller instead of being silently degraded.
#[test]
fn exhausted_retry_budget_surfaces_the_error() {
    let runner = saxpy_runner("launch-exhausted", "launch@1x9");
    let err = runner.run_main().unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "error must carry the fault diagnostic, got: {err}"
    );
    assert!(!runner.device_broken(), "a transient fault never latches the device");
    assert_eq!(runner.dev_clock().retries, 3, "default budget is three retries");
}

/// Device initialization fails terminally: every target region runs on the
/// host from the start, and the result is still correct.
#[test]
fn terminal_init_fault_falls_back_to_host() {
    let runner = saxpy_runner("init-terminal", "init@1x*");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(runner.device_broken(), "terminal init fault must latch the device");
    assert_eq!(runner.dev_clock().launches, 0, "nothing may reach the device");
}

/// The device dies mid-region (after the copy-in, at launch): the region
/// re-executes on the host against the still-authoritative host memory.
#[test]
fn terminal_launch_fault_falls_back_mid_region() {
    let runner = saxpy_runner("launch-terminal", "launch@1x*");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(runner.device_broken(), "terminal launch fault must latch the device");
    let clk = runner.dev_clock();
    assert_eq!(clk.launches, 0, "no launch ever completed");
    assert!(clk.h2d_bytes > 0, "the copy-in had already happened");
}

/// The device dies *after* a successful launch, at the copy-back: the
/// device results are lost, host memory is still pre-kernel state, and the
/// region must re-execute on the host rather than silently keep stale data.
#[test]
fn terminal_d2h_fault_falls_back_after_launch() {
    let runner = saxpy_runner("d2h-terminal", "d2h@1x*");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(runner.device_broken());
    let clk = runner.dev_clock();
    assert!(clk.launches >= 1, "the kernel itself ran fine");
    assert_eq!(clk.d2h_bytes, 0, "no copy-back ever committed");
}

/// If one buffer's copy-back commits and a later one is lost, host state is
/// mixed — re-executing would double-apply. That must be a hard error, not
/// a silent fallback.
#[test]
fn copy_back_loss_after_partial_commit_is_an_error() {
    const TWO_OUT: &str = r#"
int main() {
    int n = 64;
    float y[64];
    float z[64];
    for (int i = 0; i < n; i++) { y[i] = 1.0f; z[i] = 2.0f; }
    #pragma omp target map(tofrom: y[0:n], z[0:n])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++) { y[i] = y[i] + 1.0f; z[i] = z[i] + 1.0f; }
    }
    return 0;
}
"#;
    let app = Ompicc::new(work("partial-commit")).compile(TWO_OUT).unwrap();
    // d2h call #1 (first unmap) commits, call #2 is lost terminally.
    let cfg = RunnerConfig { fault_plan: plan("d2h@2x*"), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    let err = runner.run_main().unwrap_err();
    assert!(
        err.to_string().contains("partial commit"),
        "expected the partial-commit diagnostic, got: {err}"
    );
    assert!(runner.device_broken());
}

/// Host fallback is bit-identical to device execution for a unibench app:
/// the same compiled binary, run once healthy and once with a dead device,
/// produces the exact same output bits.
#[test]
fn host_fallback_bit_identical_for_unibench_app() {
    let app = app_by_name("atax").expect("atax is a unibench app");
    let n = app.test_size;
    let dir = work("unibench-atax");
    let compiled = compile_omp(&app, &dir);

    let cfg_ok = runner_config((app.footprint)(n), ExecMode::Functional, false);
    let dev_runner = Runner::new(&compiled, &cfg_ok).unwrap();
    let dev_out = run_once(&app, &dev_runner, n).unwrap();
    assert!(!dev_runner.device_broken());
    assert!(dev_runner.dev_clock().launches > 0, "healthy run must use the device");

    let cfg_bad = RunnerConfig { fault_plan: plan("launch@1x*"), ..cfg_ok };
    let host_runner = Runner::new(&compiled, &cfg_bad).unwrap();
    let host_out = run_once(&app, &host_runner, n).unwrap();
    assert!(host_runner.device_broken(), "terminal fault must latch the device");

    assert_eq!(dev_out.len(), host_out.len());
    for (i, (d, h)) in dev_out.iter().zip(&host_out).enumerate() {
        assert_eq!(
            d.to_bits(),
            h.to_bits(),
            "output[{i}] differs: device {d} vs host fallback {h}"
        );
    }
}

/// The recovery tentpole: a kernel that hangs once at launch is detected
/// by the watchdog, the device is reset, the data environment is replayed,
/// and the half-open probe re-runs the launch — on the *device*, never the
/// host. `main` returning `I32(0)` proves the re-executed region is
/// bit-identical to a fault-free run.
#[test]
fn hang_at_launch_recovers_via_reset_and_replay() {
    let app = Ompicc::new(work("hang-launch")).compile(SAXPY).unwrap();
    let obs = obs::Obs::enabled();
    let cfg = RunnerConfig {
        fault_plan: plan("hang@launch"),
        obs: Some(obs.clone()),
        ..Default::default()
    };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(!runner.device_broken(), "a recovered hang must not latch the device");
    let clk = runner.dev_clock();
    assert!(clk.launches >= 1, "the probed launch must complete on the device");
    let host_clk = runner.dev_clock_of(runner.num_devices()).unwrap();
    assert_eq!(host_clk.fallbacks, 0, "successful recovery must never fall back to the host");
    assert!(
        clk.retry_backoff_s > 0.0,
        "the watchdog deadline and breaker cool-down are simulated waiting"
    );
    assert!(obs.metrics.counter(0, "recovery.reset") >= 1, "a device reset must be recorded");
    assert!(obs.metrics.counter(0, "recovery.replayed") >= 1, "mappings must be replayed");
    assert!(obs.metrics.counter(0, "timeouts.launch") >= 1, "the watchdog timeout is counted");
    assert!(obs.metrics.counter(0, "recovery.recovered") >= 1);
    let dev = runner.registry().device(0).unwrap().clone();
    assert_eq!(dev.breaker_state(), BreakerState::Closed, "a successful probe closes the breaker");
}

/// A hang that never clears exhausts the breaker's reset budget: every
/// reset's probe hangs again, the breaker latches, and only *then* does the
/// old permanent broken-latch (and host fallback) engage. Host memory is
/// still pre-kernel, so the fallback result is still correct.
#[test]
fn persistent_hang_exhausts_reset_budget_and_latches() {
    let app = Ompicc::new(work("hang-persistent")).compile(SAXPY).unwrap();
    let obs = obs::Obs::enabled();
    let cfg = RunnerConfig {
        fault_plan: plan("hang@launch@1x*"),
        obs: Some(obs.clone()),
        ..Default::default()
    };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0), "host fallback must still be correct");
    assert!(runner.device_broken(), "an exhausted reset budget latches the device");
    let dev = runner.registry().device(0).unwrap().clone();
    assert_eq!(dev.breaker_state(), BreakerState::Latched);
    assert_eq!(runner.dev_clock().launches, 0, "no launch ever completed");
    assert_eq!(
        obs.metrics.counter(0, "recovery.reset"),
        u64::from(ompi_nano::ompi_core::DEFAULT_MAX_RESETS),
        "the full reset budget must be spent before latching"
    );
    assert!(obs.metrics.counter(0, "breaker.state.latched") >= 1);
    assert!(obs.metrics.counter(0, "recovery.probe") >= 1, "each reset half-opens and probes");
}

/// A two-call hang window: the first probe after a reset hangs *again*, so
/// recovery has to loop (reset #2, second cool-down) before the breaker
/// closes — still within the default budget of three, still no fallback.
#[test]
fn repeated_hang_within_budget_recovers_on_second_reset() {
    let obs = obs::Obs::enabled();
    let app = Ompicc::new(work("hang-twice")).compile(SAXPY).unwrap();
    let cfg = RunnerConfig {
        fault_plan: plan("hang@launch@1x2"),
        obs: Some(obs.clone()),
        ..Default::default()
    };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(!runner.device_broken());
    assert_eq!(runner.dev_clock_of(runner.num_devices()).unwrap().fallbacks, 0);
    assert!(obs.metrics.counter(0, "recovery.reset") >= 2, "both hangs cost a reset");
    assert!(obs.metrics.counter(0, "recovery.recovered") >= 1);
    let dev = runner.registry().device(0).unwrap().clone();
    assert_eq!(dev.breaker_state(), BreakerState::Closed);
}

/// Malformed `OMPI_FAULT_PLAN`-style specs surface as typed, descriptive
/// configuration errors from `Runner::new` — not as silently disabled
/// injection and not as a panic.
#[test]
fn malformed_fault_plans_surface_typed_errors() {
    let app = Ompicc::new(work("bad-plan")).compile(SAXPY).unwrap();
    for (spec, needle) in [
        ("launch@", "bad call number"),
        ("launch@0", "call numbers are 1-based"),
        ("launch@1x0", "repeat count must be at least 1"),
        ("launch@1xzz", "bad repeat count"),
        ("warp@1x2", "unknown site `warp`"),
        ("launch", "expected `site@first"),
        ("dev9z:launch@1", "bad device prefix"),
        ("chaos:banana", "seed must be an unsigned integer"),
    ] {
        let cfg = RunnerConfig { fault_spec: Some(spec.into()), ..Default::default() };
        let err = Runner::new(&app, &cfg)
            .err()
            .unwrap_or_else(|| panic!("spec `{spec}` must be rejected"));
        assert!(
            err.to_string().contains(needle),
            "spec `{spec}`: expected diagnostic containing `{needle}`, got: {err}"
        );
    }
}

/// Two `nowait` regions on async streams, then the device dies terminally
/// at the second region's launch: the pending stream work must be drained
/// (not deadlocked, not replayed against a dead arena) before the host
/// fallback, and both regions' results stay correct.
#[test]
fn terminal_fault_with_pending_nowait_streams_drains_and_falls_back() {
    const NOWAIT_TWO_REGIONS: &str = r#"
int main() {
    int n = 2048;
    float a[2048]; float b[2048];
    for (int i = 0; i < n; i++) { a[i] = 1.0f; b[i] = 2.0f; }
    #pragma omp target teams distribute parallel for nowait map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = 2.0f * a[i] + 1.0f;
    #pragma omp target teams distribute parallel for nowait map(tofrom: b[0:n])
    for (int i = 0; i < n; i++)
        b[i] = 2.0f * b[i] + 1.0f;
    #pragma omp taskwait
    for (int i = 0; i < n; i++) {
        if (a[i] != 3.0f) return 1;
        if (b[i] != 5.0f) return 2;
    }
    return 0;
}
"#;
    let app = Ompicc::new(work("nowait-terminal")).compile(NOWAIT_TWO_REGIONS).unwrap();
    // Launch #1 (first region) succeeds; from launch #2 on, the device is
    // lost — every reset probe re-fires the fault, so the breaker latches
    // with region 1's stream work still queued on the virtual timeline.
    let cfg = RunnerConfig {
        async_streams: Some(true),
        fault_plan: plan("launch@2x*"),
        ..Default::default()
    };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0), "both regions must still be correct");
    assert!(runner.device_broken());
    assert_eq!(runner.dev_clock().launches, 1, "only the first region's launch completed");
    let host_clk = runner.dev_clock_of(runner.num_devices()).unwrap();
    assert!(host_clk.fallbacks >= 1, "the second region must re-execute on the host");
}

/// An injected JIT-cache corruption is detected on reload, invalidated and
/// recompiled — the program never sees the corrupt artifact.
#[test]
fn jit_cache_corruption_is_invalidated_and_recompiled() {
    let dir = work("jit-corrupt");
    let app = Ompicc::new(&dir).with_mode(BinMode::Ptx).compile(SAXPY).unwrap();
    let cache = dir.join("jit");

    // First process: populate the disk cache.
    let cfg = RunnerConfig { jit_cache_dir: cache.clone(), ..Default::default() };
    let warm = Runner::new(&app, &cfg).unwrap();
    assert_eq!(warm.run_main().unwrap(), Value::I32(0));
    assert_eq!(warm.dev_clock().jit_compiles, 1);

    // Second process: the fault plan corrupts the cached entry before use.
    let cfg2 = RunnerConfig { fault_plan: plan("jitcache@1x1"), ..cfg };
    let runner = Runner::new(&app, &cfg2).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    let clk = runner.dev_clock();
    assert_eq!(clk.jit_invalidations, 1, "the corrupt entry must be invalidated");
    assert_eq!(clk.jit_compiles, 1, "and recompiled rather than trusted");
    assert_eq!(clk.jit_cache_hits, 0);
    assert!(!runner.device_broken(), "cache corruption is always recoverable");

    // Third process, no fault: the republished entry is valid again.
    let cfg3 = RunnerConfig { jit_cache_dir: cache, ..Default::default() };
    let cold = Runner::new(&app, &cfg3).unwrap();
    assert_eq!(cold.run_main().unwrap(), Value::I32(0));
    assert_eq!(cold.dev_clock().jit_cache_hits, 1);
}
