//! The `.sptx` text format — the reproduction's "PTX" artifact.
//!
//! Architecture-agnostic, human-readable assembly with an exact
//! assembler/disassembler round trip. Kernel files compiled in PTX mode are
//! stored on disk in this format and JIT-assembled at first launch.

use crate::ir::*;

/// Assembly error.
#[derive(Clone, Debug)]
pub struct AsmError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sptx asm error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

// --------------------------------------------------------------- printing

/// Disassemble a module to `.sptx` text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    out.push_str(".version 1\n");
    out.push_str(&format!(".target {}\n", if m.arch.is_empty() { "sm_53" } else { &m.arch }));
    out.push_str(&format!(".module {}\n", if m.name.is_empty() { "anon" } else { &m.name }));
    out.push_str(&format!(".linked {}\n", m.device_lib_linked as u8));
    for f in &m.functions {
        out.push('\n');
        print_function(f, &mut out);
    }
    out
}

fn print_function(f: &Function, out: &mut String) {
    out.push_str(".func ");
    if f.is_kernel {
        out.push_str("kernel ");
    }
    out.push_str(&f.name);
    out.push('(');
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p.ty.name());
        out.push(' ');
        out.push_str(&p.name);
    }
    out.push_str(&format!(
        ") regs={} local={} shared={}\n{{\n",
        f.num_regs, f.local_size, f.shared_size
    ));
    print_nodes(&f.body, 1, out);
    out.push_str("}\n");
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn print_nodes(nodes: &[Node], depth: usize, out: &mut String) {
    for n in nodes {
        match n {
            Node::Inst(i) => {
                indent(depth, out);
                print_inst(i, out);
                out.push('\n');
            }
            Node::If { cond, then_b, else_b } => {
                indent(depth, out);
                out.push_str("if ");
                print_op(cond, out);
                out.push_str(" {\n");
                print_nodes(then_b, depth + 1, out);
                indent(depth, out);
                if else_b.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    print_nodes(else_b, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
            }
            Node::Loop { body } => {
                indent(depth, out);
                out.push_str("loop {\n");
                print_nodes(body, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
            Node::Break => {
                indent(depth, out);
                out.push_str("break;\n");
            }
            Node::Continue => {
                indent(depth, out);
                out.push_str("continue;\n");
            }
        }
    }
}

fn print_op(o: &Operand, out: &mut String) {
    match o {
        Operand::Reg(Reg(n)) => out.push_str(&format!("%r{n}")),
        Operand::ImmI(v) => out.push_str(&v.to_string()),
        Operand::ImmF(v) => {
            if v.is_nan() {
                out.push_str("nan");
            } else if v.is_infinite() {
                out.push_str(if *v > 0.0 { "inf" } else { "-inf" });
            } else {
                let s = format!("{v:?}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') {
                    out.push_str(".0");
                }
            }
        }
        Operand::Special(s) => out.push_str(s.name()),
        Operand::LocalBase => out.push_str("%local"),
        Operand::SharedBase => out.push_str("%shmem"),
    }
}

fn print_addr(addr: &Operand, offset: i64, out: &mut String) {
    out.push('[');
    print_op(addr, out);
    if offset != 0 {
        out.push_str(&format!("{offset:+}"));
    }
    out.push(']');
}

fn print_inst(i: &Inst, out: &mut String) {
    match i {
        Inst::Bin { ty, op, dst, a, b } => {
            out.push_str(&format!("{}.{} ", op.name(), ty.name()));
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_op(a, out);
            out.push_str(", ");
            print_op(b, out);
            out.push(';');
        }
        Inst::Un { ty, op, dst, a } => {
            out.push_str(&format!("{}.{} ", op.name(), ty.name()));
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_op(a, out);
            out.push(';');
        }
        Inst::Mov { dst, src } => {
            out.push_str("mov ");
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_op(src, out);
            out.push(';');
        }
        Inst::Cvt { to, from, dst, src } => {
            out.push_str(&format!("cvt.{}.{} ", to.name(), from.name()));
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_op(src, out);
            out.push(';');
        }
        Inst::Ld { ty, dst, addr, offset } => {
            out.push_str(&format!("ld.{} ", ty.name()));
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_addr(addr, *offset, out);
            out.push(';');
        }
        Inst::St { ty, src, addr, offset } => {
            out.push_str(&format!("st.{} ", ty.name()));
            print_addr(addr, *offset, out);
            out.push_str(", ");
            print_op(src, out);
            out.push(';');
        }
        Inst::AtomCas { dst, addr, expected, new } => {
            out.push_str("atom.cas.b32 ");
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_addr(addr, 0, out);
            out.push_str(", ");
            print_op(expected, out);
            out.push_str(", ");
            print_op(new, out);
            out.push(';');
        }
        Inst::Atom { op, dst, addr, val } => {
            out.push_str(op.name());
            out.push(' ');
            print_op(&Operand::Reg(*dst), out);
            out.push_str(", ");
            print_addr(addr, 0, out);
            out.push_str(", ");
            print_op(val, out);
            out.push(';');
        }
        Inst::BarSync { id, count } => {
            out.push_str("bar.sync ");
            print_op(id, out);
            if let Some(c) = count {
                out.push_str(", ");
                print_op(c, out);
            }
            out.push(';');
        }
        Inst::Call { func, dst, args } => {
            out.push_str(&format!("call.{func} "));
            if let Some(d) = dst {
                print_op(&Operand::Reg(*d), out);
                out.push_str(", ");
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_op(a, out);
            }
            out.push_str(");");
        }
        Inst::Intrinsic { name, dst, args, sargs } => {
            out.push_str(&format!("intr {name} "));
            if !sargs.is_empty() {
                out.push('[');
                for (i, s) in sargs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{s:?}"));
                }
                out.push_str("] ");
            }
            if let Some(d) = dst {
                print_op(&Operand::Reg(*d), out);
                out.push_str(", ");
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_op(a, out);
            }
            out.push_str(");");
        }
        Inst::Ret { val } => {
            out.push_str("ret");
            if let Some(v) = val {
                out.push(' ');
                print_op(v, out);
            }
            out.push(';');
        }
        Inst::Trap { msg } => {
            out.push_str(&format!("trap {:?};", msg));
        }
    }
}

// ---------------------------------------------------------------- parsing

/// Assemble `.sptx` text into a module.
pub fn parse_module(src: &str) -> Result<Module, AsmError> {
    let mut p = AsmParser { lines: src.lines().enumerate().collect(), i: 0 };
    p.module()
}

struct AsmParser<'s> {
    lines: Vec<(usize, &'s str)>,
    i: usize,
}

impl<'s> AsmParser<'s> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        let line = self.lines.get(self.i).map(|(n, _)| n + 1).unwrap_or(self.lines.len());
        AsmError { line, msg: msg.into() }
    }

    /// Next non-empty, non-comment line (trimmed).
    fn next_line(&mut self) -> Option<&'s str> {
        while self.i < self.lines.len() {
            let (_, l) = self.lines[self.i];
            let l = match l.find("//") {
                Some(p) => &l[..p],
                None => l,
            };
            let t = l.trim();
            self.i += 1;
            if !t.is_empty() {
                return Some(t);
            }
        }
        None
    }

    fn peek_line(&mut self) -> Option<&'s str> {
        let save = self.i;
        let l = self.next_line();
        self.i = save;
        l
    }

    fn module(&mut self) -> Result<Module, AsmError> {
        let mut m = Module { arch: "sm_53".into(), ..Default::default() };
        while let Some(line) = self.peek_line() {
            if line.starts_with(".version") {
                self.next_line();
            } else if let Some(rest) = line.strip_prefix(".target") {
                m.arch = rest.trim().to_string();
                self.next_line();
            } else if let Some(rest) = line.strip_prefix(".module") {
                m.name = rest.trim().to_string();
                self.next_line();
            } else if let Some(rest) = line.strip_prefix(".linked") {
                m.device_lib_linked = rest.trim() == "1";
                self.next_line();
            } else if line.starts_with(".func") {
                m.functions.push(self.function()?);
            } else {
                return Err(self.err(format!("unexpected line `{line}`")));
            }
        }
        Ok(m)
    }

    fn function(&mut self) -> Result<Function, AsmError> {
        let header = self.next_line().ok_or_else(|| self.err("expected .func"))?;
        let rest = header.strip_prefix(".func").ok_or_else(|| self.err("expected .func"))?.trim();
        let (is_kernel, rest) = match rest.strip_prefix("kernel ") {
            Some(r) => (true, r.trim()),
            None => (false, rest),
        };
        let paren = rest.find('(').ok_or_else(|| self.err("missing ( in .func"))?;
        let name = rest[..paren].trim().to_string();
        let close = rest.rfind(')').ok_or_else(|| self.err("missing ) in .func"))?;
        let params_text = &rest[paren + 1..close];
        let mut params = Vec::new();
        for part in params_text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut it = part.split_whitespace();
            let ty = it
                .next()
                .and_then(ScalarTy::from_name)
                .ok_or_else(|| self.err(format!("bad param `{part}`")))?;
            let pname = it.next().unwrap_or("").to_string();
            params.push(ParamDecl { name: pname, ty });
        }
        // Attributes after the paren: regs= local= shared=
        let mut num_regs = 0u32;
        let mut local_size = 0u64;
        let mut shared_size = 0u64;
        for attr in rest[close + 1..].split_whitespace() {
            if let Some(v) = attr.strip_prefix("regs=") {
                num_regs = v.parse().map_err(|_| self.err("bad regs="))?;
            } else if let Some(v) = attr.strip_prefix("local=") {
                local_size = v.parse().map_err(|_| self.err("bad local="))?;
            } else if let Some(v) = attr.strip_prefix("shared=") {
                shared_size = v.parse().map_err(|_| self.err("bad shared="))?;
            }
        }
        let open = self.next_line().ok_or_else(|| self.err("expected {"))?;
        if open != "{" {
            return Err(self.err(format!("expected {{, found `{open}`")));
        }
        let body = self.nodes()?;
        Ok(Function { name, is_kernel, params, num_regs, local_size, shared_size, body })
    }

    /// Parse nodes until a closing `}` (consumed). Handles `} else {`.
    fn nodes(&mut self) -> Result<Vec<Node>, AsmError> {
        let mut out = Vec::new();
        loop {
            let line = self.next_line().ok_or_else(|| self.err("unterminated block"))?;
            if line == "}" {
                return Ok(out);
            }
            if line == "} else {" {
                // Handled by caller of the `if` branch; rewind one line.
                self.i -= 1;
                return Ok(out);
            }
            if let Some(rest) = line.strip_prefix("if ") {
                let rest = rest.trim();
                let cond_text =
                    rest.strip_suffix('{').ok_or_else(|| self.err("if needs {"))?.trim();
                let cond = parse_operand(cond_text).map_err(|m| self.err(m))?;
                let then_b = self.nodes()?;
                // Did we stop at `} else {`?
                let mut else_b = Vec::new();
                if let Some(l) = self.peek_line() {
                    if l == "} else {" {
                        self.next_line();
                        else_b = self.nodes()?;
                    }
                }
                out.push(Node::If { cond, then_b, else_b });
                continue;
            }
            if line == "loop {" {
                let body = self.nodes()?;
                out.push(Node::Loop { body });
                continue;
            }
            if line == "break;" {
                out.push(Node::Break);
                continue;
            }
            if line == "continue;" {
                out.push(Node::Continue);
                continue;
            }
            let inst = parse_inst(line).map_err(|m| self.err(m))?;
            out.push(Node::Inst(inst));
        }
    }
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    let s = s.trim();
    if let Some(r) = s.strip_prefix("%r") {
        let n: u32 = r.parse().map_err(|_| format!("bad register `{s}`"))?;
        return Ok(Operand::Reg(Reg(n)));
    }
    if s == "%local" {
        return Ok(Operand::LocalBase);
    }
    if s == "%shmem" {
        return Ok(Operand::SharedBase);
    }
    if let Some(sp) = SpecialReg::from_name(s) {
        return Ok(Operand::Special(sp));
    }
    if s == "nan" {
        return Ok(Operand::ImmF(f64::NAN));
    }
    if s == "inf" {
        return Ok(Operand::ImmF(f64::INFINITY));
    }
    if s == "-inf" {
        return Ok(Operand::ImmF(f64::NEG_INFINITY));
    }
    if s.contains('.') || s.contains('e') || s.contains('E') {
        return s.parse::<f64>().map(Operand::ImmF).map_err(|_| format!("bad float `{s}`"));
    }
    s.parse::<i64>().map(Operand::ImmI).map_err(|_| format!("bad operand `{s}`"))
}

/// Split a comma-separated operand list, respecting `[...]` brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_addr(s: &str) -> Result<(Operand, i64), String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| format!("bad address `{s}`"))?;
    // Find a top-level +/- separating base and offset (skip the leading char).
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let base = parse_operand(&inner[..i])?;
            let off: i64 = inner[i..].parse().map_err(|_| format!("bad offset in `{s}`"))?;
            return Ok((base, off));
        }
    }
    Ok((parse_operand(inner)?, 0))
}

fn parse_inst(line: &str) -> Result<Inst, String> {
    let line = line.strip_suffix(';').ok_or_else(|| format!("missing ; in `{line}`"))?.trim();
    let (mnemonic, rest) = match line.find(' ') {
        Some(p) => (&line[..p], line[p + 1..].trim()),
        None => (line, ""),
    };

    // ret
    if mnemonic == "ret" {
        let val = if rest.is_empty() { None } else { Some(parse_operand(rest)?) };
        return Ok(Inst::Ret { val });
    }
    if mnemonic == "trap" {
        let msg = rest.trim().trim_matches('"').to_string();
        return Ok(Inst::Trap { msg });
    }
    if mnemonic == "mov" {
        let ops = split_operands(rest);
        if ops.len() != 2 {
            return Err(format!("mov needs 2 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        return Ok(Inst::Mov { dst, src: parse_operand(&ops[1])? });
    }
    if mnemonic == "bar.sync" {
        let ops = split_operands(rest);
        let id = parse_operand(&ops[0])?;
        let count = if ops.len() > 1 { Some(parse_operand(&ops[1])?) } else { None };
        return Ok(Inst::BarSync { id, count });
    }
    if let Some(name) = mnemonic.strip_prefix("call.") {
        let func: u32 = name.parse().map_err(|_| format!("bad call index `{mnemonic}`"))?;
        let (dst, args) = parse_call_tail(rest)?;
        return Ok(Inst::Call { func, dst, args });
    }
    if mnemonic == "intr" {
        let (name, tail) = match rest.find(' ') {
            Some(p) => (&rest[..p], rest[p + 1..].trim()),
            None => (rest, ""),
        };
        let (sargs, tail) = parse_sargs(tail)?;
        let (dst, args) = parse_call_tail(tail)?;
        return Ok(Inst::Intrinsic { name: name.to_string(), dst, args, sargs });
    }
    if mnemonic == "atom.cas.b32" {
        let ops = split_operands(rest);
        if ops.len() != 4 {
            return Err(format!("atom.cas.b32 needs 4 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        let (addr, _) = parse_addr(&ops[1])?;
        return Ok(Inst::AtomCas {
            dst,
            addr,
            expected: parse_operand(&ops[2])?,
            new: parse_operand(&ops[3])?,
        });
    }
    if let Some(op) = AtomOp::from_name(mnemonic) {
        let ops = split_operands(rest);
        if ops.len() != 3 {
            return Err(format!("{mnemonic} needs 3 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        let (addr, _) = parse_addr(&ops[1])?;
        return Ok(Inst::Atom { op, dst, addr, val: parse_operand(&ops[2])? });
    }
    if let Some(tyname) = mnemonic.strip_prefix("ld.") {
        let ty = MemTy::from_name(tyname).ok_or_else(|| format!("bad ld type `{mnemonic}`"))?;
        let ops = split_operands(rest);
        if ops.len() != 2 {
            return Err(format!("ld needs 2 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        let (addr, offset) = parse_addr(&ops[1])?;
        return Ok(Inst::Ld { ty, dst, addr, offset });
    }
    if let Some(tyname) = mnemonic.strip_prefix("st.") {
        let ty = MemTy::from_name(tyname).ok_or_else(|| format!("bad st type `{mnemonic}`"))?;
        let ops = split_operands(rest);
        if ops.len() != 2 {
            return Err(format!("st needs 2 operands: `{line}`"));
        }
        let (addr, offset) = parse_addr(&ops[0])?;
        return Ok(Inst::St { ty, src: parse_operand(&ops[1])?, addr, offset });
    }
    if let Some(tail) = mnemonic.strip_prefix("cvt.") {
        let mut parts = tail.split('.');
        let to = parts
            .next()
            .and_then(CvtTy::from_name)
            .ok_or_else(|| format!("bad cvt `{mnemonic}`"))?;
        let from = parts
            .next()
            .and_then(CvtTy::from_name)
            .ok_or_else(|| format!("bad cvt `{mnemonic}`"))?;
        let ops = split_operands(rest);
        if ops.len() != 2 {
            return Err(format!("cvt needs 2 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        return Ok(Inst::Cvt { to, from, dst, src: parse_operand(&ops[1])? });
    }

    // Binary / unary ALU: `OP.TY` where OP may itself contain a dot (setp.*).
    let (opname, tyname) = match mnemonic.rfind('.') {
        Some(p) => (&mnemonic[..p], &mnemonic[p + 1..]),
        None => return Err(format!("unknown instruction `{mnemonic}`")),
    };
    let ty = ScalarTy::from_name(tyname).ok_or_else(|| format!("bad type in `{mnemonic}`"))?;
    if let Some(op) = BinOp::from_name(opname) {
        let ops = split_operands(rest);
        if ops.len() != 3 {
            return Err(format!("{opname} needs 3 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        return Ok(Inst::Bin {
            ty,
            op,
            dst,
            a: parse_operand(&ops[1])?,
            b: parse_operand(&ops[2])?,
        });
    }
    if let Some(op) = UnOp::from_name(opname) {
        let ops = split_operands(rest);
        if ops.len() != 2 {
            return Err(format!("{opname} needs 2 operands: `{line}`"));
        }
        let dst = expect_reg(&ops[0])?;
        return Ok(Inst::Un { ty, op, dst, a: parse_operand(&ops[1])? });
    }
    Err(format!("unknown instruction `{mnemonic}`"))
}

fn expect_reg(s: &str) -> Result<Reg, String> {
    match parse_operand(s)? {
        Operand::Reg(r) => Ok(r),
        _ => Err(format!("expected register, found `{s}`")),
    }
}

/// Parse an optional leading `["a", "b"]` string-immediate list; returns the
/// strings and the remaining text.
fn parse_sargs(s: &str) -> Result<(Vec<String>, &str), String> {
    let s = s.trim_start();
    if !s.starts_with('[') {
        return Ok((Vec::new(), s));
    }
    // Scan for the matching close bracket outside string quotes.
    let bytes = s.as_bytes();
    let mut i = 1;
    let mut out = Vec::new();
    loop {
        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b',') {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("unterminated sargs list".into());
        }
        if bytes[i] == b']' {
            i += 1;
            break;
        }
        if bytes[i] != b'"' {
            return Err(format!("expected string in sargs list at `{}`", &s[i..]));
        }
        i += 1;
        let mut cur = String::new();
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' && i + 1 < bytes.len() {
                i += 1;
                cur.push(match bytes[i] {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'0' => '\0',
                    b'"' => '"',
                    b'\\' => '\\',
                    other => other as char,
                });
            } else {
                cur.push(bytes[i] as char);
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err("unterminated string in sargs".into());
        }
        i += 1; // closing quote
        out.push(cur);
    }
    Ok((out, s[i..].trim_start()))
}

fn parse_call_tail(s: &str) -> Result<(Option<Reg>, Vec<Operand>), String> {
    // Either `(args)` or `%rN, (args)`.
    let s = s.trim();
    if let Some(argtext) = s.strip_prefix('(') {
        let argtext = argtext.strip_suffix(')').ok_or("missing ) in call")?;
        let args = split_operands(argtext)
            .iter()
            .map(|a| parse_operand(a))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok((None, args));
    }
    let comma = s.find(',').ok_or("bad call operands")?;
    let dst = expect_reg(&s[..comma])?;
    let tail = s[comma + 1..].trim();
    let argtext =
        tail.strip_prefix('(').and_then(|x| x.strip_suffix(')')).ok_or("missing (args) in call")?;
    let args =
        split_operands(argtext).iter().map(|a| parse_operand(a)).collect::<Result<Vec<_>, _>>()?;
    Ok((Some(dst), args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{op, FnBuilder};

    fn sample_module() -> Module {
        let mut b = FnBuilder::new("saxpy", true);
        let a = b.param("a", ScalarTy::F32);
        let n = b.param("n", ScalarTy::I32);
        let x = b.param("x", ScalarTy::I64);
        let y = b.param("y", ScalarTy::I64);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        let inb = b.bin(ScalarTy::I32, BinOp::SetLt, op::r(tid), op::r(n));
        b.begin_if();
        {
            let off64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
            let boff = b.bin(ScalarTy::I64, BinOp::Mul, op::r(off64), op::i(4));
            let xa = b.bin(ScalarTy::I64, BinOp::Add, op::r(x), op::r(boff));
            let ya = b.bin(ScalarTy::I64, BinOp::Add, op::r(y), op::r(boff));
            let xv = b.ld(MemTy::F32, op::r(xa), 0);
            let yv = b.ld(MemTy::F32, op::r(ya), 0);
            let ax = b.bin(ScalarTy::F32, BinOp::Mul, op::r(a), op::r(xv));
            let s = b.bin(ScalarTy::F32, BinOp::Add, op::r(ax), op::r(yv));
            b.st(MemTy::F32, op::r(s), op::r(ya), 0);
        }
        b.end_if(op::r(inb));
        b.begin_loop();
        b.begin_if();
        b.brk();
        b.end_if(op::i(1));
        b.end_loop();
        let bar = Inst::BarSync { id: Operand::ImmI(1), count: Some(Operand::ImmI(128)) };
        b.emit(bar);
        b.intrinsic("cudadev_exit_target", vec![], false);
        let f = b.build();

        let mut helper = FnBuilder::new("helper", false);
        let p = helper.param("v", ScalarTy::F64);
        let two = helper.bin(ScalarTy::F64, BinOp::Mul, op::r(p), op::f(2.5));
        helper.ret(Some(op::r(two)));
        let h = helper.build();

        Module {
            name: "test".into(),
            arch: "sm_53".into(),
            functions: vec![f, h],
            device_lib_linked: true,
        }
    }

    #[test]
    fn roundtrip_exact() {
        let m = sample_module();
        let text = print_module(&m);
        let m2 = parse_module(&text).expect("reparse");
        assert_eq!(m, m2);
        // And printing again is stable.
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn parses_addresses_with_offsets() {
        let i = parse_inst("ld.f32 %r1, [%r2+16];").unwrap();
        assert_eq!(
            i,
            Inst::Ld { ty: MemTy::F32, dst: Reg(1), addr: Operand::Reg(Reg(2)), offset: 16 }
        );
        let i = parse_inst("st.b64 [%local-8], %r3;").unwrap();
        assert_eq!(
            i,
            Inst::St {
                ty: MemTy::B64,
                src: Operand::Reg(Reg(3)),
                addr: Operand::LocalBase,
                offset: -8
            }
        );
    }

    #[test]
    fn parses_specials_and_floats() {
        assert_eq!(parse_operand("%ctaid.y").unwrap(), Operand::Special(SpecialReg::CtaidY));
        assert_eq!(parse_operand("2.5").unwrap(), Operand::ImmF(2.5));
        assert_eq!(parse_operand("-7").unwrap(), Operand::ImmI(-7));
        assert_eq!(parse_operand("%shmem").unwrap(), Operand::SharedBase);
    }

    #[test]
    fn error_reports_line() {
        let bad = ".version 1\n.func kernel k() regs=0 local=0 shared=0\n{\nbogus %r1;\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.line >= 4, "line was {}", err.line);
    }

    #[test]
    fn if_else_roundtrip() {
        let text = "\
.version 1
.target sm_53
.module m
.linked 0

.func kernel k() regs=2 local=0 shared=0
{
    mov %r0, 1;
    if %r0 {
        mov %r1, 2;
    } else {
        mov %r1, 3;
    }
    ret;
}
";
        let m = parse_module(text).unwrap();
        let f = &m.functions[0];
        match &f.body[1] {
            Node::If { then_b, else_b, .. } => {
                assert_eq!(then_b.len(), 1);
                assert_eq!(else_b.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(print_module(&parse_module(&print_module(&m)).unwrap()), print_module(&m));
    }
}
