//! Build/measure/validate machinery shared by tests and the Fig. 4 harness.

use gpusim::ExecMode;
use ompi_core::Runner;

use crate::apps::App;
use crate::{compile_cuda, compile_omp, max_rel_err, run_once, runner_config};

/// Which implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// OpenMP version through OMPi + cudadev.
    OmpiCudadev,
    /// Hand-written CUDA through the nvcc stand-in.
    Cuda,
}

impl Variant {
    pub fn label(&self) -> &'static str {
        match self {
            Variant::OmpiCudadev => "OMPi CUDADEV",
            Variant::Cuda => "CUDA",
        }
    }
}

/// A compiled, instantiated application.
pub struct Built {
    pub runner: Runner,
    pub variant: Variant,
}

/// One measured point of a Fig. 4 series.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub n: u32,
    /// The paper's metric: kernel time + required memory operations
    /// (simulated seconds), aggregated over every offload device.
    pub time_s: f64,
    pub kernel_s: f64,
    pub memcpy_s: f64,
    /// Simulated time hidden by async transfer/compute overlap (0 in
    /// synchronous mode).
    pub overlap_s: f64,
    pub launches: u64,
    /// Per-device clock snapshots (registry order, one per offload device).
    pub per_device: Vec<cudadev::DevClock>,
    /// Order- and bit-exact FNV-1a hash of the output vector — async and
    /// sync runs of the same app must agree on it.
    pub checksum: u64,
}

/// FNV-1a over the outputs' IEEE bit patterns: a cheap bit-exact
/// fingerprint for comparing async against sync runs.
pub fn output_checksum(xs: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Compile one variant of an app and instantiate a runner sized for `n`.
pub fn build_variant(
    app: &App,
    variant: Variant,
    n: u32,
    exec_mode: ExecMode,
    launch_sampling: bool,
    work_dir: &std::path::Path,
) -> Built {
    build_variant_obs(app, variant, n, exec_mode, launch_sampling, work_dir, None)
}

/// [`build_variant`] with an explicit observability sink: all runners built
/// with the same `Arc<Obs>` record into one trace (the harness exports it
/// once at the end).
#[allow(clippy::too_many_arguments)]
pub fn build_variant_obs(
    app: &App,
    variant: Variant,
    n: u32,
    exec_mode: ExecMode,
    launch_sampling: bool,
    work_dir: &std::path::Path,
    obs: Option<std::sync::Arc<obs::Obs>>,
) -> Built {
    let mut cfg = runner_config((app.footprint)(n), exec_mode, launch_sampling);
    cfg.obs = obs;
    build_variant_cfg(app, variant, work_dir, &cfg)
}

/// [`build_variant`] with a caller-supplied runner configuration — the
/// memory-pressure paths (fig4's `--mem`, the golden tests) cap
/// `device_mem` below the app footprint to exercise the governor.
pub fn build_variant_cfg(
    app: &App,
    variant: Variant,
    work_dir: &std::path::Path,
    cfg: &ompi_core::RunnerConfig,
) -> Built {
    let runner = match variant {
        Variant::OmpiCudadev => {
            let compiled = compile_omp(app, work_dir);
            Runner::new(&compiled, cfg).expect("runner")
        }
        Variant::Cuda => {
            let compiled = compile_cuda(app, work_dir);
            Runner::new_cuda(&compiled, cfg).expect("runner")
        }
    };
    Built { runner, variant }
}

/// Run once at size `n` and report the virtual device time, read through
/// the device registry: the aggregate clock plus one snapshot per device.
pub fn measure(app: &App, built: &Built, n: u32) -> Measurement {
    let registry = built.runner.registry();
    registry.reset_clocks();
    let out = run_once(app, &built.runner, n).unwrap_or_else(|e| {
        panic!("{} ({}) failed at n={n}: {e}", app.name, built.variant.label())
    });
    let clk = registry.aggregate_clock();
    let per_device =
        (0..registry.num_devices()).filter_map(|i| registry.clock_of(i)).collect::<Vec<_>>();
    Measurement {
        n,
        time_s: clk.offload_s(),
        kernel_s: clk.kernel_s,
        memcpy_s: clk.memcpy_s(),
        overlap_s: clk.overlap_s,
        launches: clk.launches,
        per_device,
        checksum: output_checksum(&out),
    }
}

/// Functional validation: both variants at the app's test size must match
/// the sequential Rust reference.
pub fn validate_app(app: &App, work_dir: &std::path::Path) -> Result<(), String> {
    let n = app.test_size;
    let reference = (app.reference)(n);
    for variant in [Variant::OmpiCudadev, Variant::Cuda] {
        let built = build_variant(app, variant, n, ExecMode::Functional, false, work_dir);
        let got = run_once(app, &built.runner, n)
            .map_err(|e| format!("{} {}: {e}", app.name, variant.label()))?;
        if got.len() != reference.len() {
            return Err(format!(
                "{} {}: output length {} vs reference {}",
                app.name,
                variant.label(),
                got.len(),
                reference.len()
            ));
        }
        let err = max_rel_err(&got, &reference);
        if err > app.tolerance {
            // Locate the worst element for the diagnostic.
            let (idx, _) = got
                .iter()
                .zip(&reference)
                .enumerate()
                .max_by(|(_, (x, y)), (_, (p, q))| {
                    let e1 = (*x - *y).abs() / x.abs().max(y.abs()).max(1e-3);
                    let e2 = (*p - *q).abs() / p.abs().max(q.abs()).max(1e-3);
                    e1.partial_cmp(&e2).unwrap()
                })
                .unwrap();
            return Err(format!(
                "{} {}: max rel err {err:.2e} > {:.1e} at [{idx}]: got {} want {}",
                app.name,
                variant.label(),
                app.tolerance,
                got[idx],
                reference[idx],
            ));
        }
    }
    Ok(())
}
