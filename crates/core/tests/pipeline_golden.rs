//! Golden tests at every pass boundary of the transformation pipeline.
//!
//! `translate_traced` records a pretty-printed snapshot after each device
//! pass (`outline` → `combined`/`masterworker` → `emit` → `dataenv`); these
//! tests pin the shape of each snapshot so a pipeline regression is caught
//! at the pass that introduced it, not three passes later.

use ompi_core::{translate, translate_traced, PassTrace, Pipeline, Translation, PASSES};

/// A combined construct: flows through outline → combined → emit → dataenv.
const COMBINED: &str = r#"
int main() {
    int n = 128;
    float a[128];
    #pragma omp target teams distribute parallel for device(1) map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = a[i] + 1.0f;
    return 0;
}
"#;

/// A stand-alone parallel inside target: outline → masterworker → emit →
/// dataenv.
const MASTERWORKER: &str = r#"
int main() {
    int n = 64;
    int a[64];
    #pragma omp target map(tofrom: a[0:n])
    {
        #pragma omp parallel for
        for (int i = 0; i < n; i++)
            a[i] = i;
    }
    return 0;
}
"#;

fn lower(src: &str) -> (Translation, PassTrace) {
    let mut prog = minic::parse(src).unwrap();
    minic::analyze(&mut prog).unwrap();
    translate_traced(&prog).unwrap()
}

#[test]
fn pipeline_declares_the_five_passes_in_flow_order() {
    let names: Vec<&str> = Pipeline::new().passes().iter().map(|p| p.name).collect();
    assert_eq!(names, ["outline", "combined", "masterworker", "emit", "dataenv"]);
    for p in &PASSES {
        assert!(!p.description.is_empty(), "pass {} has no description", p.name);
    }
}

#[test]
fn outline_snapshot_reports_scheme_device_and_variable_roles() {
    let (_, trace) = lower(COMBINED);
    let outl = trace.at("outline");
    assert_eq!(outl.len(), 1);
    let text = &outl[0].text;
    assert!(text.contains("scheme: combined"), "outline snapshot:\n{text}");
    assert!(text.contains("device: 1"), "device() clause must show up:\n{text}");
    assert!(text.contains("var a: mapped"), "map clause role:\n{text}");
    assert!(text.contains("var n: firstprivate"), "scalar role:\n{text}");
}

#[test]
fn combined_snapshot_uses_two_phase_chunk_distribution() {
    let (_, trace) = lower(COMBINED);
    let comb = trace.at("combined");
    assert_eq!(comb.len(), 1);
    let text = &comb[0].text;
    // §3.1: distribute phase, then the parallel-for phase on the chunk.
    assert!(text.contains("cudadev_get_distribute_chunk"), "combined body:\n{text}");
    assert!(text.contains("cudadev_get_static_chunk"), "combined body:\n{text}");
    // The combined construct never lowers through the master/worker pass.
    assert!(trace.at("masterworker").is_empty());
}

#[test]
fn masterworker_snapshot_uses_the_fig3_scheme() {
    let (_, trace) = lower(MASTERWORKER);
    let mw = trace.at("masterworker");
    assert_eq!(mw.len(), 1);
    let text = &mw[0].text;
    assert!(text.contains("cudadev_in_masterwarp"), "master/worker body:\n{text}");
    assert!(text.contains("cudadev_workerfunc"), "master/worker body:\n{text}");
    assert!(trace.at("combined").is_empty());
}

#[test]
fn emit_snapshot_is_exactly_the_kernel_file_text() {
    for src in [COMBINED, MASTERWORKER] {
        let (t, trace) = lower(src);
        let emits = trace.at("emit");
        assert_eq!(emits.len(), t.kernels.len());
        for (e, k) in emits.iter().zip(&t.kernels) {
            assert_eq!(e.region, k.kernel_fn, "emit entries follow kernel order");
            assert_eq!(e.text, k.c_text, "emit snapshot must be the .cu text verbatim");
            assert!(e.text.contains("__global__"), "kernel file:\n{}", e.text);
        }
    }
}

#[test]
fn dataenv_snapshot_routes_through_dev_calls_with_fallback() {
    let (_, trace) = lower(COMBINED);
    let de = trace.at("dataenv");
    assert_eq!(de.len(), 1);
    let text = &de[0].text;
    assert!(text.contains("__dev_ok"), "availability guard:\n{text}");
    assert!(text.contains("__dev_offload"), "offload call:\n{text}");
    assert!(text.contains("__ompi_fb_"), "host-fallback flag:\n{text}");
    // The device() clause value is bound once and threaded to every hook.
    assert!(text.contains("__ompi_dev_"), "device-id binding:\n{text}");
}

#[test]
fn every_region_snapshot_carries_its_kernel_name() {
    let (t, trace) = lower(COMBINED);
    let kfn = &t.kernels[0].kernel_fn;
    for pass in ["outline", "combined", "emit", "dataenv"] {
        let entries = trace.at(pass);
        assert_eq!(entries.len(), 1, "one region, one {pass} snapshot");
        assert_eq!(&entries[0].region, kfn);
    }
}

#[test]
fn untraced_pipeline_records_nothing_and_matches_the_traced_output() {
    let mut prog = minic::parse(COMBINED).unwrap();
    minic::analyze(&mut prog).unwrap();
    let (traced, trace) = Pipeline::traced().run(&prog).unwrap();
    assert!(!trace.entries.is_empty());

    let untraced = translate(&prog).unwrap();
    // Tracing is observation only: identical host program and kernel files.
    assert_eq!(minic::pretty::program(&untraced.host), minic::pretty::program(&traced.host));
    assert_eq!(untraced.kernels.len(), traced.kernels.len());
    for (a, b) in untraced.kernels.iter().zip(&traced.kernels) {
        assert_eq!(a.c_text, b.c_text);
    }
}

#[test]
fn translation_is_deterministic_across_runs() {
    let (t1, tr1) = lower(COMBINED);
    let (t2, tr2) = lower(COMBINED);
    assert_eq!(minic::pretty::program(&t1.host), minic::pretty::program(&t2.host));
    assert_eq!(tr1.entries.len(), tr2.entries.len());
    for (a, b) in tr1.entries.iter().zip(&tr2.entries) {
        assert_eq!((a.pass, &a.region, &a.text), (b.pass, &b.region, &b.text));
    }
}
