//! AST → register bytecode compiler.
//!
//! One [`Chunk`] per function definition, plus a synthetic chunk for
//! global initializers. The compiler is *total*: anything it cannot
//! lower (or that the walker would reject at runtime) becomes a
//! [`Op::Trap`] carrying the walker's exact message, so both engines
//! fail identically and compilation itself never errors.
//!
//! The contract is bit-identical behaviour with [`crate::walker`]:
//!
//! * **Evaluation order is preserved** — lvalue before rhs in
//!   assignments, base → null-check → stride → index for subscripts,
//!   operands left-to-right. Where a fused op would reorder an
//!   *observable* step (a trap or output) past an impure expression, an
//!   explicit [`Op::ChkNull`] keeps the walker's order; for pure
//!   index/rhs expressions the fused check is indistinguishable.
//! * **Register residency is conservative** — only scalar locals whose
//!   address is never taken (`&x`, including through casts) live in
//!   registers; everything else keeps its sema-assigned frame slot, and
//!   `frame_size` is unchanged so stack-exhaustion behaviour matches.
//! * **Every write is converted** — a register write goes through
//!   [`Op::Conv`], which equals the walker's `store_typed`/`load_typed`
//!   round-trip for every scalar type.
//!
//! Known (documented) divergences, all outside the apps' behaviour:
//! reads of reused-stack garbage (registers are typed-zeroed instead),
//! `printf` through a *runtime* format pointer evaluates surplus
//! arguments eagerly, and brace initializers on VLA-typed locals trap.

use std::collections::HashMap;

use vmcommon::Value;

use crate::ast::*;
use crate::bytecode::{Chunk, CompiledProgram, Op, TyK, R};
use crate::interp::{visit_child_exprs, visit_child_stmts, visit_stmt_exprs, Machine};
use crate::types::{ArrayLen, Ty};

/// Compile the machine's program. Infallible; see module docs.
pub fn compile(m: &Machine) -> CompiledProgram {
    let mut cx = Cx {
        m,
        consts: Vec::new(),
        strs: Vec::new(),
        str_map: HashMap::new(),
        fn_chunk: HashMap::new(),
        line_tables: Vec::new(),
        line_map: HashMap::new(),
    };
    let defs: Vec<&FuncDef> = m
        .prog
        .items
        .iter()
        .filter_map(|it| match it {
            Item::Func(f) => Some(f),
            _ => None,
        })
        .collect();
    // Later definitions shadow earlier ones in `Machine::fn_defs`
    // (last insert wins); keep the same resolution.
    for (i, fd) in defs.iter().enumerate() {
        cx.fn_chunk.insert(fd.sig.name.clone(), i as u32);
    }
    let mut chunks: Vec<Chunk> = Vec::with_capacity(defs.len() + 1);
    for fd in &defs {
        chunks.push(compile_fn(&mut cx, fd));
    }
    let init_chunk = compile_global_init(&mut cx).map(|c| {
        chunks.push(c);
        (chunks.len() - 1) as u32
    });
    CompiledProgram {
        chunks,
        fn_chunk: cx.fn_chunk,
        init_chunk,
        consts: cx.consts,
        strs: cx.strs,
        line_tables: cx.line_tables,
    }
}

/// Program-wide compile state (pools).
struct Cx<'m> {
    m: &'m Machine,
    consts: Vec<Value>,
    strs: Vec<String>,
    str_map: HashMap<String, u32>,
    fn_chunk: HashMap<String, u32>,
    line_tables: Vec<Vec<(u32, u32)>>,
    line_map: HashMap<Vec<(u32, u32)>, u32>,
}

impl Cx<'_> {
    fn konst(&mut self, v: Value) -> u32 {
        // Bit-exact dedup (don't let -0.0/NaN fold via PartialEq).
        let key = |v: &Value| match *v {
            Value::I32(x) => (0u8, x as u32 as u64),
            Value::I64(x) => (1, x as u64),
            Value::F32(x) => (2, x.to_bits() as u64),
            Value::F64(x) => (3, x.to_bits()),
            Value::Ptr(x) => (4, x),
        };
        let k = key(&v);
        if let Some(i) = self.consts.iter().position(|c| key(c) == k) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    /// Intern a pc→line table, deduplicating bit-exactly like the
    /// constant pool (chunks with identical line shapes share one table).
    fn line_table(&mut self, t: Vec<(u32, u32)>) -> u32 {
        if let Some(&i) = self.line_map.get(&t) {
            return i;
        }
        self.line_tables.push(t.clone());
        let i = (self.line_tables.len() - 1) as u32;
        self.line_map.insert(t, i);
        i
    }

    fn string(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.str_map.get(s) {
            return i;
        }
        self.strs.push(s.to_string());
        let i = (self.strs.len() - 1) as u32;
        self.str_map.insert(s.to_string(), i);
        i
    }
}

/// Scalar type → compact kind (None for array/dim3/void/unknown).
fn tyk(ty: &Ty) -> Option<TyK> {
    Some(match ty {
        Ty::Char => TyK::Char,
        Ty::Int => TyK::Int,
        Ty::Long => TyK::Long,
        Ty::Float => TyK::Float,
        Ty::Double => TyK::Double,
        Ty::Ptr(_) => TyK::Ptr,
        _ => return None,
    })
}

/// Does the subtree contain anything that can write guest state?
/// (Used to decide when a register-resident operand must be copied to a
/// temp before evaluating the other operand.)
fn mutates(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Assign { .. }
        | ExprKind::IncDec { .. }
        | ExprKind::Call { .. }
        | ExprKind::KernelLaunch { .. } => return true,
        _ => {}
    }
    let mut found = false;
    visit_child_exprs(e, &mut |c| found |= mutates(c));
    found
}

/// Provably side-effect-free *and* non-trapping (cannot emit output,
/// trap, or write state). Fused null checks may float past these.
fn pure_nt(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(..) | ExprKind::StrLit(_) => true,
        ExprKind::Ident(_, Resolved::Local(_)) | ExprKind::Ident(_, Resolved::Global(_)) => {
            !matches!(e.ty, Ty::Dim3 | Ty::Unknown | Ty::Void)
        }
        ExprKind::Unary { op: UnOp::Neg | UnOp::Not | UnOp::BitNot, expr } => pure_nt(expr),
        ExprKind::Binary { op, lhs, rhs } => {
            !matches!(op, BinOp::Div | BinOp::Rem)
                && !lhs.ty.decayed().is_ptr()
                && !rhs.ty.decayed().is_ptr()
                && pure_nt(lhs)
                && pure_nt(rhs)
        }
        ExprKind::Cast { expr, .. } => pure_nt(expr),
        ExprKind::SizeofTy(ty) => ty.size().is_some(),
        ExprKind::SizeofExpr(inner) => inner.ty.size().is_some(),
        ExprKind::Ternary { cond, then_e, else_e } => {
            pure_nt(cond) && pure_nt(then_e) && pure_nt(else_e)
        }
        ExprKind::Comma(a, b) => pure_nt(a) && pure_nt(b),
        _ => false,
    }
}

/// Peel casts off an expression (lvalue casts are transparent).
fn peel(e: &Expr) -> &Expr {
    match &e.kind {
        ExprKind::Cast { expr, .. } => peel(expr),
        _ => e,
    }
}

/// Which slots must stay memory-resident: address taken, shared, or
/// non-scalar type.
fn residency(fd: &FuncDef) -> Vec<bool> {
    let mut reg: Vec<bool> =
        fd.frame.slots.iter().map(|s| tyk(&s.ty).is_some() && !s.shared).collect();
    fn scan_expr(e: &Expr, reg: &mut [bool]) {
        if let ExprKind::Unary { op: UnOp::Addr, expr } = &e.kind {
            if let ExprKind::Ident(_, Resolved::Local(slot)) = &peel(expr).kind {
                reg[*slot as usize] = false;
            }
        }
        visit_child_exprs(e, &mut |c| scan_expr(c, reg));
    }
    fn scan_stmt(s: &Stmt, reg: &mut [bool]) {
        visit_stmt_exprs(s, &mut |e| scan_expr(e, reg));
        visit_child_stmts(s, &mut |c| scan_stmt(c, reg));
    }
    for s in &fd.body.stmts {
        scan_stmt(s, &mut reg);
    }
    reg
}

/// A compiled lvalue: where a value lives and how to reach it.
#[derive(Clone)]
enum Place {
    /// Register-resident scalar slot.
    Reg(R, TyK),
    /// Memory-resident frame slot at a static offset.
    Slot(u32, Ty),
    /// Global at a static address (consts index of the `Ptr`).
    Abs(u32, Ty),
    /// Computed pointer + static byte offset.
    Mem(R, u32, Ty),
    /// Fused element: `base + idx * stride`.
    Idx(R, R, SizeV, Ty),
    /// The walker would have trapped constructing this lvalue; the trap
    /// op is already emitted.
    Trapped,
}

/// A compile-time-static or register-held size/stride.
#[derive(Clone, Copy)]
enum SizeV {
    St(u64),
    Dy(R),
}

struct Loop {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

/// Per-function compile state.
struct FnCx<'c, 'm> {
    cx: &'c mut Cx<'m>,
    frame: &'c crate::sema::FrameInfo,
    /// Declared return type (returns are converted to it).
    ret: Ty,
    /// Slot index → register (register-resident slots only).
    slot_reg: Vec<Option<R>>,
    /// First temp register; statement boundaries reset the watermark here.
    first_tmp: R,
    tmp: R,
    max_reg: u16,
    code: Vec<Op>,
    loops: Vec<Loop>,
    /// Source line attributed to the ops emitted next (0 = unknown).
    cur_line: u32,
    /// RLE pc→line runs, appended by [`FnCx::emit`] in lockstep with
    /// `code`. Purely additional metadata: the op stream is unchanged.
    lines: Vec<(u32, u32)>,
}

impl FnCx<'_, '_> {
    fn alloc(&mut self) -> R {
        let r = self.tmp;
        self.tmp += 1;
        self.max_reg = self.max_reg.max(self.tmp);
        r
    }

    fn alloc_n(&mut self, n: u16) -> R {
        let r = self.tmp;
        self.tmp += n;
        self.max_reg = self.max_reg.max(self.tmp);
        r
    }

    fn emit(&mut self, op: Op) -> usize {
        if self.lines.last().map(|&(_, l)| l) != Some(self.cur_line) {
            self.lines.push((self.code.len() as u32, self.cur_line));
        }
        self.code.push(op);
        self.code.len() - 1
    }

    /// Attribute subsequently emitted ops to `pos`'s line (keeps the
    /// previous attribution for synthetic positions).
    fn set_line(&mut self, pos: crate::token::Pos) {
        if pos.line != 0 {
            self.cur_line = pos.line;
        }
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Op::Jmp { to: t } | Op::Jz { to: t, .. } | Op::Jnz { to: t, .. } => *t = to,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    fn trap(&mut self, msg: String) {
        let msg = self.cx.string(&msg);
        self.emit(Op::Trap { msg });
    }

    fn const_into(&mut self, v: Value) -> R {
        let idx = self.cx.konst(v);
        let dst = self.alloc();
        self.emit(Op::Const { dst, idx });
        dst
    }

    /// Is `r` a slot-resident register (live across statements)?
    fn is_slot_reg(&self, r: R) -> bool {
        r < self.first_tmp
    }

    /// Copy `r` to a temp if the upcoming compilation of `next` could
    /// mutate a slot register out from under us.
    fn shield(&mut self, r: R, next: &Expr) -> R {
        if self.is_slot_reg(r) && mutates(next) {
            let dst = self.alloc();
            self.emit(Op::Mov { dst, src: r });
            dst
        } else {
            r
        }
    }

    // ----------------------------------------------------------- sizeof

    /// Compile `sizeof(ty)`, evaluating VLA extents exactly like the
    /// walker's `sizeof_rt` (extent first, negative check, then element).
    fn sizeof_c(&mut self, ty: &Ty) -> SizeV {
        match ty {
            Ty::Array(elem, len) => match len {
                ArrayLen::Const(n) => match self.sizeof_c(elem) {
                    SizeV::St(e) => SizeV::St(e.wrapping_mul(*n)),
                    SizeV::Dy(er) => {
                        let nr = self.const_into(Value::I64(*n as i64));
                        let dst = self.alloc();
                        self.emit(Op::Bin { op: BinOp::Mul, dst, a: nr, b: er, stride: 1 });
                        SizeV::Dy(dst)
                    }
                },
                ArrayLen::Expr(e) => {
                    let ext = self.rvalue(e);
                    match self.sizeof_c_static(elem) {
                        Some(es) if es <= u32::MAX as u64 => {
                            let dst = self.alloc();
                            self.emit(Op::Stride { dst, extent: ext, elem: es as u32 });
                            SizeV::Dy(dst)
                        }
                        _ => {
                            // Negative check on this extent before the
                            // element size is computed (walker order holds
                            // for static elements; dynamic elements are
                            // checked by their own Stride ops).
                            let chk = self.alloc();
                            self.emit(Op::Stride { dst: chk, extent: ext, elem: 1 });
                            let er = match self.sizeof_c(elem) {
                                SizeV::St(e) => self.const_into(Value::I64(e as i64)),
                                SizeV::Dy(r) => r,
                            };
                            let dst = self.alloc();
                            self.emit(Op::StrideD { dst, extent: chk, elem: er });
                            SizeV::Dy(dst)
                        }
                    }
                }
                ArrayLen::Unspec => {
                    self.trap("sizeof of unsized array".into());
                    SizeV::St(1)
                }
            },
            other => match other.size() {
                Some(s) => SizeV::St(s),
                None => {
                    self.trap(format!("sizeof of unsized type {other}"));
                    SizeV::St(1)
                }
            },
        }
    }

    fn sizeof_c_static(&self, ty: &Ty) -> Option<u64> {
        ty.size()
    }

    /// Stride for pointer arithmetic on `e` (1 for non-pointers).
    fn ptr_stride_c(&mut self, e: &Expr) -> SizeV {
        match e.ty.decayed() {
            Ty::Ptr(inner) => self.sizeof_c(&inner),
            _ => SizeV::St(1),
        }
    }

    // ----------------------------------------------------------- places

    /// Compile an lvalue. `rest_pure` promises that everything between
    /// this place's construction and its first memory access is
    /// non-observable, letting fused null checks stand in for the
    /// walker's check-at-lvalue-time.
    fn place(&mut self, e: &Expr, rest_pure: bool) -> Place {
        match &e.kind {
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    let ty = self.frame.slots[*slot as usize].ty.clone();
                    match self.slot_reg[*slot as usize] {
                        Some(r) => Place::Reg(r, tyk(&ty).expect("reg slot is scalar")),
                        None => Place::Slot(self.frame.slots[*slot as usize].offset as u32, ty),
                    }
                }
                Resolved::Global(i) => {
                    let a = self.cx.m.global_addrs[*i as usize];
                    let ty = self.cx.m.info.globals[*i as usize].ty.clone();
                    let at = self.cx.konst(Value::Ptr(a));
                    Place::Abs(at, ty)
                }
                _ => {
                    self.trap(format!("`{name}` is not an lvalue"));
                    Place::Trapped
                }
            },
            ExprKind::Unary { op: UnOp::Deref, expr } => {
                let p = self.rvalue(expr);
                // The walker null-checks at lvalue time, before anything
                // later in the statement runs.
                self.emit(Op::ChkNull { src: p });
                match expr.ty.decayed() {
                    Ty::Ptr(inner) => Place::Mem(p, 0, *inner),
                    other => {
                        self.trap(format!("deref of non-pointer {other}"));
                        Place::Trapped
                    }
                }
            }
            ExprKind::Index { base, index } => {
                let bv = self.rvalue(base);
                let elem = match base.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => {
                        self.trap(format!("index of non-pointer {other}"));
                        return Place::Trapped;
                    }
                };
                if !(rest_pure && pure_nt(index)) {
                    self.emit(Op::ChkNull { src: bv });
                }
                let bv = self.shield(bv, index);
                let stride = self.sizeof_c(&elem);
                let i = self.rvalue(index);
                Place::Idx(bv, i, stride, elem)
            }
            ExprKind::Member { base, field } => {
                let bp = self.place(base, rest_pure);
                let bty = match &bp {
                    Place::Reg(_, _) => {
                        // Register slots are scalars, never dim3.
                        self.trap(format!("member access on {}", base.ty));
                        return Place::Trapped;
                    }
                    Place::Slot(_, ty) | Place::Abs(_, ty) | Place::Mem(_, _, ty) => ty.clone(),
                    Place::Idx(_, _, _, ty) => ty.clone(),
                    Place::Trapped => return Place::Trapped,
                };
                if bty != Ty::Dim3 {
                    self.trap(format!("member access on {bty}"));
                    return Place::Trapped;
                }
                let off: u32 = match field.as_str() {
                    "x" => 0,
                    "y" => 4,
                    "z" => 8,
                    _ => {
                        self.trap(format!("dim3 has no member {field}"));
                        return Place::Trapped;
                    }
                };
                match bp {
                    Place::Slot(o, _) => Place::Slot(o + off, Ty::Int),
                    Place::Abs(at, _) => {
                        let base_addr = match self.cx.consts[at as usize] {
                            Value::Ptr(p) => p,
                            _ => unreachable!("Abs place holds a Ptr const"),
                        };
                        let at = self.cx.konst(Value::Ptr(base_addr + off as u64));
                        Place::Abs(at, Ty::Int)
                    }
                    Place::Mem(a, o, _) => Place::Mem(a, o + off, Ty::Int),
                    Place::Idx(b, i, s, _) => {
                        let a = self.addr_of_idx(b, i, s);
                        Place::Mem(a, off, Ty::Int)
                    }
                    Place::Reg(..) | Place::Trapped => unreachable!(),
                }
            }
            ExprKind::Cast { expr, .. } => self.place(expr, rest_pure),
            _ => {
                self.trap("expression is not an lvalue".into());
                Place::Trapped
            }
        }
    }

    fn addr_of_idx(&mut self, base: R, idx: R, stride: SizeV) -> R {
        let dst = self.alloc();
        match stride {
            SizeV::St(s) if s <= u32::MAX as u64 => {
                self.emit(Op::AddrIdx { dst, base, idx, stride: s as u32 });
            }
            SizeV::St(s) => {
                let sr = self.const_into(Value::I64(s as i64));
                self.emit(Op::AddrIdxD { dst, base, idx, stride: sr });
            }
            SizeV::Dy(sr) => {
                self.emit(Op::AddrIdxD { dst, base, idx, stride: sr });
            }
        }
        dst
    }

    /// Load a place as an rvalue (array-typed places decay to their
    /// address, dim3 loads trap — both as in the walker).
    fn load_place(&mut self, p: Place) -> R {
        match p {
            Place::Reg(r, _) => r,
            Place::Slot(off, ty) => {
                if ty.is_array() {
                    let dst = self.alloc();
                    self.emit(Op::FrameAddr { dst, off });
                    return dst;
                }
                match tyk(&ty) {
                    Some(t) => {
                        let dst = self.alloc();
                        self.emit(Op::LoadSlot { dst, off, ty: t });
                        dst
                    }
                    None => {
                        self.trap(format!("cannot load value of type {ty}"));
                        self.alloc()
                    }
                }
            }
            Place::Abs(at, ty) => {
                if ty.is_array() {
                    let addr = match self.cx.consts[at as usize] {
                        Value::Ptr(p) => p,
                        _ => unreachable!(),
                    };
                    return self.const_into(Value::Ptr(addr));
                }
                match tyk(&ty) {
                    Some(t) => {
                        let dst = self.alloc();
                        self.emit(Op::LoadAbs { dst, at, ty: t });
                        dst
                    }
                    None => {
                        self.trap(format!("cannot load value of type {ty}"));
                        self.alloc()
                    }
                }
            }
            Place::Mem(addr, off, ty) => {
                if ty.is_array() {
                    if off == 0 {
                        return addr;
                    }
                    let offr = self.const_into(Value::I64(off as i64));
                    let dst = self.alloc();
                    self.emit(Op::Bin { op: BinOp::Add, dst, a: addr, b: offr, stride: 1 });
                    return dst;
                }
                match tyk(&ty) {
                    Some(t) => {
                        let dst = self.alloc();
                        self.emit(Op::Load { dst, addr, off, ty: t });
                        dst
                    }
                    None => {
                        self.trap(format!("cannot load value of type {ty}"));
                        self.alloc()
                    }
                }
            }
            Place::Idx(base, idx, stride, ty) => {
                if ty.is_array() {
                    return self.addr_of_idx(base, idx, stride);
                }
                match tyk(&ty) {
                    Some(t) => {
                        let dst = self.alloc();
                        match stride {
                            SizeV::St(s) if s <= u32::MAX as u64 => {
                                self.emit(Op::LoadIdx { dst, base, idx, stride: s as u32, ty: t });
                            }
                            SizeV::St(s) => {
                                let sr = self.const_into(Value::I64(s as i64));
                                self.emit(Op::LoadIdxD { dst, base, idx, stride: sr, ty: t });
                            }
                            SizeV::Dy(sr) => {
                                self.emit(Op::LoadIdxD { dst, base, idx, stride: sr, ty: t });
                            }
                        }
                        dst
                    }
                    None => {
                        self.trap(format!("cannot load value of type {ty}"));
                        self.alloc()
                    }
                }
            }
            Place::Trapped => self.alloc(),
        }
    }

    /// Store `src` to a place with `store_typed` semantics (the value is
    /// type-coerced by the store itself). For register places, the
    /// equivalent coercion is an explicit [`Op::Conv`].
    fn store_place(&mut self, p: &Place, src: R) {
        match p {
            Place::Reg(r, t) => {
                self.emit(Op::Conv { dst: *r, src, ty: *t });
            }
            Place::Slot(off, ty) => match store_kind(ty) {
                Some(t) => {
                    self.emit(Op::StoreSlot { off: *off, src, ty: t });
                }
                None => self.trap(format!("cannot store value of type {ty}")),
            },
            Place::Abs(at, ty) => match store_kind(ty) {
                Some(t) => {
                    self.emit(Op::StoreAbs { at: *at, src, ty: t });
                }
                None => self.trap(format!("cannot store value of type {ty}")),
            },
            Place::Mem(addr, off, ty) => match store_kind(ty) {
                Some(t) => {
                    self.emit(Op::Store { addr: *addr, off: *off, src, ty: t });
                }
                None => self.trap(format!("cannot store value of type {ty}")),
            },
            Place::Idx(base, idx, stride, ty) => match store_kind(ty) {
                Some(t) => match stride {
                    SizeV::St(s) if *s <= u32::MAX as u64 => {
                        self.emit(Op::StoreIdx {
                            base: *base,
                            idx: *idx,
                            stride: *s as u32,
                            src,
                            ty: t,
                        });
                    }
                    SizeV::St(s) => {
                        let sr = self.const_into(Value::I64(*s as i64));
                        self.emit(Op::StoreIdxD { base: *base, idx: *idx, stride: sr, src, ty: t });
                    }
                    SizeV::Dy(sr) => {
                        self.emit(Op::StoreIdxD {
                            base: *base,
                            idx: *idx,
                            stride: *sr,
                            src,
                            ty: t,
                        });
                    }
                },
                None => self.trap(format!("cannot store value of type {ty}")),
            },
            Place::Trapped => {}
        }
    }
}

/// Store kind for a place type (`Dim3` stores its x component, like the
/// walker's `store_typed`).
fn store_kind(ty: &Ty) -> Option<TyK> {
    match ty {
        Ty::Dim3 => Some(TyK::Dim3X),
        other => tyk(other),
    }
}

mod expr;

use expr::{compile_fn, compile_global_init};
