//! Thin synchronization wrappers over `std::sync` with a guard-based API
//! that never surfaces lock poisoning: a panicked guest thread must not
//! poison runtime state for the whole simulation, so a poisoned lock is
//! recovered into its inner guard (the runtime's invariants are protected
//! by its own error propagation, not by poisoning).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. Holds the underlying guard in an `Option` so a
/// [`Condvar`] can take and re-install it across a wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable whose wait methods take the guard by `&mut`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard taken during condvar wait");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard taken during condvar wait");
        let (g, res) = self.0.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
