//! Scalar values flowing through the interpreters.

/// A dynamically-typed guest scalar. Pointers are tagged guest addresses
/// (see [`crate::addr`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    Ptr(u64),
}

impl Value {
    /// Integer view with C conversion semantics (floats truncate).
    pub fn as_i64(&self) -> i64 {
        match *self {
            Value::I32(v) => v as i64,
            Value::I64(v) => v,
            Value::F32(v) => v as i64,
            Value::F64(v) => v as i64,
            Value::Ptr(v) => v as i64,
        }
    }

    /// `f64` view with C conversion semantics.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Value::I32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
            Value::Ptr(v) => v as f64,
        }
    }

    /// `i32` view (truncating).
    pub fn as_i32(&self) -> i32 {
        self.as_i64() as i32
    }

    /// `f32` view.
    pub fn as_f32(&self) -> f32 {
        self.as_f64() as f32
    }

    /// Pointer view; integers reinterpret (guest casts ints to pointers).
    pub fn as_ptr(&self) -> u64 {
        match *self {
            Value::Ptr(v) => v,
            Value::I32(v) => v as u32 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => v as u64,
            Value::F64(v) => v as u64,
        }
    }

    /// C truthiness.
    pub fn is_truthy(&self) -> bool {
        match *self {
            Value::I32(v) => v != 0,
            Value::I64(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
            Value::Ptr(v) => v != 0,
        }
    }

    /// Raw 64-bit bit pattern (used by the register files).
    pub fn to_bits(&self) -> u64 {
        match *self {
            Value::I32(v) => v as u32 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
            Value::Ptr(v) => v,
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::I32(v as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_follow_c() {
        assert_eq!(Value::F64(3.9).as_i64(), 3);
        assert_eq!(Value::F32(-2.5).as_i32(), -2);
        assert_eq!(Value::I32(-1).as_f64(), -1.0);
        assert!(Value::Ptr(1).is_truthy());
        assert!(!Value::F64(0.0).is_truthy());
    }

    #[test]
    fn bits_roundtrip_f32() {
        let v = Value::F32(1.25);
        assert_eq!(f32::from_bits(v.to_bits() as u32), 1.25);
    }
}
