//! Region analysis for outlining: free variables of a target/parallel
//! region, canonical loop nests, and the call-graph closure of a kernel
//! (§3: "the compiler then derives the call graph of the subtree, by
//! discovering all called functions inside the kernel").

use std::collections::{BTreeMap, BTreeSet};

use minic::ast::*;
use minic::interp::{visit_child_exprs, visit_child_stmts, visit_stmt_exprs};
use minic::omp::DirKind;
use minic::token::Pos;
use minic::types::Ty;

/// Translation error.
#[derive(Clone, Debug)]
pub struct TransError {
    pub pos: Pos,
    pub msg: String,
}

impl std::fmt::Display for TransError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for TransError {}

pub type TResult<T> = Result<T, TransError>;

/// A free variable of a region, with its declared type.
#[derive(Clone, Debug)]
pub struct FreeVar {
    pub name: String,
    pub ty: Ty,
    pub slot: u32,
}

/// Collect the free variables of `body`: locals of the *enclosing* function
/// that are referenced inside but declared outside the region. Returned in
/// slot order (deterministic).
pub fn free_vars(body: &Stmt, frame: &minic::sema::FrameInfo) -> Vec<FreeVar> {
    let mut used: BTreeSet<u32> = BTreeSet::new();
    let mut declared: BTreeSet<u32> = BTreeSet::new();

    fn scan_expr(e: &Expr, used: &mut BTreeSet<u32>) {
        if let ExprKind::Ident(_, Resolved::Local(slot)) = &e.kind {
            used.insert(*slot);
        }
        visit_child_exprs(e, &mut |c| scan_expr(c, used));
    }
    fn scan_stmt(s: &Stmt, used: &mut BTreeSet<u32>, declared: &mut BTreeSet<u32>) {
        if let Stmt::Decl(d) = s {
            declared.insert(d.slot);
        }
        visit_stmt_exprs(s, &mut |e| scan_expr(e, used));
        // Clause expressions of nested directives also count as uses.
        if let Stmt::Omp(o) = s {
            for_each_clause_expr(&o.dir, &mut |e| scan_expr(e, used));
        }
        visit_child_stmts(s, &mut |c| scan_stmt(c, used, declared));
    }
    scan_stmt(body, &mut used, &mut declared);

    used.difference(&declared)
        .map(|&slot| {
            let info = &frame.slots[slot as usize];
            FreeVar { name: info.name.clone(), ty: info.ty.clone(), slot }
        })
        .collect()
}

/// Visit every expression in a directive's clauses.
pub fn for_each_clause_expr(dir: &minic::omp::Directive, f: &mut dyn FnMut(&Expr)) {
    use minic::omp::Clause;
    for c in &dir.clauses {
        match c {
            Clause::NumTeams(e)
            | Clause::NumThreads(e)
            | Clause::ThreadLimit(e)
            | Clause::If(e)
            | Clause::Device(e) => f(e),
            Clause::Schedule { chunk: Some(e), .. } => f(e),
            Clause::Map { items, .. } | Clause::UpdateTo(items) | Clause::UpdateFrom(items) => {
                for it in items {
                    for s in &it.sections {
                        if let Some(l) = &s.lower {
                            f(l);
                        }
                        if let Some(l) = &s.length {
                            f(l);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// One canonical loop of an associated nest.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Loop variable name.
    pub var: String,
    /// Loop variable type (int or long).
    pub var_ty: Ty,
    /// Whether the variable was declared in the for-init.
    pub var_declared: bool,
    pub lb: Expr,
    pub ub: Expr,
    /// `true` for `<=` / `>=`.
    pub inclusive: bool,
    /// Literal step (positive for `<`/`<=` loops, negative for `>`/`>=`).
    pub step: i64,
    pub pos: Pos,
}

/// Extract `depth` perfectly-nested canonical loops from a statement.
/// Returns the loops (outermost first) and the innermost body.
pub fn canonical_nest(s: &Stmt, depth: u32) -> TResult<(Vec<LoopInfo>, Stmt)> {
    let mut loops = Vec::new();
    let mut cur = s.clone();
    for level in 0..depth {
        let (info, body) = canonical_loop(&cur)?;
        loops.push(info);
        if level + 1 < depth {
            // The body must be exactly one nested for (possibly in a block).
            cur = unwrap_single(body).ok_or_else(|| TransError {
                pos: loops.last().unwrap().pos,
                msg: format!("collapse({depth}) requires perfectly nested loops"),
            })?;
        } else {
            return Ok((loops, body));
        }
    }
    unreachable!("depth >= 1")
}

fn unwrap_single(s: Stmt) -> Option<Stmt> {
    match s {
        Stmt::For { .. } => Some(s),
        Stmt::Block(b) => {
            let mut inner: Vec<Stmt> =
                b.stmts.into_iter().filter(|s| !matches!(s, Stmt::Empty)).collect();
            if inner.len() == 1 {
                unwrap_single(inner.remove(0))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Parse one canonical `for` loop.
pub fn canonical_loop(s: &Stmt) -> TResult<(LoopInfo, Stmt)> {
    let (init, cond, step, body) = match s {
        Stmt::For { init, cond, step, body } => (init, cond, step, body),
        other => {
            return Err(TransError {
                pos: Pos::default(),
                msg: format!("expected a for loop, found {other:?}"),
            })
        }
    };
    // Init: `int i = lb` or `i = lb`.
    let (var, var_ty, var_declared, lb, pos) = match init.as_deref() {
        Some(Stmt::Decl(d)) => {
            let lb = match &d.init {
                Some(Init::Expr(e)) => e.clone(),
                _ => {
                    return Err(TransError {
                        pos: d.pos,
                        msg: "canonical loop needs an initializer".into(),
                    })
                }
            };
            (d.name.clone(), d.ty.clone(), true, lb, d.pos)
        }
        Some(Stmt::Expr(e)) => match &e.kind {
            ExprKind::Assign { op: None, lhs, rhs } => match &lhs.kind {
                ExprKind::Ident(name, _) => {
                    (name.clone(), lhs.ty.clone(), false, (**rhs).clone(), e.pos)
                }
                _ => {
                    return Err(TransError {
                        pos: e.pos,
                        msg: "canonical loop must initialize a simple variable".into(),
                    })
                }
            },
            _ => {
                return Err(TransError {
                    pos: e.pos,
                    msg: "canonical loop needs `var = lb` initialization".into(),
                })
            }
        },
        _ => {
            return Err(TransError {
                pos: Pos::default(),
                msg: "canonical loop needs an init expression".into(),
            })
        }
    };
    // Condition: `i < ub`, `i <= ub`, `i > ub`, `i >= ub`.
    let (ub, inclusive, downward) = match cond {
        Some(c) => match &c.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs_is_var = matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var);
                if !lhs_is_var {
                    return Err(TransError {
                        pos: c.pos,
                        msg: "canonical loop condition must compare the loop variable".into(),
                    });
                }
                match op {
                    BinOp::Lt => ((**rhs).clone(), false, false),
                    BinOp::Le => ((**rhs).clone(), true, false),
                    BinOp::Gt => ((**rhs).clone(), false, true),
                    BinOp::Ge => ((**rhs).clone(), true, true),
                    other => {
                        return Err(TransError {
                            pos: c.pos,
                            msg: format!("unsupported loop comparison {other:?}"),
                        })
                    }
                }
            }
            _ => {
                return Err(TransError {
                    pos: c.pos,
                    msg: "canonical loop needs a comparison condition".into(),
                })
            }
        },
        None => return Err(TransError { pos, msg: "canonical loop needs a condition".into() }),
    };
    // Step: i++, ++i, i--, --i, i += c, i -= c, i = i + c, i = i - c.
    let step_val: i64 = match step {
        Some(e) => match &e.kind {
            ExprKind::IncDec { inc, expr, .. } if matches!(&expr.kind, ExprKind::Ident(n, _) if *n == var) => {
                if *inc {
                    1
                } else {
                    -1
                }
            }
            ExprKind::Assign { op: Some(BinOp::Add), lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var) => {
                rhs.const_int().ok_or_else(|| TransError {
                    pos: e.pos,
                    msg: "loop step must be a constant".into(),
                })?
            }
            ExprKind::Assign { op: Some(BinOp::Sub), lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var) => {
                -rhs.const_int().ok_or_else(|| TransError {
                    pos: e.pos,
                    msg: "loop step must be a constant".into(),
                })?
            }
            ExprKind::Assign { op: None, lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var) => {
                match &rhs.kind {
                    ExprKind::Binary { op: BinOp::Add, lhs: a, rhs: b } if matches!(&a.kind, ExprKind::Ident(n, _) if *n == var) => {
                        b.const_int().ok_or_else(|| TransError {
                            pos: e.pos,
                            msg: "loop step must be a constant".into(),
                        })?
                    }
                    ExprKind::Binary { op: BinOp::Sub, lhs: a, rhs: b } if matches!(&a.kind, ExprKind::Ident(n, _) if *n == var) => {
                        -b.const_int().ok_or_else(|| TransError {
                            pos: e.pos,
                            msg: "loop step must be a constant".into(),
                        })?
                    }
                    _ => {
                        return Err(TransError {
                            pos: e.pos,
                            msg: "unsupported loop step form".into(),
                        })
                    }
                }
            }
            _ => return Err(TransError { pos: e.pos, msg: "unsupported loop step form".into() }),
        },
        None => return Err(TransError { pos, msg: "canonical loop needs a step".into() }),
    };
    if step_val == 0 || (step_val > 0) == downward {
        return Err(TransError {
            pos,
            msg: "loop step direction contradicts the condition".into(),
        });
    }
    Ok((
        LoopInfo { var, var_ty, var_declared, lb, ub, inclusive, step: step_val, pos },
        (**body).clone(),
    ))
}

/// Collect the names of program-defined functions called (transitively)
/// inside a statement — the kernel call-graph closure.
pub fn call_closure(body: &Stmt, prog: &Program) -> Vec<String> {
    let defs: BTreeMap<&str, &FuncDef> = prog
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Func(f) => Some((f.sig.name.as_str(), f)),
            _ => None,
        })
        .collect();

    fn scan_expr(e: &Expr, out: &mut BTreeSet<String>) {
        if let ExprKind::Call { callee, .. } = &e.kind {
            out.insert(callee.clone());
        }
        if let ExprKind::Ident(name, Resolved::Func) = &e.kind {
            out.insert(name.clone());
        }
        visit_child_exprs(e, &mut |c| scan_expr(c, out));
    }
    fn scan_stmt(s: &Stmt, out: &mut BTreeSet<String>) {
        visit_stmt_exprs(s, &mut |e| scan_expr(e, out));
        visit_child_stmts(s, &mut |c| scan_stmt(c, out));
    }

    let mut result: Vec<String> = Vec::new();
    let mut pending: Vec<String> = {
        let mut s = BTreeSet::new();
        scan_stmt(body, &mut s);
        s.into_iter().collect()
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    while let Some(name) = pending.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(f) = defs.get(name.as_str()) {
            result.push(name.clone());
            let mut inner = BTreeSet::new();
            for s in &f.body.stmts {
                scan_stmt(s, &mut inner);
            }
            pending.extend(inner);
        }
    }
    result.sort();
    result
}

/// Does this statement (without descending into nested `target` regions)
/// contain a stand-alone parallel-family directive? Decides combined-vs-
/// master/worker lowering.
pub fn contains_standalone_parallel(s: &Stmt) -> bool {
    let mut found = false;
    fn walk(s: &Stmt, found: &mut bool) {
        if let Stmt::Omp(o) = s {
            if matches!(
                o.dir.kind,
                DirKind::Parallel
                    | DirKind::ParallelFor
                    | DirKind::For
                    | DirKind::Sections
                    | DirKind::Single
                    | DirKind::Master
                    | DirKind::Critical
                    | DirKind::Barrier
            ) {
                *found = true;
            }
            if o.dir.kind.is_target() {
                return; // nested target: its own lowering
            }
        }
        visit_child_stmts(s, &mut |c| walk(c, found));
    }
    walk(s, &mut found);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parser::parse;
    use minic::sema::analyze;

    fn func(src: &str) -> (Program, usize) {
        let mut p = parse(src).unwrap();
        analyze(&mut p).unwrap();
        let idx =
            p.items.iter().position(|i| matches!(i, Item::Func(f) if f.sig.name == "f")).unwrap();
        (p, idx)
    }

    #[test]
    fn free_vars_excludes_region_locals() {
        let (p, i) = func(
            "void f(float *x, int n) { int outer = 1; { int inner = 2; x[outer] = inner + n; } }",
        );
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        // The inner block: x, outer, n free; inner declared.
        let body = f.body.stmts[1].clone();
        let fv = free_vars(&body, &f.frame);
        let names: Vec<_> = fv.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["x", "n", "outer"]);
    }

    #[test]
    fn canonical_loop_forms() {
        let (p, i) = func("void f(int n) { for (int i = 0; i < n; i++) ; }");
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let (info, _) = canonical_loop(&f.body.stmts[0]).unwrap();
        assert_eq!(info.var, "i");
        assert!(info.var_declared);
        assert_eq!(info.step, 1);
        assert!(!info.inclusive);
    }

    #[test]
    fn canonical_loop_downward_and_compound() {
        let (p, i) = func("void f(int n) { for (int i = n - 1; i >= 0; i -= 2) ; }");
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let (info, _) = canonical_loop(&f.body.stmts[0]).unwrap();
        assert_eq!(info.step, -2);
        assert!(info.inclusive);
    }

    #[test]
    fn collapse_nest_extraction() {
        let (p, i) =
            func("void f(int n, float *a) { for (int i = 0; i < n; i++) for (int j = 0; j < n; j++) a[i*n+j] = 0; }");
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let (loops, body) = canonical_nest(&f.body.stmts[0], 2).unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].var, "i");
        assert_eq!(loops[1].var, "j");
        assert!(matches!(body, Stmt::Expr(_)));
    }

    #[test]
    fn imperfect_nest_rejected() {
        let (p, i) = func(
            "void f(int n, float *a) { for (int i = 0; i < n; i++) { a[i] = 0; for (int j = 0; j < n; j++) a[j] = 1; } }",
        );
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        assert!(canonical_nest(&f.body.stmts[0], 2).is_err());
    }

    #[test]
    fn call_closure_transitive() {
        let src = r#"
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int unused(int x) { return x; }
void f(int *out) { out[0] = mid(3); }
"#;
        let (p, i) = func(src);
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let body = Stmt::Block(f.body.clone());
        let names = call_closure(&body, &p);
        assert_eq!(names, ["leaf", "mid"]);
    }

    #[test]
    fn standalone_parallel_detection() {
        let (p, i) = func(
            "void f(int n, float *y) {\n#pragma omp target\n{\nint i;\n#pragma omp parallel for\nfor (i=0;i<n;i++) y[i]=0;\n}\n}",
        );
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        if let Stmt::Omp(o) = &f.body.stmts[0] {
            assert!(contains_standalone_parallel(o.body.as_ref().unwrap()));
        } else {
            panic!();
        }
    }
}
