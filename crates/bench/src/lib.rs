//! `ompi-bench` — the evaluation harness: regenerates every figure of the
//! paper (Fig. 4a–f) and hosts the Criterion component/ablation benches.
//!
//! * `cargo run -p ompi-bench --release --bin fig4` prints the Fig. 4
//!   series (per app: problem size vs simulated execution time for the
//!   pure-CUDA and the OMPi-cudadev versions).
//! * `cargo bench -p ompi-bench` runs the Criterion benches: one bench per
//!   Fig. 4 subplot (small/medium sizes) plus component microbenches and
//!   the ablations called out in DESIGN.md (master/worker overhead,
//!   PTX-JIT vs cubin loading).

pub use unibench;
