//! The device registry: an indexed set of [`DeviceModule`]s plus the
//! `default-device-var` ICV.
//!
//! Device numbering follows the OpenMP device API: offload-capable devices
//! are `0 .. num_devices()`, and the *initial device* (the host shim) is
//! number `num_devices()`. `device(n)` clause values and `omp_set_default_device`
//! arguments route through [`DeviceRegistry::resolve`]: negative ids mean
//! "the default device", and any id past the last offload device selects
//! the host — offload requests there run the region's fallback body.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use cudadev::DevClock;

use crate::{DeviceModule, HostDevice};

pub struct DeviceRegistry {
    devices: Vec<Arc<dyn DeviceModule>>,
    host: Arc<HostDevice>,
    /// The `default-device-var` ICV (`omp_get/set_default_device`).
    default_dev: AtomicI64,
    /// Trace/metrics pid for the host shim. Defaults to `num_devices()`
    /// (the initial-device number); a scheduler placing jobs on registries
    /// that view a slice of a larger fleet overrides it so host-shim
    /// metrics do not collide with another fleet device's pid.
    host_pid: u64,
}

impl DeviceRegistry {
    /// A registry over `devices` with a fresh host shim as the initial
    /// device; the default device starts at 0 (or the host if there are no
    /// offload devices).
    pub fn new(devices: Vec<Arc<dyn DeviceModule>>) -> DeviceRegistry {
        let host_pid = devices.len() as u64;
        Self::with_host_pid(devices, host_pid)
    }

    /// A registry whose host shim records metrics under an explicit pid
    /// instead of `num_devices()`. The batch server hands each job a
    /// single-device view of the fleet; without this, every job's host
    /// shim would land on pid 1 — a real fleet device.
    pub fn with_host_pid(devices: Vec<Arc<dyn DeviceModule>>, host_pid: u64) -> DeviceRegistry {
        DeviceRegistry {
            devices,
            host: Arc::new(HostDevice::new()),
            default_dev: AtomicI64::new(0),
            host_pid,
        }
    }

    /// The pid host-shim metrics and traces are recorded under.
    pub fn host_pid(&self) -> u64 {
        self.host_pid
    }

    /// Number of offload-capable devices (the host is not counted, per
    /// `omp_get_num_devices`).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The initial device's number (`omp_get_initial_device`).
    pub fn initial_device_id(&self) -> i64 {
        self.devices.len() as i64
    }

    /// The host shim behind the initial device number.
    pub fn host(&self) -> &Arc<HostDevice> {
        &self.host
    }

    pub fn default_device(&self) -> i64 {
        self.default_dev.load(Ordering::Relaxed)
    }

    pub fn set_default_device(&self, id: i64) {
        self.default_dev.store(id, Ordering::Relaxed);
    }

    /// Normalize a `device()` clause value (or `-1` for "no clause") to a
    /// concrete device number: negatives take the default-device ICV, and
    /// anything past the last offload device lands on the initial device.
    pub fn resolve_id(&self, id: i64) -> usize {
        let id = if id < 0 { self.default_device().max(0) } else { id };
        (id as usize).min(self.devices.len())
    }

    /// The module a `device()` clause value routes to.
    pub fn resolve(&self, id: i64) -> Arc<dyn DeviceModule> {
        let idx = self.resolve_id(id);
        match self.devices.get(idx) {
            Some(d) => d.clone(),
            None => self.host.clone(),
        }
    }

    /// Offload device `idx`, if it exists (the host is not indexable here).
    pub fn device(&self, idx: usize) -> Option<&Arc<dyn DeviceModule>> {
        self.devices.get(idx)
    }

    /// Per-device clock snapshot (`idx == num_devices()` reads the host
    /// shim's clock).
    pub fn clock_of(&self, idx: usize) -> Option<DevClock> {
        if idx == self.devices.len() {
            return Some(self.host.clock());
        }
        self.devices.get(idx).map(|d| d.clock())
    }

    /// Sum of all offload devices' clocks — equals device 0's clock in
    /// single-device runs, so existing single-device reports are unchanged.
    pub fn aggregate_clock(&self) -> DevClock {
        let mut total = DevClock::default();
        for d in &self.devices {
            d.stream_sync();
            total.merge(&d.clock());
        }
        total
    }

    /// `taskwait`: drain every device's queued async command-stream work.
    pub fn sync_streams(&self) {
        for d in &self.devices {
            d.stream_sync();
        }
        self.host.stream_sync();
    }

    pub fn reset_clocks(&self) {
        for d in &self.devices {
            d.reset_clock();
        }
        self.host.reset_clock();
    }

    /// One profile row per offload device (`dev0`..) plus the host shim,
    /// in device-number order — the rows of `obs::render_profile`.
    pub fn profile_rows(&self) -> Vec<obs::ProfileRow> {
        let mut rows: Vec<obs::ProfileRow> = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                d.stream_sync();
                d.clock().profile_row(&format!("dev{i}"))
            })
            .collect();
        rows.push(self.host.clock().profile_row("host"));
        rows
    }

    /// Concatenated captured printf output across all offload devices.
    pub fn take_printf_output(&self) -> String {
        let mut out = String::new();
        for d in &self.devices {
            out.push_str(&d.take_printf_output());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;
    use cudadev::{CudadevError, MapKind};
    use gpusim::LaunchStats;
    use std::sync::atomic::AtomicBool;
    use vmcommon::MemArena;

    /// A registry test double: available unless broken, resettable clock.
    struct FakeDev {
        broken: AtomicBool,
        clock: vmcommon::sync::Mutex<DevClock>,
    }

    impl FakeDev {
        fn new(kernel_s: f64) -> Arc<FakeDev> {
            FakeDev::seeded(DevClock { kernel_s, launches: 1, ..DevClock::default() })
        }

        fn seeded(clock: DevClock) -> Arc<FakeDev> {
            Arc::new(FakeDev {
                broken: AtomicBool::new(false),
                clock: vmcommon::sync::Mutex::new(clock),
            })
        }
    }

    impl DeviceModule for FakeDev {
        fn kind(&self) -> DeviceKind {
            DeviceKind::CudaGpu
        }
        fn is_available(&self) -> bool {
            !self.is_broken()
        }
        fn is_broken(&self) -> bool {
            self.broken.load(Ordering::Relaxed)
        }
        fn mark_broken(&self) {
            self.broken.store(true, Ordering::Relaxed);
        }
        fn map(&self, _m: &MemArena, a: u64, _l: u64, _k: MapKind) -> Result<u64, CudadevError> {
            Ok(a)
        }
        fn unmap(&self, _m: &MemArena, _a: u64, _k: MapKind) -> Result<(), CudadevError> {
            Ok(())
        }
        fn update(&self, _m: &MemArena, _a: u64, _l: u64, _to: bool) -> Result<(), CudadevError> {
            Ok(())
        }
        fn dev_addr(&self, a: u64) -> Option<u64> {
            Some(a)
        }
        fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, CudadevError> {
            Err(CudadevError::ModuleLoad { module: name.into(), reason: "fake".into() })
        }
        fn launch(
            &self,
            _mem: &MemArena,
            _m: &str,
            k: &str,
            _g: [u32; 3],
            _b: [u32; 3],
            _p: Vec<u64>,
        ) -> Result<LaunchStats, CudadevError> {
            Err(CudadevError::Launch {
                kernel: k.into(),
                error: gpusim::ExecError::Trap("fake".into()),
            })
        }
        fn clock(&self) -> DevClock {
            *self.clock.lock()
        }
        fn reset_clock(&self) {
            self.clock.lock().reset();
        }
        fn record_memcpy(&self, _s: f64, _h: u64, _d: u64) {}
        fn raw_device(&self) -> Option<Arc<gpusim::Device>> {
            None
        }
        fn take_printf_output(&self) -> String {
            String::new()
        }
    }

    fn two_dev_registry() -> DeviceRegistry {
        DeviceRegistry::new(vec![FakeDev::new(1.0), FakeDev::new(2.0)])
    }

    #[test]
    fn negative_id_routes_to_default_device() {
        let reg = two_dev_registry();
        assert_eq!(reg.resolve_id(-1), 0);
        reg.set_default_device(1);
        assert_eq!(reg.resolve_id(-1), 1);
        assert_eq!(reg.default_device(), 1);
    }

    #[test]
    fn out_of_range_ids_land_on_the_initial_device() {
        let reg = two_dev_registry();
        assert_eq!(reg.initial_device_id(), 2);
        assert_eq!(reg.resolve_id(2), 2);
        assert_eq!(reg.resolve_id(99), 2);
        assert_eq!(reg.resolve(99).kind(), DeviceKind::Host);
        assert!(!reg.resolve(99).is_available());
        // Default device redirected past the end also lands on the host.
        reg.set_default_device(7);
        assert_eq!(reg.resolve_id(-1), 2);
    }

    #[test]
    fn host_pid_defaults_to_num_devices_and_can_be_overridden() {
        let reg = two_dev_registry();
        assert_eq!(reg.host_pid(), 2);
        // A single-device view of a larger fleet: device numbering is
        // still 0-based locally, but the host shim's pid is pinned.
        let reg = DeviceRegistry::with_host_pid(vec![FakeDev::new(1.0)], 8);
        assert_eq!(reg.host_pid(), 8);
        assert_eq!(reg.initial_device_id(), 1);
    }

    #[test]
    fn breaking_one_device_leaves_the_other_available() {
        let reg = two_dev_registry();
        reg.resolve(0).mark_broken();
        assert!(!reg.resolve(0).is_available());
        assert!(reg.resolve(1).is_available());
    }

    #[test]
    fn aggregate_clock_sums_offload_devices() {
        let reg = two_dev_registry();
        let total = reg.aggregate_clock();
        assert!((total.kernel_s - 3.0).abs() < 1e-12);
        assert_eq!(total.launches, 2);
        assert!((reg.clock_of(0).unwrap().kernel_s - 1.0).abs() < 1e-12);
        assert!((reg.clock_of(1).unwrap().kernel_s - 2.0).abs() < 1e-12);
        // The initial device's clock exists but stays empty.
        assert_eq!(reg.clock_of(2).unwrap().launches, 0);
        assert!(reg.clock_of(3).is_none());
    }

    /// Regression for the merge/reset asymmetry: `reset` must zero every
    /// field `merge` accumulates (including retry/fault counters), so the
    /// aggregate clock equals the sum of per-device clocks after a reset.
    #[test]
    fn reset_zeroes_every_merged_field() {
        let busy = DevClock {
            init_s: 0.1,
            modload_s: 0.2,
            kernel_s: 1.0,
            h2d_s: 0.3,
            d2h_s: 0.4,
            retry_backoff_s: 0.5,
            fallback_s: 0.6,
            overlap_s: 0.05,
            launches: 3,
            h2d_bytes: 100,
            d2h_bytes: 200,
            jit_compiles: 1,
            jit_cache_hits: 2,
            jit_invalidations: 1,
            retries: 4,
            fallbacks: 2,
        };
        let reg = DeviceRegistry::new(vec![FakeDev::seeded(busy), FakeDev::seeded(busy)]);

        let before = reg.aggregate_clock();
        assert_eq!(before.retries, 8);
        assert_eq!(before.fallbacks, 4);
        assert!((before.total_s() - 2.0 * busy.total_s()).abs() < 1e-12);

        reg.reset_clocks();

        let after = reg.aggregate_clock();
        assert_eq!(after.retries, 0, "reset must zero the retry counter");
        assert_eq!(after.fallbacks, 0, "reset must zero the fallback counter");
        assert_eq!(after.launches, 0);
        assert_eq!(after.jit_compiles + after.jit_cache_hits + after.jit_invalidations, 0);
        assert_eq!(after.h2d_bytes + after.d2h_bytes, 0);
        assert_eq!(after.total_s(), 0.0);

        // Aggregate == sum of per-device snapshots, before and after.
        let mut summed = DevClock::default();
        for i in 0..reg.num_devices() {
            summed.merge(&reg.clock_of(i).unwrap());
        }
        assert_eq!(summed.retries, after.retries);
        assert_eq!(summed.total_s(), after.total_s());
    }

    #[test]
    fn profile_rows_cover_devices_and_host() {
        let reg = two_dev_registry();
        let rows = reg.profile_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "dev0");
        assert_eq!(rows[1].label, "dev1");
        assert_eq!(rows[2].label, "host");
        assert!((rows[0].kernel_s - 1.0).abs() < 1e-12);
        assert!((rows[1].total_s() - 2.0).abs() < 1e-12);
        assert_eq!(rows[2].total_s(), 0.0);
    }
}
