//! Property tests for the transient-retry backoff schedule — hand-rolled
//! generation (a seeded xorshift over random policies), no external
//! property-testing dependency.
//!
//! For every policy the schedule `delay(1) .. delay(max_retries)` must be
//! (1) monotone non-decreasing, (2) capped at `max_delay_ms`, and
//! (3) bounded in total: the whole retry budget terminates within
//! `max_retries * max_delay_ms` of simulated waiting.

use std::time::Duration;

use cudadev::RetryPolicy;

struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish draw in `0..=max`.
    fn upto(&mut self, max: u64) -> u64 {
        self.next() % (max + 1)
    }
}

fn random_policy(rng: &mut XorShift64) -> RetryPolicy {
    RetryPolicy {
        max_retries: rng.upto(20) as u32,
        base_delay_ms: rng.upto(50),
        max_delay_ms: rng.upto(200),
    }
}

#[test]
fn backoff_schedule_is_monotone_capped_and_bounded() {
    let mut rng = XorShift64::new(0x5eed_0f2e_7279_a100);
    for case in 0..1000 {
        let p = random_policy(&mut rng);
        let delays: Vec<Duration> = (1..=p.max_retries).map(|k| p.delay(k)).collect();

        for (i, w) in delays.windows(2).enumerate() {
            assert!(
                w[0] <= w[1],
                "case {case} {p:?}: delay({}) = {:?} > delay({}) = {:?}",
                i + 1,
                w[0],
                i + 2,
                w[1]
            );
        }
        for (i, d) in delays.iter().enumerate() {
            assert!(
                d.as_millis() as u64 <= p.max_delay_ms,
                "case {case} {p:?}: delay({}) = {d:?} exceeds the cap",
                i + 1
            );
        }
        let total: Duration = delays.iter().sum();
        assert!(
            total <= Duration::from_millis(p.max_retries as u64 * p.max_delay_ms),
            "case {case} {p:?}: total backoff {total:?} exceeds the budget"
        );
    }
}

/// The shift that grows the delay saturates: absurdly large attempt
/// numbers neither overflow nor shrink the delay back down.
#[test]
fn backoff_saturates_for_large_attempt_numbers() {
    let mut rng = XorShift64::new(0xdead_5eed);
    for _ in 0..200 {
        let p = random_policy(&mut rng);
        let plateau = p.delay(17);
        for attempt in [18, 100, 1 << 20, u32::MAX] {
            assert_eq!(p.delay(attempt), plateau, "{p:?}: delay must plateau, not wrap");
        }
        assert!(plateau.as_millis() as u64 <= p.max_delay_ms);
    }
}

/// Degenerate corners hold exactly: a zero-retry policy has an empty
/// schedule, and a zero-cap policy never waits at all.
#[test]
fn backoff_degenerate_policies() {
    let none = RetryPolicy { max_retries: 0, base_delay_ms: 5, max_delay_ms: 50 };
    assert_eq!((1..=none.max_retries).count(), 0);

    let capped = RetryPolicy { max_retries: 8, base_delay_ms: 9, max_delay_ms: 0 };
    for k in 1..=capped.max_retries {
        assert_eq!(capped.delay(k), Duration::ZERO);
    }

    let free = RetryPolicy { max_retries: 8, base_delay_ms: 0, max_delay_ms: 100 };
    for k in 1..=free.max_retries {
        assert_eq!(free.delay(k), Duration::ZERO, "zero base never backs off");
    }
}
