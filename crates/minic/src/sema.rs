//! Semantic analysis: name resolution, type annotation and frame layout.
//!
//! Sema is re-runnable: the OMPi translator runs it once on the input
//! program (so transformations can consult types), rewrites the tree, and
//! runs it again on the resulting host program and on each generated kernel
//! file before they are executed/compiled.

use std::collections::HashMap;

use crate::ast::*;
use crate::token::Pos;
use crate::types::{ArrayLen, Ty};

/// Semantic error.
#[derive(Clone, Debug)]
pub struct SemaError {
    pub pos: Pos,
    pub msg: String,
}

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semantic error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for SemaError {}

type SResult<T> = Result<T, SemaError>;

/// Storage assigned to one local variable.
#[derive(Clone, Debug)]
pub struct SlotInfo {
    pub name: String,
    pub ty: Ty,
    pub offset: u64,
    /// CUDA `__shared__` local (kernel dialect only).
    pub shared: bool,
}

/// Frame layout of a function: all locals, params first.
#[derive(Clone, Debug, Default)]
pub struct FrameInfo {
    pub size: u64,
    pub slots: Vec<SlotInfo>,
}

/// A global variable after sema.
#[derive(Clone, Debug)]
pub struct GlobalInfo {
    pub name: String,
    pub ty: Ty,
    pub init: Option<Init>,
    pub declare_target: bool,
}

/// Program-wide sema results.
#[derive(Clone, Debug, Default)]
pub struct ProgramInfo {
    /// Global variables in declaration order; `Resolved::Global(i)` indexes
    /// this.
    pub globals: Vec<GlobalInfo>,
    /// Function name → index into `Program::items`.
    pub funcs: HashMap<String, usize>,
    /// Functions inside `declare target` regions.
    pub declare_target_fns: Vec<String>,
}

/// Signatures of well-known external functions, so calls get useful types.
fn builtin_ret_ty(name: &str) -> Option<Ty> {
    Some(match name {
        "printf" => Ty::Int,
        "malloc" => Ty::Ptr(Box::new(Ty::Void)),
        "free" => Ty::Void,
        "sqrt" | "fabs" | "pow" | "exp" | "log" | "sin" | "cos" | "floor" | "ceil" | "fmax"
        | "fmin" => Ty::Double,
        "sqrtf" | "fabsf" | "powf" | "expf" | "logf" | "sinf" | "cosf" | "floorf" | "ceilf"
        | "fmaxf" | "fminf" => Ty::Float,
        "abs" => Ty::Int,
        "omp_get_thread_num"
        | "omp_get_num_threads"
        | "omp_get_team_num"
        | "omp_get_num_teams"
        | "omp_get_num_devices"
        | "omp_get_default_device"
        | "omp_set_default_device"
        | "omp_get_initial_device"
        | "omp_is_initial_device"
        | "omp_get_max_threads"
        | "omp_get_num_procs" => Ty::Int,
        "omp_get_wtime" | "omp_get_wtick" => Ty::Double,
        "__syncthreads" => Ty::Void,
        "atomicAdd" => Ty::Float,
        "atomicCAS" | "atomicExch" => Ty::Int,
        "cudaMalloc" | "cudaMemcpy" | "cudaFree" | "cudaDeviceSynchronize" => Ty::Int,
        _ => return None,
    })
}

struct Scope {
    vars: HashMap<String, Resolved>,
}

struct Sema<'p> {
    info: ProgramInfo,
    scopes: Vec<Scope>,
    /// Current frame being laid out.
    frame: FrameInfo,
    /// Known function names (defs + protos) with return types.
    fn_rets: HashMap<String, Ty>,
    _marker: std::marker::PhantomData<&'p ()>,
}

/// Run semantic analysis over a program in place.
pub fn analyze(prog: &mut Program) -> SResult<ProgramInfo> {
    let mut s = Sema {
        info: ProgramInfo::default(),
        scopes: Vec::new(),
        frame: FrameInfo::default(),
        fn_rets: HashMap::new(),
        _marker: std::marker::PhantomData,
    };

    // Pass 1: collect globals and function names.
    let mut in_declare_target = false;
    for (idx, item) in prog.items.iter_mut().enumerate() {
        match item {
            Item::DeclareTarget(begin) => in_declare_target = *begin,
            Item::Func(f) => {
                f.declare_target = in_declare_target || f.sig.quals.device;
                if in_declare_target || f.sig.quals.device {
                    s.info.declare_target_fns.push(f.sig.name.clone());
                }
                s.info.funcs.insert(f.sig.name.clone(), idx);
                s.fn_rets.insert(f.sig.name.clone(), f.sig.ret.clone());
            }
            Item::Proto(p) => {
                s.fn_rets.insert(p.name.clone(), p.ret.clone());
            }
            Item::Global(v) => {
                v.slot = s.info.globals.len() as u32;
                s.info.globals.push(GlobalInfo {
                    name: v.name.clone(),
                    ty: v.ty.clone(),
                    init: v.init.clone(),
                    declare_target: in_declare_target,
                });
            }
        }
    }

    // Pass 2: resolve bodies.
    for item in prog.items.iter_mut() {
        if let Item::Func(f) = item {
            s.analyze_func(f)?;
        }
    }
    Ok(s.info)
}

impl<'p> Sema<'p> {
    fn err(&self, pos: Pos, msg: impl Into<String>) -> SemaError {
        SemaError { pos, msg: msg.into() }
    }

    fn push_scope(&mut self) {
        self.scopes.push(Scope { vars: HashMap::new() });
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare_local(&mut self, name: &str, ty: &Ty, shared: bool, pos: Pos) -> SResult<u32> {
        let size = ty.size().ok_or_else(|| {
            self.err(
                pos,
                format!("cannot size local `{name}` of type {ty} (VLA locals are not supported)"),
            )
        })?;
        let align = ty.align();
        let offset = self.frame.size.next_multiple_of(align);
        self.frame.size = offset + size;
        let slot = self.frame.slots.len() as u32;
        self.frame.slots.push(SlotInfo { name: name.to_string(), ty: ty.clone(), offset, shared });
        self.scopes
            .last_mut()
            .expect("scope stack")
            .vars
            .insert(name.to_string(), Resolved::Local(slot));
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<Resolved> {
        for scope in self.scopes.iter().rev() {
            if let Some(r) = scope.vars.get(name) {
                return Some(r.clone());
            }
        }
        if let Some(i) = self.info.globals.iter().position(|g| g.name == name) {
            return Some(Resolved::Global(i as u32));
        }
        if self.fn_rets.contains_key(name) {
            return Some(Resolved::Func);
        }
        CudaVar::from_name(name).map(Resolved::CudaBuiltin)
    }

    fn analyze_func(&mut self, f: &mut FuncDef) -> SResult<()> {
        self.frame = FrameInfo::default();
        self.push_scope();
        for p in &mut f.sig.params {
            // VLA extents in parameter types (e.g. `float a[n][n]`) resolve
            // against parameters declared to their left.
            self.resolve_ty(&mut p.ty)?;
            p.slot = self.declare_local(&p.name, &p.ty, false, f.sig.pos)?;
        }
        self.block(&mut f.body)?;
        self.pop_scope();
        f.frame = std::mem::take(&mut self.frame);
        Ok(())
    }

    fn block(&mut self, b: &mut Block) -> SResult<()> {
        self.push_scope();
        for s in &mut b.stmts {
            self.stmt(s)?;
        }
        self.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, s: &mut Stmt) -> SResult<()> {
        match s {
            Stmt::Block(b) => self.block(b)?,
            Stmt::Decl(d) => self.var_decl(d)?,
            Stmt::Expr(e) => {
                self.expr(e)?;
            }
            Stmt::If { cond, then_s, else_s } => {
                self.expr(cond)?;
                self.stmt(then_s)?;
                if let Some(e) = else_s {
                    self.stmt(e)?;
                }
            }
            Stmt::For { init, cond, step, body } => {
                // The init declaration scopes over cond/step/body.
                self.push_scope();
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.expr(c)?;
                }
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.stmt(body)?;
                self.pop_scope();
            }
            Stmt::While { cond, body } => {
                self.expr(cond)?;
                self.stmt(body)?;
            }
            Stmt::DoWhile { body, cond } => {
                self.stmt(body)?;
                self.expr(cond)?;
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e)?;
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::Empty => {}
            Stmt::Omp(o) => {
                self.directive_exprs(o)?;
                if let Some(b) = &mut o.body {
                    self.stmt(b)?;
                }
            }
        }
        Ok(())
    }

    /// Resolve expressions inside directive clauses (they evaluate in the
    /// scope where the directive appears).
    fn directive_exprs(&mut self, o: &mut OmpStmt) -> SResult<()> {
        use crate::omp::Clause;
        for c in &mut o.dir.clauses {
            match c {
                Clause::NumTeams(e)
                | Clause::NumThreads(e)
                | Clause::ThreadLimit(e)
                | Clause::If(e)
                | Clause::Device(e) => {
                    self.expr(e)?;
                }
                Clause::Schedule { chunk: Some(e), .. } => {
                    self.expr(e)?;
                }
                Clause::Map { items, .. } | Clause::UpdateTo(items) | Clause::UpdateFrom(items) => {
                    for it in items {
                        for sec in &mut it.sections {
                            if let Some(l) = &mut sec.lower {
                                self.expr(l)?;
                            }
                            if let Some(l) = &mut sec.length {
                                self.expr(l)?;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn var_decl(&mut self, d: &mut VarDecl) -> SResult<()> {
        // Resolve VLA extents in the current scope first.
        self.resolve_ty(&mut d.ty)?;
        d.slot = self.declare_local(&d.name, &d.ty, d.shared, d.pos)?;
        if let Some(init) = &mut d.init {
            self.init(init)?;
        }
        Ok(())
    }

    fn init(&mut self, i: &mut Init) -> SResult<()> {
        match i {
            Init::Expr(e) => {
                self.expr(e)?;
            }
            Init::List(list) => {
                for it in list {
                    self.init(it)?;
                }
            }
        }
        Ok(())
    }

    fn resolve_ty(&mut self, ty: &mut Ty) -> SResult<()> {
        match ty {
            Ty::Ptr(inner) => self.resolve_ty(inner),
            Ty::Array(inner, len) => {
                if let ArrayLen::Expr(e) = len {
                    self.expr(e)?;
                }
                self.resolve_ty(inner)
            }
            _ => Ok(()),
        }
    }

    fn expr(&mut self, e: &mut Expr) -> SResult<Ty> {
        let ty = match &mut e.kind {
            ExprKind::IntLit(_) => Ty::Int,
            ExprKind::FloatLit(_, true) => Ty::Float,
            ExprKind::FloatLit(_, false) => Ty::Double,
            ExprKind::StrLit(_) => Ty::Ptr(Box::new(Ty::Char)),
            ExprKind::Ident(name, resolved) => {
                let r = self
                    .lookup(name)
                    .ok_or_else(|| self.err(e.pos, format!("unknown identifier `{name}`")))?;
                let ty = match &r {
                    Resolved::Local(slot) => self.frame.slots[*slot as usize].ty.clone(),
                    Resolved::Global(i) => self.info.globals[*i as usize].ty.clone(),
                    Resolved::Func => Ty::Ptr(Box::new(Ty::Void)),
                    Resolved::CudaBuiltin(_) => Ty::Dim3,
                    Resolved::Unresolved => unreachable!(),
                };
                *resolved = r;
                ty
            }
            ExprKind::Call { callee, args } => {
                for a in args.iter_mut() {
                    self.expr(a)?;
                }
                if let Some(t) = self.fn_rets.get(callee) {
                    t.clone()
                } else if let Some(t) = builtin_ret_ty(callee) {
                    t
                } else {
                    // Unknown external (runtime library) call: dynamic value,
                    // default-int static type, like pre-C99 C.
                    Ty::Int
                }
            }
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                if !self.fn_rets.contains_key(callee.as_str()) {
                    return Err(self.err(e.pos, format!("unknown kernel `{callee}`")));
                }
                self.expr(grid)?;
                self.expr(block)?;
                for a in args.iter_mut() {
                    self.expr(a)?;
                }
                Ty::Void
            }
            ExprKind::Dim3 { x, y, z } => {
                self.expr(x)?;
                if let Some(y) = y {
                    self.expr(y)?;
                }
                if let Some(z) = z {
                    self.expr(z)?;
                }
                Ty::Dim3
            }
            ExprKind::Member { base, field } => {
                let bt = self.expr(base)?;
                if bt != Ty::Dim3 {
                    return Err(self.err(e.pos, format!("member access on non-dim3 type {bt}")));
                }
                if !matches!(field.as_str(), "x" | "y" | "z") {
                    return Err(self.err(e.pos, format!("dim3 has no member `{field}`")));
                }
                Ty::Int
            }
            ExprKind::Index { base, index } => {
                let bt = self.expr(base)?;
                self.expr(index)?;
                match bt.pointee() {
                    Some(t) => t.clone(),
                    None => return Err(self.err(e.pos, format!("cannot index type {bt}"))),
                }
            }
            ExprKind::Unary { op, expr } => {
                let t = self.expr(expr)?;
                match op {
                    UnOp::Neg | UnOp::BitNot => t,
                    UnOp::Not => Ty::Int,
                    UnOp::Deref => match t.decayed() {
                        Ty::Ptr(inner) => *inner,
                        other => return Err(self.err(e.pos, format!("cannot dereference {other}"))),
                    },
                    UnOp::Addr => Ty::Ptr(Box::new(t)),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr(lhs)?.decayed();
                let rt = self.expr(rhs)?.decayed();
                if op.is_comparison() || op.is_logical() {
                    Ty::Int
                } else if lt.is_ptr() && rt.is_integer() {
                    lt
                } else if rt.is_ptr() && lt.is_integer() && *op == BinOp::Add {
                    rt
                } else if lt.is_ptr() && rt.is_ptr() && *op == BinOp::Sub {
                    Ty::Long
                } else {
                    Ty::usual_arith(&lt, &rt)
                }
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                let lt = self.expr(lhs)?;
                self.expr(rhs)?;
                lt
            }
            ExprKind::IncDec { expr, .. } => self.expr(expr)?,
            ExprKind::Ternary { cond, then_e, else_e } => {
                self.expr(cond)?;
                let tt = self.expr(then_e)?.decayed();
                let et = self.expr(else_e)?.decayed();
                if tt.is_ptr() {
                    tt
                } else if et.is_ptr() {
                    et
                } else {
                    Ty::usual_arith(&tt, &et)
                }
            }
            ExprKind::Cast { ty, expr } => {
                let mut t = ty.clone();
                self.resolve_ty(&mut t)?;
                self.expr(expr)?;
                *ty = t.clone();
                t
            }
            ExprKind::SizeofTy(ty) => {
                let mut t = ty.clone();
                self.resolve_ty(&mut t)?;
                *ty = t;
                Ty::Long
            }
            ExprKind::SizeofExpr(inner) => {
                self.expr(inner)?;
                Ty::Long
            }
            ExprKind::Comma(a, b) => {
                self.expr(a)?;
                self.expr(b)?
            }
        };
        e.ty = ty.clone();
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyzed(src: &str) -> (Program, ProgramInfo) {
        let mut p = parse(src).unwrap();
        let info = analyze(&mut p).unwrap();
        (p, info)
    }

    #[test]
    fn frame_layout_params_then_locals() {
        let (p, _) = analyzed("void f(int a, float b) { long c; char d; int e; }");
        let f = match &p.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let names: Vec<_> = f.frame.slots.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "d", "e"]);
        // Offsets respect alignment.
        assert_eq!(f.frame.slots[0].offset, 0);
        assert_eq!(f.frame.slots[1].offset, 4);
        assert_eq!(f.frame.slots[2].offset, 8); // long aligned to 8
        assert_eq!(f.frame.slots[3].offset, 16);
        assert_eq!(f.frame.slots[4].offset, 20);
    }

    #[test]
    fn shadowing_inner_scope() {
        let (p, _) = analyzed("void f() { int x = 1; { float x; x = 2.0f; } x = 3; }");
        let f = match &p.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        assert_eq!(f.frame.slots.len(), 2);
        // The last statement refers to the outer int x (slot 0).
        let last = f.body.stmts.last().unwrap();
        match last {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { lhs, .. } => match &lhs.kind {
                    ExprKind::Ident(_, Resolved::Local(s)) => assert_eq!(*s, 0),
                    other => panic!("{other:?}"),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_identifier_errors() {
        let mut p = parse("void f() { x = 1; }").unwrap();
        assert!(analyze(&mut p).is_err());
    }

    #[test]
    fn globals_resolved() {
        let (p, info) = analyzed("int g; void f() { g = 5; }");
        assert_eq!(info.globals.len(), 1);
        let f = match &p.items[1] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        match &f.body.stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { lhs, .. } => {
                    assert!(matches!(lhs.kind, ExprKind::Ident(_, Resolved::Global(0))))
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn types_annotated() {
        let (p, _) = analyzed("float f(float *a, int i) { return a[i] * 2.0f; }");
        let f = match &p.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        match &f.body.stmts[0] {
            Stmt::Return(Some(e)) => assert_eq!(e.ty, Ty::Float),
            _ => panic!(),
        }
    }

    #[test]
    fn cuda_builtins_resolve() {
        let (p, _) = analyzed("__global__ void k(float *a) { a[threadIdx.x] = 0; }");
        let f = match &p.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        // threadIdx.x typed as int.
        match &f.body.stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { lhs, .. } => match &lhs.kind {
                    ExprKind::Index { index, .. } => assert_eq!(index.ty, Ty::Int),
                    _ => panic!(),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn for_init_scopes_over_body() {
        analyzed("void f() { for (int i = 0; i < 4; i++) { int j = i; } }");
    }

    #[test]
    fn declare_target_collects() {
        let (_, info) = analyzed(
            "#pragma omp declare target\nint helper(int x) { return x; }\n#pragma omp end declare target\nvoid f() { }",
        );
        assert_eq!(info.declare_target_fns, vec!["helper".to_string()]);
    }

    #[test]
    fn device_fn_is_declare_target() {
        let (_, info) = analyzed("__device__ int helper(int x) { return x; }");
        assert_eq!(info.declare_target_fns, vec!["helper".to_string()]);
    }

    #[test]
    fn pointer_arith_types() {
        let (p, _) = analyzed("void f(float *a) { float *b = a + 4; long d = b - a; }");
        let f = match &p.items[0] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        match &f.body.stmts[1] {
            Stmt::Decl(d) => match &d.init {
                Some(Init::Expr(e)) => assert_eq!(e.ty, Ty::Long),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn vla_param_indexing() {
        analyzed("void f(int n, float a[n][n]) { a[1][2] = 3.0f; }");
    }
}
