//! General-purpose transformation set: host-side lowering of non-target
//! constructs (the OMPi "general-purpose" set of §3). Parallel regions are
//! outlined into `_hostFunc*` thread functions dispatched through the
//! `ort_*` runtime; worksharing loops use the host scheduler primitives.

use std::collections::HashMap;

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{Clause, DirKind, Directive, RedOp, SchedKind};
use minic::sema::FrameInfo;
use minic::types::{ArrayLen, Ty};

use crate::analyze::*;

use super::util::{collect_sections, host_red_fold, red_identity};
use super::{err, long_cast, rename_expr, rename_idents, trip_count_expr, HostCtx, Translator};

impl<'p> Translator<'p> {
    /// Lower one non-target OpenMP construct on the host.
    pub(crate) fn lower_host_construct(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let dir = &o.dir;
        match dir.kind {
            DirKind::Parallel | DirKind::ParallelFor => self.lower_host_parallel(o, ctx),
            DirKind::For => self.lower_host_for(o, ctx),
            DirKind::Sections => self.lower_host_sections(o, ctx),
            DirKind::Single => {
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                let mut stmts = vec![Stmt::If {
                    cond: b::call("ort_single", vec![]),
                    then_s: Box::new(body),
                    else_s: None,
                }];
                if !dir.clause_nowait() {
                    stmts.push(b::expr_stmt(b::call("ort_barrier", vec![])));
                }
                Ok(b::block(stmts))
            }
            DirKind::Master => {
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                Ok(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(body),
                    else_s: None,
                })
            }
            DirKind::Critical => {
                let name = dir
                    .clauses
                    .iter()
                    .find_map(|c| match c {
                        Clause::Name(n) => Some(n.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                Ok(b::block(vec![
                    b::expr_stmt(b::call(
                        "ort_critical_enter",
                        vec![b::e(ExprKind::StrLit(name.clone()))],
                    )),
                    body,
                    b::expr_stmt(b::call("ort_critical_exit", vec![b::e(ExprKind::StrLit(name))])),
                ]))
            }
            DirKind::Barrier => Ok(b::expr_stmt(b::call("ort_barrier", vec![]))),
            // `taskwait`: in this subset, tasks-with-dependences are the
            // `nowait` target regions queued on device command streams —
            // waiting means draining every device's streams.
            DirKind::Taskwait => Ok(b::expr_stmt(b::call("__dev_taskwait", vec![b::int(-1)]))),
            DirKind::Teams
            | DirKind::TeamsDistribute
            | DirKind::TeamsDistributeParallelFor
            | DirKind::Distribute
            | DirKind::DistributeParallelFor => {
                // Host-side teams degenerate to a single team.
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                Ok(body)
            }
            DirKind::Section => {
                // Handled by lower_host_sections; a stray section runs inline.
                self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)
            }
            DirKind::DeclareTarget | DirKind::EndDeclareTarget => Ok(Stmt::Empty),
            // All target-family kinds belong to the CUDA transform set.
            _ => unreachable!("target-family directive fell through"),
        }
    }

    fn lower_host_parallel(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "parallel without a body"))?;
        let hid = self.next_hostfn;
        self.next_hostfn += 1;
        let fn_name = format!("_hostFunc{}_{}", hid, ctx.fname);

        let fvs = free_vars(body, ctx.frame);
        let privates: Vec<String> = dir.privates().into_iter().cloned().collect();
        let firstprivates: Vec<String> = dir.firstprivates().into_iter().cloned().collect();
        let reductions: Vec<(RedOp, String)> =
            dir.reductions().map(|(op, v)| (op, v.clone())).collect();

        let (loops, inner) = if dir.kind == DirKind::ParallelFor {
            let (l, bdy) = canonical_nest(body, dir.clause_collapse())?;
            (l, bdy)
        } else {
            (Vec::new(), Stmt::Empty)
        };
        let loop_vars: Vec<&str> = loops.iter().map(|l| l.var.as_str()).collect();

        #[derive(Debug)]
        enum HKind {
            Shared(Ty),
            FirstPrivate(Ty),
        }
        let mut env: Vec<(String, HKind)> = Vec::new();
        for fv in &fvs {
            if loop_vars.contains(&fv.name.as_str()) || privates.contains(&fv.name) {
                continue;
            }
            if firstprivates.contains(&fv.name) {
                env.push((fv.name.clone(), HKind::FirstPrivate(fv.ty.clone())));
            } else {
                env.push((fv.name.clone(), HKind::Shared(fv.ty.clone())));
            }
        }

        // Call site: build env array of addresses.
        let env_name = self.tmp("henv");
        let mut call_blk: Vec<Stmt> = Vec::new();
        let nslots = env.len().max(1);
        call_blk.push(b::decl(
            &env_name,
            Ty::Array(Box::new(Ty::Long), ArrayLen::Const(nslots as u64)),
            None,
        ));
        let mut fp_copies: Vec<Stmt> = Vec::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let slot = b::index(b::ident(&env_name), b::int(i as i64));
            match kind {
                HKind::Shared(ty) => {
                    // Arrays decay: store the pointer value; scalars: store
                    // the address.
                    let val = if ty.is_array() || ty.is_ptr() {
                        long_cast(b::ident(name))
                    } else {
                        long_cast(b::addr_of(b::ident(name)))
                    };
                    call_blk.push(b::expr_stmt(b::assign(slot, val)));
                }
                HKind::FirstPrivate(ty) => {
                    let cp = self.tmp("hfp");
                    fp_copies.push(b::decl(&cp, ty.clone(), Some(b::ident(name))));
                    call_blk
                        .push(b::expr_stmt(b::assign(slot, long_cast(b::addr_of(b::ident(&cp))))));
                }
            }
        }
        let mut blk = fp_copies;
        blk.extend(call_blk);
        let nthr = match dir.clause_num_threads() {
            Some(e) => e.clone(),
            None => b::int(0),
        };
        blk.push(b::expr_stmt(b::call(
            "ort_execute_parallel",
            vec![
                b::e(ExprKind::StrLit(fn_name.clone())),
                b::cast(Ty::Long, b::ident(&env_name)),
                nthr,
            ],
        )));

        // Outlined function body.
        let mut tbody: Vec<Stmt> = Vec::new();
        let mut rename: HashMap<String, Expr> = HashMap::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let load = b::deref(b::cast(
                Ty::Ptr(Box::new(Ty::Long)),
                b::bin(BinOp::Add, b::ident("__envp"), b::int(8 * i as i64)),
            ));
            match kind {
                HKind::Shared(ty) => {
                    let d = ty.decayed();
                    if d.is_ptr() {
                        tbody.push(b::decl(name, d.clone(), Some(b::cast(d.clone(), load))));
                    } else {
                        let pname = format!("__shp_{name}");
                        let pty = Ty::Ptr(Box::new(ty.clone()));
                        tbody.push(b::decl(&pname, pty.clone(), Some(b::cast(pty, load))));
                        rename.insert(name.clone(), b::deref(b::ident(&pname)));
                    }
                }
                HKind::FirstPrivate(ty) => {
                    let pty = Ty::Ptr(Box::new(ty.clone()));
                    tbody.push(b::decl(name, ty.clone(), Some(b::deref(b::cast(pty, load)))));
                }
            }
        }
        for pv in &privates {
            let ty = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == *pv)
                .map(|sl| sl.ty.clone())
                .unwrap_or(Ty::Int);
            tbody.push(b::decl(pv, ty, None));
        }
        let mut red_renames: HashMap<String, Expr> = HashMap::new();
        for (op, rname) in &reductions {
            let local = format!("__redl_{rname}");
            let ty = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == *rname)
                .map(|sl| sl.ty.clone())
                .unwrap_or(Ty::Float);
            tbody.push(b::decl(&local, ty.clone(), Some(red_identity(*op, &ty))));
            red_renames.insert(rname.clone(), b::ident(&local));
        }

        let pctx = HostCtx { fname: ctx.fname.clone(), frame: ctx.frame, in_parallel: true };
        if dir.kind == DirKind::ParallelFor {
            tbody.extend(self.host_ws_loop(&loops, &inner, dir, &red_renames, &rename, &pctx)?);
        } else {
            let mut body2 = body.clone();
            rename_idents(&mut body2, &red_renames);
            rename_idents(&mut body2, &rename);
            tbody.push(self.host_stmt(&body2, &pctx)?);
        }

        // Reductions: fold under a critical.
        if !reductions.is_empty() {
            tbody.push(b::expr_stmt(b::call(
                "ort_critical_enter",
                vec![b::e(ExprKind::StrLit("__omp_reduction".into()))],
            )));
            for (op, rname) in &reductions {
                let target = rename.get(rname).cloned().unwrap_or_else(|| b::ident(rname));
                let local = b::ident(&format!("__redl_{rname}"));
                tbody.push(host_red_fold(target, local, *op));
            }
            tbody.push(b::expr_stmt(b::call(
                "ort_critical_exit",
                vec![b::e(ExprKind::StrLit("__omp_reduction".into()))],
            )));
        }

        self.host_fns.push(FuncDef {
            sig: FuncSig {
                name: fn_name,
                ret: Ty::Void,
                params: vec![Param { name: "__envp".into(), ty: Ty::Long, slot: u32::MAX }],
                quals: FnQuals::default(),
                pos: o.pos,
            },
            body: Block { stmts: tbody },
            frame: FrameInfo::default(),
            declare_target: false,
        });
        Ok(b::block(blk))
    }

    /// Worksharing loop on the host (inside a parallel region).
    fn host_ws_loop(
        &mut self,
        loops: &[LoopInfo],
        inner: &Stmt,
        dir: &Directive,
        red_renames: &HashMap<String, Expr>,
        rename: &HashMap<String, Expr>,
        ctx: &HostCtx<'_>,
    ) -> TResult<Vec<Stmt>> {
        let mut out = Vec::new();
        let mut tc_names = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let n = format!("__htc{i}");
            let mut tc = trip_count_expr(l);
            rename_expr(&mut tc, red_renames);
            rename_expr(&mut tc, rename);
            out.push(b::decl(&n, Ty::Long, Some(long_cast(tc))));
            tc_names.push(n);
        }
        let mut total = b::ident(&tc_names[0]);
        for n in &tc_names[1..] {
            total = b::bin(BinOp::Mul, total, b::ident(n));
        }
        out.push(b::decl("__htotal", Ty::Long, Some(total)));
        out.push(b::decl("__hmylb", Ty::Long, None));
        out.push(b::decl("__hmyub", Ty::Long, None));

        let mut iter_body: Vec<Stmt> = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let mut div: Option<Expr> = None;
            for n in &tc_names[i + 1..] {
                div = Some(match div {
                    None => b::ident(n),
                    Some(d) => b::bin(BinOp::Mul, d, b::ident(n)),
                });
            }
            let mut idx = b::ident("__hit");
            if let Some(d) = div {
                idx = b::bin(BinOp::Div, idx, d);
            }
            if i > 0 {
                idx = b::bin(BinOp::Rem, idx, b::ident(&tc_names[i]));
            }
            let scaled = if l.step == 1 { idx } else { b::bin(BinOp::Mul, idx, b::int(l.step)) };
            let mut lb = l.lb.clone();
            rename_expr(&mut lb, red_renames);
            rename_expr(&mut lb, rename);
            iter_body.push(b::decl(
                &l.var,
                l.var_ty.clone(),
                Some(b::bin(BinOp::Add, lb, b::cast(l.var_ty.clone(), scaled))),
            ));
        }
        let mut inner2 = inner.clone();
        rename_idents(&mut inner2, red_renames);
        rename_idents(&mut inner2, rename);
        iter_body.push(self.host_stmt(&inner2, ctx)?);

        let make_for = |lo: Expr, hi: Expr, body: Vec<Stmt>| Stmt::For {
            init: Some(Box::new(b::decl("__hit", Ty::Long, Some(lo)))),
            cond: Some(b::bin(BinOp::Lt, b::ident("__hit"), hi)),
            step: Some(b::e(ExprKind::IncDec {
                pre: false,
                inc: true,
                expr: Box::new(b::ident("__hit")),
            })),
            body: Box::new(b::block(body)),
        };

        out.push(b::expr_stmt(b::call("ort_loop_begin", vec![b::ident("__htotal")])));
        match dir.clause_schedule() {
            Some((SchedKind::Dynamic, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::While {
                    cond: b::call(
                        "ort_dynamic_next",
                        vec![
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__hmylb")),
                            b::addr_of(b::ident("__hmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__hmylb"), b::ident("__hmyub"), iter_body)),
                });
            }
            Some((SchedKind::Guided, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::While {
                    cond: b::call(
                        "ort_guided_next",
                        vec![
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__hmylb")),
                            b::addr_of(b::ident("__hmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__hmylb"), b::ident("__hmyub"), iter_body)),
                });
            }
            sched => {
                let chunk_e = match sched {
                    Some((SchedKind::Static, Some(c))) => long_cast(c.clone()),
                    _ => b::int(0),
                };
                out.push(b::expr_stmt(b::call(
                    "ort_static_chunk",
                    vec![chunk_e, b::addr_of(b::ident("__hmylb")), b::addr_of(b::ident("__hmyub"))],
                )));
                out.push(make_for(b::ident("__hmylb"), b::ident("__hmyub"), iter_body));
            }
        }
        if !dir.clause_nowait() {
            out.push(b::expr_stmt(b::call("ort_barrier", vec![])));
        }
        Ok(out)
    }

    /// Orphaned / in-parallel `for` on the host.
    fn lower_host_for(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let (loops, inner) =
            canonical_nest(o.body.as_deref().unwrap_or(&Stmt::Empty), o.dir.clause_collapse())?;
        let ws =
            self.host_ws_loop(&loops, &inner, &o.dir, &HashMap::new(), &HashMap::new(), ctx)?;
        Ok(b::block(ws))
    }

    fn lower_host_sections(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let sections = collect_sections(o.body.as_deref().unwrap_or(&Stmt::Empty));
        let n = sections.len() as i64;
        let sname = self.tmp("hs");
        let mut dispatch: Option<Stmt> = None;
        for (i, sec) in sections.into_iter().enumerate().rev() {
            let sec = self.host_stmt(&sec, ctx)?;
            dispatch = Some(Stmt::If {
                cond: b::bin(BinOp::Eq, b::ident(&sname), b::int(i as i64)),
                then_s: Box::new(sec),
                else_s: dispatch.map(Box::new),
            });
        }
        let mut stmts = vec![
            b::expr_stmt(b::call("ort_sections_begin", vec![b::int(n)])),
            b::decl(&sname, Ty::Long, None),
            Stmt::While {
                cond: b::bin(
                    BinOp::Ge,
                    b::assign(b::ident(&sname), b::call("ort_sections_next", vec![])),
                    b::int(0),
                ),
                body: Box::new(dispatch.unwrap_or(Stmt::Empty)),
            },
        ];
        if !o.dir.clause_nowait() {
            stmts.push(b::expr_stmt(b::call("ort_barrier", vec![])));
        }
        Ok(b::block(stmts))
    }
}
