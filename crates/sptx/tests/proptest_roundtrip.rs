//! Property tests: random SPTX modules survive both artifact formats —
//! `.sptx` text (the PTX stand-in) and `.cubin` binary — bit-exactly.
//!
//! Random structures are generated with a seeded deterministic RNG
//! (`vmcommon::rng`), one independent case per seed.

use sptx::*;
use vmcommon::rng::XorShift64;

const NREGS: u32 = 16;

fn gen_scalar(r: &mut XorShift64) -> ScalarTy {
    *r.pick(&[ScalarTy::I32, ScalarTy::I64, ScalarTy::F32, ScalarTy::F64])
}

fn gen_memty(r: &mut XorShift64) -> MemTy {
    *r.pick(&[MemTy::B8, MemTy::B32, MemTy::B64, MemTy::F32, MemTy::F64])
}

fn gen_operand(r: &mut XorShift64) -> Operand {
    match r.below(7) {
        0 => Operand::Reg(Reg(r.below(NREGS as u64) as u32)),
        1 => Operand::ImmI(r.range_i64(-1_000_000, 1_000_000)),
        2 => {
            // Finite float on a decimal grid so text printing roundtrips.
            let v = r.range_i64(-1_000_000, 1_000_000) as f32 / 64.0;
            Operand::ImmF(v as f64)
        }
        3 => Operand::Special(SpecialReg::TidX),
        4 => Operand::Special(SpecialReg::CtaidY),
        5 => Operand::LocalBase,
        _ => Operand::SharedBase,
    }
}

fn gen_int_binop(r: &mut XorShift64) -> BinOp {
    *r.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::SetLt,
        BinOp::SetEq,
        BinOp::SetNe,
    ])
}

fn gen_inst(r: &mut XorShift64) -> Inst {
    match r.below(9) {
        0 => {
            // No bitwise/shift ops on float types.
            let (ty, op) = loop {
                let ty = gen_scalar(r);
                let op = gen_int_binop(r);
                if !ty.is_float()
                    || !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr)
                {
                    break (ty, op);
                }
            };
            Inst::Bin {
                ty,
                op,
                dst: Reg(r.below(NREGS as u64) as u32),
                a: gen_operand(r),
                b: gen_operand(r),
            }
        }
        1 => Inst::Mov { dst: Reg(r.below(NREGS as u64) as u32), src: gen_operand(r) },
        2 => Inst::Ld {
            ty: gen_memty(r),
            dst: Reg(r.below(NREGS as u64) as u32),
            addr: gen_operand(r),
            offset: r.range_i64(-64, 64),
        },
        3 => Inst::St {
            ty: gen_memty(r),
            src: gen_operand(r),
            addr: gen_operand(r),
            offset: r.range_i64(-64, 64),
        },
        4 => Inst::BarSync {
            id: Operand::ImmI(r.range_i64(0, 16)),
            count: if r.bool() { Some(Operand::ImmI(r.range_i64(1, 8) * 32)) } else { None },
        },
        5 => Inst::AtomCas {
            dst: Reg(r.below(NREGS as u64) as u32),
            addr: gen_operand(r),
            expected: gen_operand(r),
            new: gen_operand(r),
        },
        6 => Inst::Intrinsic {
            name: "cudadev_barrier".into(),
            dst: None,
            args: (0..r.below(4)).map(|_| gen_operand(r)).collect(),
            sargs: vec![],
        },
        7 => Inst::Intrinsic {
            name: "printf".into(),
            dst: Some(Reg(0)),
            args: (0..r.below(3)).map(|_| gen_operand(r)).collect(),
            sargs: if r.bool() { vec!["v=%d \"quoted\" \\ \n end".into()] } else { vec![] },
        },
        _ => Inst::Ret { val: None },
    }
}

fn gen_nodes(r: &mut XorShift64, depth: u32) -> Vec<Node> {
    let n = r.below(5);
    (0..n)
        .map(|_| {
            if depth == 0 {
                return Node::Inst(gen_inst(r));
            }
            match r.below(3) {
                0 => Node::Inst(gen_inst(r)),
                1 => Node::If {
                    cond: gen_operand(r),
                    then_b: gen_nodes(r, depth - 1),
                    else_b: gen_nodes(r, depth - 1),
                },
                _ => {
                    // Loops must be escapable for the verifier's sanity —
                    // give them a break.
                    let mut body = gen_nodes(r, depth - 1);
                    body.push(Node::Break);
                    Node::Loop { body }
                }
            }
        })
        .collect()
}

fn gen_function(r: &mut XorShift64) -> Function {
    let nparams = r.below(4);
    let mut body = gen_nodes(r, 2);
    body.push(Node::Inst(Inst::Ret { val: None }));
    Function {
        name: "k".into(),
        is_kernel: r.bool(),
        params: (0..nparams)
            .map(|i| ParamDecl { name: format!("p{i}"), ty: gen_scalar(r) })
            .collect(),
        num_regs: NREGS,
        local_size: 32,
        shared_size: 16,
        body,
    }
}

const CASES: u64 = 64;

#[test]
fn text_roundtrip() {
    for seed in 0..CASES {
        let m = Module {
            name: "prop".into(),
            arch: "sm_53".into(),
            functions: vec![gen_function(&mut XorShift64::new(seed))],
            device_lib_linked: true,
        };
        let text = sptx::text::print_module(&m);
        let back = sptx::text::parse_module(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
        assert_eq!(m, back, "seed {seed}: text roundtrip mismatch:\n{text}");
    }
}

#[test]
fn cubin_roundtrip() {
    for seed in 0..CASES {
        let m = Module {
            name: "prop".into(),
            arch: "sm_53".into(),
            functions: vec![gen_function(&mut XorShift64::new(1000 + seed))],
            device_lib_linked: false,
        };
        let bin = sptx::cubin::encode(&m);
        let back = sptx::cubin::decode(&bin).unwrap();
        assert_eq!(m, back, "seed {seed}");
    }
}

/// Decoding never panics on arbitrary bytes (fuzz-ish).
#[test]
fn cubin_decode_never_panics() {
    for seed in 0..256u64 {
        let mut r = XorShift64::new(seed);
        let len = r.below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.next_u64() as u8).collect();
        let _ = sptx::cubin::decode(&bytes);
    }
}

/// The assembler never panics on arbitrary printable text.
#[test]
fn asm_never_panics() {
    for seed in 0..256u64 {
        let mut r = XorShift64::new(seed);
        let len = r.below(400) as usize;
        let text: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline, matching the old "[ -~\n]"
                // character class.
                let c = r.below(96) as u8;
                if c == 95 {
                    '\n'
                } else {
                    (b' ' + c) as char
                }
            })
            .collect();
        let _ = sptx::text::parse_module(&text);
    }
}

/// Corrupting any single byte of a valid cubin either still decodes (to
/// something) or fails cleanly — never panics, never loops.
#[test]
fn cubin_bitflip_never_panics() {
    let m = Module {
        name: "flip".into(),
        arch: "sm_53".into(),
        functions: vec![gen_function(&mut XorShift64::new(9))],
        device_lib_linked: true,
    };
    let bin = sptx::cubin::encode(&m);
    let mut r = XorShift64::new(10);
    for _ in 0..256 {
        let mut bad = bin.clone();
        let i = r.below(bad.len() as u64) as usize;
        bad[i] ^= 1 << r.below(8);
        let _ = sptx::cubin::decode(&bad);
    }
}
