//! Abstract syntax tree for the mini-C dialect.
//!
//! The OMPi translator transforms these trees (mirroring how the real OMPi
//! compiler operates directly on its AST), and both the host interpreter and
//! the `nvccsim` kernel compiler consume them after semantic analysis.

use crate::omp::Directive;
use crate::token::Pos;
use crate::types::Ty;

/// A translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    Func(FuncDef),
    Proto(FuncSig),
    Global(VarDecl),
    /// `#pragma omp declare target` / `end declare target` marker.
    DeclareTarget(bool),
}

/// CUDA-style function qualifiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FnQuals {
    /// `__global__` — a kernel entry point.
    pub global: bool,
    /// `__device__` — device-callable helper.
    pub device: bool,
}

/// A function signature.
#[derive(Clone, Debug)]
pub struct FuncSig {
    pub name: String,
    pub ret: Ty,
    pub params: Vec<Param>,
    pub quals: FnQuals,
    pub pos: Pos,
}

/// A function parameter. `slot` is assigned by sema.
#[derive(Clone, Debug)]
pub struct Param {
    pub name: String,
    pub ty: Ty,
    pub slot: u32,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FuncDef {
    pub sig: FuncSig,
    pub body: Block,
    /// Filled by sema: storage for every local (params first).
    pub frame: crate::sema::FrameInfo,
    /// True if this function was listed in a `declare target` region.
    pub declare_target: bool,
}

/// `{ … }`.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    Block(Block),
    Decl(VarDecl),
    Expr(Expr),
    If {
        cond: Expr,
        then_s: Box<Stmt>,
        else_s: Option<Box<Stmt>>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Empty,
    /// An OpenMP directive, possibly with an associated statement.
    Omp(OmpStmt),
}

/// An OpenMP construct in statement position.
#[derive(Clone, Debug)]
pub struct OmpStmt {
    pub dir: Directive,
    /// `None` for stand-alone directives (barrier, target update, …).
    pub body: Option<Box<Stmt>>,
    pub pos: Pos,
}

/// A declaration of one variable (multi-declarator lines are split by the
/// parser).
#[derive(Clone, Debug)]
pub struct VarDecl {
    pub name: String,
    pub ty: Ty,
    pub init: Option<Init>,
    /// CUDA `__shared__` storage class.
    pub shared: bool,
    /// Sema: frame slot (locals) or global index.
    pub slot: u32,
    pub pos: Pos,
}

/// An initializer.
#[derive(Clone, Debug)]
pub enum Init {
    Expr(Expr),
    List(Vec<Init>),
}

/// How an identifier resolved (filled in by sema).
#[derive(Clone, Debug, PartialEq)]
pub enum Resolved {
    Unresolved,
    /// A local variable or parameter: index into the function frame.
    Local(u32),
    /// A global variable: index into the program's global table.
    Global(u32),
    /// A function name used as a value (launch targets).
    Func,
    /// CUDA builtin dim3 variables: threadIdx, blockIdx, blockDim, gridDim.
    CudaBuiltin(CudaVar),
}

/// CUDA builtin coordinate variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CudaVar {
    ThreadIdx,
    BlockIdx,
    BlockDim,
    GridDim,
}

impl CudaVar {
    pub fn from_name(name: &str) -> Option<CudaVar> {
        Some(match name {
            "threadIdx" => CudaVar::ThreadIdx,
            "blockIdx" => CudaVar::BlockIdx,
            "blockDim" => CudaVar::BlockDim,
            "gridDim" => CudaVar::GridDim,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            CudaVar::ThreadIdx => "threadIdx",
            CudaVar::BlockIdx => "blockIdx",
            CudaVar::BlockDim => "blockDim",
            CudaVar::GridDim => "gridDim",
        }
    }
}

/// An expression, annotated with its type by sema.
#[derive(Clone, Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub ty: Ty,
    pub pos: Pos,
}

impl Expr {
    pub fn new(kind: ExprKind, pos: Pos) -> Expr {
        Expr { kind, ty: Ty::Unknown, pos }
    }

    /// Constant-fold to an integer if trivially possible (literals and
    /// arithmetic on literals). Used for array extents and collapse counts.
    pub fn const_int(&self) -> Option<i64> {
        match &self.kind {
            ExprKind::IntLit(v) => Some(*v),
            ExprKind::Unary { op: UnOp::Neg, expr } => Some(-expr.const_int()?),
            ExprKind::Binary { op, lhs, rhs } => {
                let (a, b) = (lhs.const_int()?, rhs.const_int()?);
                Some(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div if b != 0 => a / b,
                    BinOp::Rem if b != 0 => a % b,
                    BinOp::Shl => a << (b & 63),
                    BinOp::Shr => a >> (b & 63),
                    _ => return None,
                })
            }
            _ => None,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
    Deref,
    Addr,
}

/// Binary operators (excluding assignment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

impl BinOp {
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

/// Expression kinds.
#[derive(Clone, Debug)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64, /*f32*/ bool),
    StrLit(String),
    Ident(String, Resolved),
    Call {
        callee: String,
        args: Vec<Expr>,
    },
    /// CUDA `kernel<<<grid, block>>>(args)`.
    KernelLaunch {
        callee: String,
        grid: Box<Expr>,
        block: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `dim3(x, y, z)` constructor (also models bare ints used as dims).
    Dim3 {
        x: Box<Expr>,
        y: Option<Box<Expr>>,
        z: Option<Box<Expr>>,
    },
    Member {
        base: Box<Expr>,
        field: String,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    IncDec {
        pre: bool,
        inc: bool,
        expr: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        then_e: Box<Expr>,
        else_e: Box<Expr>,
    },
    Cast {
        ty: Ty,
        expr: Box<Expr>,
    },
    SizeofTy(Ty),
    SizeofExpr(Box<Expr>),
    Comma(Box<Expr>, Box<Expr>),
}

/// Helpers for building synthetic AST in the translator.
pub mod build {
    use super::*;
    use crate::token::Pos;

    pub fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Pos::default())
    }

    pub fn ident(name: &str) -> Expr {
        e(ExprKind::Ident(name.to_string(), Resolved::Unresolved))
    }

    pub fn int(v: i64) -> Expr {
        e(ExprKind::IntLit(v))
    }

    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        e(ExprKind::Call { callee: name.to_string(), args })
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        e(ExprKind::Binary { op, lhs: Box::new(l), rhs: Box::new(r) })
    }

    pub fn assign(l: Expr, r: Expr) -> Expr {
        e(ExprKind::Assign { op: None, lhs: Box::new(l), rhs: Box::new(r) })
    }

    pub fn addr_of(x: Expr) -> Expr {
        e(ExprKind::Unary { op: UnOp::Addr, expr: Box::new(x) })
    }

    pub fn deref(x: Expr) -> Expr {
        e(ExprKind::Unary { op: UnOp::Deref, expr: Box::new(x) })
    }

    pub fn index(base: Expr, idx: Expr) -> Expr {
        e(ExprKind::Index { base: Box::new(base), index: Box::new(idx) })
    }

    pub fn cast(ty: Ty, x: Expr) -> Expr {
        e(ExprKind::Cast { ty, expr: Box::new(x) })
    }

    pub fn member(base: Expr, field: &str) -> Expr {
        e(ExprKind::Member { base: Box::new(base), field: field.to_string() })
    }

    pub fn expr_stmt(x: Expr) -> Stmt {
        Stmt::Expr(x)
    }

    pub fn decl(name: &str, ty: Ty, init: Option<Expr>) -> Stmt {
        Stmt::Decl(VarDecl {
            name: name.to_string(),
            ty,
            init: init.map(Init::Expr),
            shared: false,
            slot: u32::MAX,
            pos: Pos::default(),
        })
    }

    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        Stmt::Block(Block { stmts })
    }
}
