/* gemm — hand-written CUDA baseline (Polybench-ACC shape, 32x8 blocks). */
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;

__global__ void gemm_kernel(int n, float *a, float *b, float *c)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < n && j < n) {
        float acc = c[i * n + j] * 2123.0f;
        for (int k = 0; k < n; k++)
            acc += 32412.0f * a[i * n + k] * b[k * n + j];
        c[i * n + j] = acc;
    }
}

void run(int n, float *a, float *b, float *c)
{
    float *da;
    float *db;
    float *dc;
    long bytes = (long) n * n * sizeof(float);
    cudaMalloc(&da, bytes);
    cudaMalloc(&db, bytes);
    cudaMalloc(&dc, bytes);
    cudaMemcpy(da, a, bytes, cudaMemcpyHostToDevice);
    cudaMemcpy(db, b, bytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dc, c, bytes, cudaMemcpyHostToDevice);
    dim3 block(32, 8);
    dim3 grid((n + 31) / 32, (n + 7) / 8);
    gemm_kernel<<<grid, block>>>(n, da, db, dc);
    cudaMemcpy(c, dc, bytes, cudaMemcpyDeviceToHost);
    cudaFree(da);
    cudaFree(db);
    cudaFree(dc);
}
