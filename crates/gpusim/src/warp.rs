//! The SIMT warp interpreter.
//!
//! Each simulated warp runs on one OS thread and executes the structured
//! SPTX IR in lockstep across its 32 lanes, carrying an explicit *active
//! mask*. Divergence works exactly like the hardware's reconvergence
//! stack, but over the structured tree: an `if` partitions the mask, a
//! `loop` keeps iterating until every lane has left via `break`/`ret`, and
//! control merges when the node finishes.
//!
//! Warps of the same block interact only through shared/global memory,
//! atomics and the block's named barriers — which is precisely the paper's
//! master/worker machinery (§3.2): worker warps park on barrier B1 while
//! the master warp executes sequential code, so those *must* run
//! concurrently; hence the thread-per-warp design.

use std::sync::atomic::AtomicU64;

use vmcommon::addr::{self, Space};
use vmcommon::fmt::FmtArg;
use vmcommon::{MemArena, Value};

use crate::barrier::NamedBarrier;
use crate::device::{Device, ExecError};
use crate::timing;

/// One value per lane.
pub type LaneVec = [u64; 32];

/// The device runtime library: resolves `intr` calls the core simulator
/// does not handle itself. Implemented by cudadev's device part.
pub trait DeviceLib: Send + Sync {
    fn call(
        &self,
        name: &str,
        warp: &mut Warp<'_>,
        mask: u32,
        args: &[LaneVec],
        sargs: &[String],
    ) -> Result<Option<LaneVec>, ExecError>;
}

/// A library that resolves nothing (pure-CUDA kernels).
pub struct NoLib;

impl DeviceLib for NoLib {
    fn call(
        &self,
        name: &str,
        _warp: &mut Warp<'_>,
        _mask: u32,
        _args: &[LaneVec],
        _sargs: &[String],
    ) -> Result<Option<LaneVec>, ExecError> {
        Err(ExecError::UnknownIntrinsic(name.to_string()))
    }
}

/// Number of device-library scratch slots per block (used by cudadev for
/// the master/worker registration record and the shared-memory stack
/// pointer).
pub const EXT_SLOTS: usize = 16;

/// Per-block shared state.
pub struct BlockCtx {
    /// The block's shared memory (48 KiB on the Nano).
    pub shared: MemArena,
    /// The 16 PTX named barriers.
    pub barriers: Vec<NamedBarrier>,
    /// Device-library scratch (e.g. parallel-region registration record).
    pub ext: [AtomicU64; EXT_SLOTS],
}

impl BlockCtx {
    pub fn new(shared_bytes: usize) -> BlockCtx {
        BlockCtx {
            shared: MemArena::new(shared_bytes),
            barriers: (0..16).map(NamedBarrier::new).collect(),
            ext: Default::default(),
        }
    }
}

/// Everything shared by the warps of one block.
pub struct BlockEnv<'a> {
    pub device: &'a Device,
    pub module: &'a sptx::Module,
    pub lib: &'a dyn DeviceLib,
    pub ctx: BlockCtx,
    pub grid_dim: [u32; 3],
    pub block_dim: [u32; 3],
    pub ctaid: [u32; 3],
    /// Threads in this block.
    pub nthreads: u32,
    /// Static shared-memory bytes claimed by the kernel (the dynamic
    /// shared-memory stack of the device library starts above this).
    pub shared_static: u64,
}

/// Per-warp execution statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarpStats {
    pub lane_insts: u64,
    pub mem_transactions: u64,
    pub divergent_branches: u64,
}

struct Frame {
    /// Register file, reg-major: `regs[reg * 32 + lane]`.
    regs: Vec<u64>,
    /// Start of this frame's window in the warp-local memory stack.
    local_base: usize,
    /// Per-lane local bytes.
    local_size: u64,
    ret_vals: LaneVec,
    ret_mask: u32,
}

/// Flow bookkeeping for structured execution.
#[derive(Default)]
struct FlowMasks {
    brk: Vec<u32>,
    cont: Vec<u32>,
}

/// A warp mid-execution.
pub struct Warp<'a> {
    pub env: &'a BlockEnv<'a>,
    pub warp_id: u32,
    frames: Vec<Frame>,
    /// Latency clock (cycles) — synchronized at barriers.
    pub clock: u64,
    /// Issue cycles (throughput cost).
    pub issue: u64,
    pub stats: WarpStats,
    /// Warp-private local memory stack (all lanes interleaved per frame).
    local_stack: Vec<u8>,
}

const LOCAL_STACK_LIMIT: usize = 4 << 20;

impl<'a> Warp<'a> {
    pub fn new(env: &'a BlockEnv<'a>, warp_id: u32) -> Warp<'a> {
        Warp {
            env,
            warp_id,
            frames: Vec::new(),
            clock: 0,
            issue: 0,
            stats: WarpStats::default(),
            local_stack: Vec::new(),
        }
    }

    /// Lanes of this warp that exist in the block.
    pub fn initial_mask(&self) -> u32 {
        let first = self.warp_id * 32;
        let live = self.env.nthreads.saturating_sub(first).min(32);
        if live == 0 {
            0
        } else if live == 32 {
            u32::MAX
        } else {
            (1u32 << live) - 1
        }
    }

    /// Linear thread id within the block of `lane`.
    #[inline]
    pub fn lin_tid(&self, lane: u32) -> u32 {
        self.warp_id * 32 + lane
    }

    fn special(&self, s: sptx::SpecialReg, lane: u32) -> u64 {
        use sptx::SpecialReg::*;
        let [bx, by, _bz] = self.env.block_dim;
        let lin = self.lin_tid(lane);
        match s {
            TidX => (lin % bx) as u64,
            TidY => ((lin / bx) % by) as u64,
            TidZ => (lin / (bx * by)) as u64,
            NtidX => self.env.block_dim[0] as u64,
            NtidY => self.env.block_dim[1] as u64,
            NtidZ => self.env.block_dim[2] as u64,
            CtaidX => self.env.ctaid[0] as u64,
            CtaidY => self.env.ctaid[1] as u64,
            CtaidZ => self.env.ctaid[2] as u64,
            NctaidX => self.env.grid_dim[0] as u64,
            NctaidY => self.env.grid_dim[1] as u64,
            NctaidZ => self.env.grid_dim[2] as u64,
            LaneId => lane as u64,
            WarpId => self.warp_id as u64,
        }
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("active frame")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("active frame")
    }

    #[inline]
    fn reg(&self, r: sptx::Reg, lane: u32) -> u64 {
        self.frame().regs[r.0 as usize * 32 + lane as usize]
    }

    #[inline]
    fn set_reg(&mut self, r: sptx::Reg, lane: u32, v: u64) {
        self.frame_mut().regs[r.0 as usize * 32 + lane as usize] = v;
    }

    /// Evaluate an operand for one lane (raw bit pattern).
    #[inline]
    pub fn op_val(&self, o: &sptx::Operand, lane: u32) -> u64 {
        match o {
            sptx::Operand::Reg(r) => self.reg(*r, lane),
            sptx::Operand::ImmI(v) => *v as u64,
            sptx::Operand::ImmF(v) => v.to_bits(),
            sptx::Operand::Special(s) => self.special(*s, lane),
            sptx::Operand::LocalBase => {
                let f = self.frame();
                addr::make(Space::Local, f.local_base as u64 + lane as u64 * f.local_size)
            }
            sptx::Operand::SharedBase => addr::make(Space::Shared, 0),
        }
    }

    /// Uniform operand value (first active lane).
    fn op_uniform(&self, o: &sptx::Operand, mask: u32) -> u64 {
        let lane = mask.trailing_zeros().min(31);
        self.op_val(o, lane)
    }

    pub fn add_cost(&mut self, issue: u64, lat: u64) {
        self.issue += issue;
        self.clock += lat;
    }

    /// Arrive at named barrier `id` on behalf of this warp.
    pub fn bar_sync(&mut self, id: u32, expected_threads: u32) -> Result<(), ExecError> {
        if id as usize >= self.env.ctx.barriers.len() {
            return Err(ExecError::Trap(format!("barrier id {id} out of range")));
        }
        if expected_threads == 0 || !expected_threads.is_multiple_of(timing::WARP_SIZE) {
            return Err(ExecError::Trap(format!(
                "bar.sync count {expected_threads} is not a positive multiple of {}",
                timing::WARP_SIZE
            )));
        }
        self.issue += timing::BARRIER_ISSUE;
        self.env.ctx.barriers[id as usize].sync(expected_threads, &mut self.clock)?;
        Ok(())
    }

    // ------------------------------------------------------------- memory

    /// Resolve a tagged guest address for `size` bytes. Returns which arena
    /// (or the local stack) it lives in.
    fn resolve(&self, a: u64) -> Result<Resolved<'_>, ExecError> {
        match addr::space(a) {
            Some(Space::Global) => Ok(Resolved::Arena(&self.env.device.global, addr::offset(a))),
            Some(Space::Shared) => Ok(Resolved::Arena(&self.env.ctx.shared, addr::offset(a))),
            Some(Space::Local) => Ok(Resolved::Local(addr::offset(a) as usize)),
            _ => Err(ExecError::Mem(vmcommon::MemError::BadSpace { addr: a })),
        }
    }

    fn load_mem(&mut self, ty: sptx::MemTy, a: u64) -> Result<u64, ExecError> {
        Ok(match self.resolve(a)? {
            Resolved::Arena(m, off) => match ty {
                sptx::MemTy::B8 => m.load_u8(off)? as u64,
                sptx::MemTy::B32 | sptx::MemTy::F32 => m.load_u32(off)? as u64,
                sptx::MemTy::B64 | sptx::MemTy::F64 => m.load_u64(off)?,
            },
            Resolved::Local(off) => {
                let size = ty.size() as usize;
                let end = off.checked_add(size).ok_or(ExecError::Trap("local overflow".into()))?;
                if end > self.local_stack.len() {
                    return Err(ExecError::Trap(format!("local read out of bounds at {off:#x}")));
                }
                let mut buf = [0u8; 8];
                buf[..size].copy_from_slice(&self.local_stack[off..end]);
                u64::from_le_bytes(buf)
            }
        })
    }

    fn store_mem(&mut self, ty: sptx::MemTy, a: u64, v: u64) -> Result<(), ExecError> {
        match self.resolve(a)? {
            Resolved::Arena(m, off) => match ty {
                sptx::MemTy::B8 => m.store_u8(off, v as u8)?,
                sptx::MemTy::B32 | sptx::MemTy::F32 => m.store_u32(off, v as u32)?,
                sptx::MemTy::B64 | sptx::MemTy::F64 => m.store_u64(off, v)?,
            },
            Resolved::Local(off) => {
                let size = ty.size() as usize;
                let end = off.checked_add(size).ok_or(ExecError::Trap("local overflow".into()))?;
                if end > self.local_stack.len() {
                    return Err(ExecError::Trap(format!("local write out of bounds at {off:#x}")));
                }
                self.local_stack[off..end].copy_from_slice(&v.to_le_bytes()[..size]);
            }
        }
        Ok(())
    }

    /// Copy raw bytes between any device-visible spaces (device-library
    /// helper, e.g. `cudadev_push_shmem`).
    pub fn copy_bytes(&mut self, dst: u64, src: u64, len: u64) -> Result<(), ExecError> {
        for i in 0..len {
            let b = self.load_mem(sptx::MemTy::B8, src + i)? as u8;
            self.store_mem(sptx::MemTy::B8, dst + i, b as u64)?;
        }
        Ok(())
    }

    /// Read a device-side NUL-terminated string.
    pub fn read_cstr(&mut self, mut a: u64) -> Result<String, ExecError> {
        let mut s = Vec::new();
        loop {
            let b = self.load_mem(sptx::MemTy::B8, a)? as u8;
            if b == 0 {
                break;
            }
            s.push(b);
            a += 1;
            if s.len() > 1 << 16 {
                return Err(ExecError::Trap("unterminated device string".into()));
            }
        }
        Ok(String::from_utf8_lossy(&s).into_owned())
    }

    /// Public typed accessors for the device library.
    pub fn mem_read_u32(&mut self, a: u64) -> Result<u32, ExecError> {
        Ok(self.load_mem(sptx::MemTy::B32, a)? as u32)
    }

    pub fn mem_write_u32(&mut self, a: u64, v: u32) -> Result<(), ExecError> {
        self.store_mem(sptx::MemTy::B32, a, v as u64)
    }

    pub fn mem_read_u64(&mut self, a: u64) -> Result<u64, ExecError> {
        self.load_mem(sptx::MemTy::B64, a)
    }

    pub fn mem_write_u64(&mut self, a: u64, v: u64) -> Result<(), ExecError> {
        self.store_mem(sptx::MemTy::B64, a, v)
    }

    /// Count coalesced 32-byte transactions for a set of lane addresses.
    fn coalesce(&mut self, addrs: &[u64], count: usize) {
        let mut segs = [u64::MAX; 32];
        let mut nsegs = 0usize;
        for &a in &addrs[..count] {
            if addr::space(a) != Some(Space::Global) {
                continue;
            }
            let seg = addr::offset(a) / timing::TRANSACTION_BYTES;
            if !segs[..nsegs].contains(&seg) {
                segs[nsegs] = seg;
                nsegs += 1;
            }
        }
        self.stats.mem_transactions += nsegs as u64;
        // Throughput: roughly one transaction per cycle of issue;
        // latency: one exposed access per instruction.
        self.issue += nsegs as u64;
        if count > 0 {
            let lat = match addr::space(addrs[0]) {
                Some(Space::Global) => timing::GLOBAL_MEM_LAT,
                Some(Space::Shared) => timing::SHARED_MEM_LAT,
                _ => timing::LOCAL_MEM_LAT,
            };
            self.clock += lat;
        }
    }

    // ------------------------------------------------------------ control

    /// Execute a kernel entry: `params` are uniform across lanes.
    pub fn run_kernel(&mut self, func: u32, params: &[u64], mask: u32) -> Result<(), ExecError> {
        let mut args = Vec::with_capacity(params.len());
        for &p in params {
            args.push([p; 32]);
        }
        self.exec_function(func, &args, mask)?;
        Ok(())
    }

    /// Execute a device function on this warp for the lanes in `mask`.
    /// Returns per-lane return values.
    pub fn call_device_fn(
        &mut self,
        func: u32,
        args: &[LaneVec],
        mask: u32,
    ) -> Result<LaneVec, ExecError> {
        self.exec_function(func, args, mask)
    }

    fn exec_function(
        &mut self,
        func: u32,
        args: &[LaneVec],
        mask: u32,
    ) -> Result<LaneVec, ExecError> {
        let module = self.env.module;
        let f = module
            .functions
            .get(func as usize)
            .ok_or_else(|| ExecError::Trap(format!("function index {func} out of range")))?;
        if args.len() != f.params.len() {
            return Err(ExecError::Trap(format!(
                "call to `{}` with {} args (expects {})",
                f.name,
                args.len(),
                f.params.len()
            )));
        }
        if self.frames.len() >= 64 {
            return Err(ExecError::Trap("device call stack overflow".into()));
        }
        let local_base = self.local_stack.len();
        let local_total = f.local_size as usize * 32;
        if local_base + local_total > LOCAL_STACK_LIMIT {
            return Err(ExecError::Trap("local memory exhausted".into()));
        }
        self.local_stack.resize(local_base + local_total, 0);
        let mut regs = vec![0u64; f.num_regs as usize * 32];
        for (i, a) in args.iter().enumerate() {
            regs[i * 32..(i + 1) * 32].copy_from_slice(a);
        }
        self.frames.push(Frame {
            regs,
            local_base,
            local_size: f.local_size,
            ret_vals: [0; 32],
            ret_mask: 0,
        });
        let body: &[sptx::Node] = &f.body;
        let mut flow = FlowMasks::default();
        let res = self.exec_nodes(body, mask, &mut flow);
        let frame = self.frames.pop().expect("frame");
        self.local_stack.truncate(frame.local_base);
        res?;
        Ok(frame.ret_vals)
    }

    /// Execute nodes; returns the mask of lanes still active afterwards.
    fn exec_nodes(
        &mut self,
        nodes: &[sptx::Node],
        mut mask: u32,
        flow: &mut FlowMasks,
    ) -> Result<u32, ExecError> {
        for n in nodes {
            if mask == 0 {
                break;
            }
            match n {
                sptx::Node::Inst(i) => {
                    mask = self.exec_inst(i, mask)?;
                }
                sptx::Node::If { cond, then_b, else_b } => {
                    let mut m_then = 0u32;
                    for lane in iter_lanes(mask) {
                        if (self.op_val(cond, lane) as u32) != 0 {
                            m_then |= 1 << lane;
                        }
                    }
                    let m_else = mask & !m_then;
                    if m_then != 0 && m_else != 0 {
                        self.stats.divergent_branches += 1;
                        self.clock += timing::DIVERGENCE_LAT;
                    }
                    self.add_cost(1, 2);
                    let mut out = 0u32;
                    if m_then != 0 {
                        out |= self.exec_nodes(then_b, m_then, flow)?;
                    }
                    if m_else != 0 {
                        out |= self.exec_nodes(else_b, m_else, flow)?;
                    }
                    mask = out;
                }
                sptx::Node::Loop { body } => {
                    flow.brk.push(0);
                    let mut cur = mask;
                    loop {
                        flow.cont.push(0);
                        let out = self.exec_nodes(body, cur, flow)?;
                        let continued = flow.cont.pop().unwrap();
                        cur = out | continued;
                        let broken = *flow.brk.last().unwrap();
                        cur &= !broken;
                        self.add_cost(1, 2);
                        if cur == 0 {
                            break;
                        }
                    }
                    mask = flow.brk.pop().unwrap();
                }
                sptx::Node::Break => {
                    *flow
                        .brk
                        .last_mut()
                        .ok_or_else(|| ExecError::Trap("break outside loop".into()))? |= mask;
                    mask = 0;
                }
                sptx::Node::Continue => {
                    *flow
                        .cont
                        .last_mut()
                        .ok_or_else(|| ExecError::Trap("continue outside loop".into()))? |= mask;
                    mask = 0;
                }
            }
        }
        Ok(mask)
    }

    fn exec_inst(&mut self, i: &sptx::Inst, mask: u32) -> Result<u32, ExecError> {
        use sptx::Inst;
        let (ic, lc) = timing::inst_cost(i);
        self.add_cost(ic, lc);
        self.stats.lane_insts += mask.count_ones() as u64;
        match i {
            Inst::Mov { dst, src } => {
                for lane in iter_lanes(mask) {
                    let v = self.op_val(src, lane);
                    self.set_reg(*dst, lane, v);
                }
            }
            Inst::Bin { ty, op, dst, a, b } => {
                for lane in iter_lanes(mask) {
                    let av = self.op_val(a, lane);
                    let bv = self.op_val(b, lane);
                    let r = alu_bin(*ty, *op, av, bv, a, b)
                        .map_err(|m| ExecError::Trap(format!("{m} in warp {}", self.warp_id)))?;
                    self.set_reg(*dst, lane, r);
                }
            }
            Inst::Un { ty, op, dst, a } => {
                for lane in iter_lanes(mask) {
                    let av = self.op_val(a, lane);
                    let r = alu_un(*ty, *op, av, a);
                    self.set_reg(*dst, lane, r);
                }
            }
            Inst::Cvt { to, from, dst, src } => {
                for lane in iter_lanes(mask) {
                    let v = self.op_val(src, lane);
                    let r = convert(*to, *from, v, src);
                    self.set_reg(*dst, lane, r);
                }
            }
            Inst::Ld { ty, dst, addr: ao, offset } => {
                let mut addrs = [0u64; 32];
                let mut n = 0usize;
                for lane in iter_lanes(mask) {
                    let a = (self.op_val(ao, lane) as i64 + offset) as u64;
                    addrs[n] = a;
                    n += 1;
                    let v = self.load_mem(*ty, a)?;
                    self.set_reg(*dst, lane, v);
                }
                self.coalesce(&addrs, n);
            }
            Inst::St { ty, src, addr: ao, offset } => {
                let mut addrs = [0u64; 32];
                let mut n = 0usize;
                for lane in iter_lanes(mask) {
                    let a = (self.op_val(ao, lane) as i64 + offset) as u64;
                    addrs[n] = a;
                    n += 1;
                    let v = self.op_val(src, lane);
                    self.store_mem(*ty, a, v)?;
                }
                self.coalesce(&addrs, n);
            }
            Inst::AtomCas { dst, addr, expected, new } => {
                for lane in iter_lanes(mask) {
                    let a = self.op_val(addr, lane);
                    let e = self.op_val(expected, lane) as u32;
                    let nv = self.op_val(new, lane) as u32;
                    let old = match self.resolve(a)? {
                        Resolved::Arena(m, off) => m.cas_u32(off, e, nv)?,
                        Resolved::Local(_) => {
                            return Err(ExecError::Trap("atomic on local memory".into()))
                        }
                    };
                    self.set_reg(*dst, lane, old as u64);
                }
            }
            Inst::Atom { op, dst, addr, val } => {
                for lane in iter_lanes(mask) {
                    let a = self.op_val(addr, lane);
                    let v = self.op_val(val, lane);
                    let (m, off) = match self.resolve(a)? {
                        Resolved::Arena(m, off) => (m, off),
                        Resolved::Local(_) => {
                            return Err(ExecError::Trap("atomic on local memory".into()))
                        }
                    };
                    let old = match op {
                        sptx::AtomOp::CasB32 => unreachable!("separate instruction"),
                        sptx::AtomOp::AddI32 => m.fetch_add_u32(off, v as u32)? as u64,
                        sptx::AtomOp::AddI64 => m.fetch_add_u64(off, v)?,
                        sptx::AtomOp::AddF32 => {
                            m.fetch_add_f32(off, f32::from_bits(v as u32))?.to_bits() as u64
                        }
                        sptx::AtomOp::AddF64 => m.fetch_add_f64(off, f64::from_bits(v))?.to_bits(),
                        sptx::AtomOp::ExchB32 => m.swap_u32(off, v as u32)? as u64,
                        sptx::AtomOp::MinI32 => m.fetch_min_i32(off, v as i32)? as u32 as u64,
                        sptx::AtomOp::MaxI32 => m.fetch_max_i32(off, v as i32)? as u32 as u64,
                    };
                    self.set_reg(*dst, lane, old);
                }
            }
            Inst::BarSync { id, count } => {
                let idv = self.op_uniform(id, mask) as u32;
                let expected = match count {
                    Some(c) => self.op_uniform(c, mask) as u32,
                    None => self.env.nthreads.next_multiple_of(timing::WARP_SIZE),
                };
                self.bar_sync(idv, expected)?;
            }
            Inst::Call { func, dst, args } => {
                let mut lane_args = Vec::with_capacity(args.len());
                for a in args {
                    let mut lv = [0u64; 32];
                    for lane in iter_lanes(mask) {
                        lv[lane as usize] = self.op_val(a, lane);
                    }
                    lane_args.push(lv);
                }
                let rv = self.exec_function(*func, &lane_args, mask)?;
                if let Some(d) = dst {
                    for lane in iter_lanes(mask) {
                        self.set_reg(*d, lane, rv[lane as usize]);
                    }
                }
            }
            Inst::Intrinsic { name, dst, args, sargs } => {
                let mut lane_args = Vec::with_capacity(args.len());
                for a in args {
                    let mut lv = [0u64; 32];
                    for lane in iter_lanes(mask) {
                        lv[lane as usize] = self.op_val(a, lane);
                    }
                    lane_args.push(lv);
                }
                let rv = self.dispatch_intrinsic(name, mask, &lane_args, sargs)?;
                if let Some(d) = dst {
                    let rv = rv.unwrap_or([0; 32]);
                    for lane in iter_lanes(mask) {
                        self.set_reg(*d, lane, rv[lane as usize]);
                    }
                }
            }
            Inst::Ret { val } => {
                for lane in iter_lanes(mask) {
                    let v = val.map(|v| self.op_val(&v, lane)).unwrap_or(0);
                    let f = self.frame_mut();
                    f.ret_vals[lane as usize] = v;
                    f.ret_mask |= 1 << lane;
                }
                return Ok(0);
            }
            Inst::Trap { msg } => {
                return Err(ExecError::Trap(format!("kernel trap: {msg}")));
            }
        }
        Ok(mask)
    }

    fn dispatch_intrinsic(
        &mut self,
        name: &str,
        mask: u32,
        args: &[LaneVec],
        sargs: &[String],
    ) -> Result<Option<LaneVec>, ExecError> {
        match name {
            "printf" => {
                let fmt = sargs
                    .first()
                    .cloned()
                    .ok_or_else(|| ExecError::Trap("device printf without format".into()))?;
                let kinds = crate::printf_arg_kinds(&fmt);
                let mut out = String::new();
                for lane in iter_lanes(mask) {
                    let mut fargs = Vec::new();
                    for (ai, is_str) in kinds.iter().enumerate() {
                        let bits = args.get(ai).map(|a| a[lane as usize]).unwrap_or(0);
                        if *is_str {
                            fargs.push(FmtArg::Str(self.read_cstr(bits)?));
                        } else {
                            // Device printf promotes f32 to f64 at the call
                            // site (handled by the compiler); raw bits here
                            // are i64 or f64.
                            fargs.push(FmtArg::Val(decode_printf_arg(bits, &fmt, ai)));
                        }
                    }
                    out.push_str(&vmcommon::fmt::format(&fmt, &fargs));
                }
                self.env.device.printf_output.lock().push_str(&out);
                Ok(Some([out.len() as u64; 32]))
            }
            _ => {
                let lib = self.env.lib;
                lib.call(name, self, mask, args, sargs)
            }
        }
    }
}

enum Resolved<'m> {
    Arena(&'m MemArena, u64),
    Local(usize),
}

/// Iterate set lanes of a mask.
pub fn iter_lanes(mask: u32) -> impl Iterator<Item = u32> {
    (0..32u32).filter(move |l| mask & (1 << l) != 0)
}

/// Decode a printf argument from raw bits based on the conversion kind.
fn decode_printf_arg(bits: u64, fmt: &str, index: usize) -> Value {
    // Find the index-th conversion to decide integer vs float.
    let mut seen = 0usize;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            continue;
        }
        let mut conv = None;
        for c in chars.by_ref() {
            if c.is_ascii_alphabetic() && !matches!(c, 'l' | 'z' | 'h') {
                conv = Some(c);
                break;
            }
        }
        if let Some(conv) = conv {
            if seen == index {
                return match conv {
                    'f' | 'F' | 'e' | 'E' | 'g' | 'G' => Value::F64(f64::from_bits(bits)),
                    'p' | 'x' | 'X' | 'u' => Value::I64(bits as i64),
                    _ => Value::I64(bits as i64),
                };
            }
            seen += 1;
        }
    }
    Value::I64(bits as i64)
}

// ----------------------------------------------------------------- ALU

fn alu_bin(
    ty: sptx::ScalarTy,
    op: sptx::BinOp,
    a_bits: u64,
    b_bits: u64,
    a_op: &sptx::Operand,
    b_op: &sptx::Operand,
) -> Result<u64, String> {
    use sptx::{BinOp as B, ScalarTy as T};
    // Immediates carry their natural encoding: ImmF is f64 bits, ImmI is a
    // sign-extended integer — normalize into the instruction type.
    #[inline]
    fn f32_of(bits: u64, o: &sptx::Operand) -> f32 {
        match o {
            sptx::Operand::ImmF(v) => *v as f32,
            _ => f32::from_bits(bits as u32),
        }
    }
    #[inline]
    fn f64_of(bits: u64, o: &sptx::Operand) -> f64 {
        match o {
            sptx::Operand::ImmF(v) => *v,
            _ => f64::from_bits(bits),
        }
    }
    Ok(match ty {
        T::I32 => {
            let a = a_bits as u32 as i32;
            let b = b_bits as u32 as i32;
            let r: i32 = match op {
                B::Add => a.wrapping_add(b),
                B::Sub => a.wrapping_sub(b),
                B::Mul => a.wrapping_mul(b),
                B::Div => {
                    if b == 0 {
                        return Err("division by zero".into());
                    }
                    a.wrapping_div(b)
                }
                B::Rem => {
                    if b == 0 {
                        return Err("remainder by zero".into());
                    }
                    a.wrapping_rem(b)
                }
                B::Min => a.min(b),
                B::Max => a.max(b),
                B::And => a & b,
                B::Or => a | b,
                B::Xor => a ^ b,
                B::Shl => a.wrapping_shl(b as u32),
                B::Shr => a.wrapping_shr(b as u32),
                B::SetLt => (a < b) as i32,
                B::SetLe => (a <= b) as i32,
                B::SetGt => (a > b) as i32,
                B::SetGe => (a >= b) as i32,
                B::SetEq => (a == b) as i32,
                B::SetNe => (a != b) as i32,
            };
            r as u32 as u64
        }
        T::I64 => {
            let a = a_bits as i64;
            let b = b_bits as i64;
            if op.is_comparison() {
                let r = match op {
                    B::SetLt => a < b,
                    B::SetLe => a <= b,
                    B::SetGt => a > b,
                    B::SetGe => a >= b,
                    B::SetEq => a == b,
                    B::SetNe => a != b,
                    _ => unreachable!(),
                };
                return Ok(r as u64);
            }
            let r: i64 = match op {
                B::Add => a.wrapping_add(b),
                B::Sub => a.wrapping_sub(b),
                B::Mul => a.wrapping_mul(b),
                B::Div => {
                    if b == 0 {
                        return Err("division by zero".into());
                    }
                    a.wrapping_div(b)
                }
                B::Rem => {
                    if b == 0 {
                        return Err("remainder by zero".into());
                    }
                    a.wrapping_rem(b)
                }
                B::Min => a.min(b),
                B::Max => a.max(b),
                B::And => a & b,
                B::Or => a | b,
                B::Xor => a ^ b,
                B::Shl => a.wrapping_shl(b as u32),
                B::Shr => a.wrapping_shr(b as u32),
                _ => unreachable!(),
            };
            r as u64
        }
        T::F32 => {
            let a = f32_of(a_bits, a_op);
            let b = f32_of(b_bits, b_op);
            if op.is_comparison() {
                let r = match op {
                    B::SetLt => a < b,
                    B::SetLe => a <= b,
                    B::SetGt => a > b,
                    B::SetGe => a >= b,
                    B::SetEq => a == b,
                    B::SetNe => a != b,
                    _ => unreachable!(),
                };
                return Ok(r as u64);
            }
            let r: f32 = match op {
                B::Add => a + b,
                B::Sub => a - b,
                B::Mul => a * b,
                B::Div => a / b,
                B::Rem => a % b,
                B::Min => a.min(b),
                B::Max => a.max(b),
                _ => return Err(format!("bitwise {op:?} on f32")),
            };
            r.to_bits() as u64
        }
        T::F64 => {
            let a = f64_of(a_bits, a_op);
            let b = f64_of(b_bits, b_op);
            if op.is_comparison() {
                let r = match op {
                    B::SetLt => a < b,
                    B::SetLe => a <= b,
                    B::SetGt => a > b,
                    B::SetGe => a >= b,
                    B::SetEq => a == b,
                    B::SetNe => a != b,
                    _ => unreachable!(),
                };
                return Ok(r as u64);
            }
            let r: f64 = match op {
                B::Add => a + b,
                B::Sub => a - b,
                B::Mul => a * b,
                B::Div => a / b,
                B::Rem => a % b,
                B::Min => a.min(b),
                B::Max => a.max(b),
                _ => return Err(format!("bitwise {op:?} on f64")),
            };
            r.to_bits()
        }
    })
}

fn alu_un(ty: sptx::ScalarTy, op: sptx::UnOp, bits: u64, src: &sptx::Operand) -> u64 {
    use sptx::{ScalarTy as T, UnOp as U};
    match ty {
        T::F32 => {
            let v = match src {
                sptx::Operand::ImmF(x) => *x as f32,
                _ => f32::from_bits(bits as u32),
            };
            let r: f32 = match op {
                U::Neg => -v,
                U::Not => return (v == 0.0) as u64,
                U::BitNot => f32::from_bits(!v.to_bits()),
                U::Sqrt => v.sqrt(),
                U::Abs => v.abs(),
                U::Floor => v.floor(),
                U::Ceil => v.ceil(),
                U::Exp => v.exp(),
                U::Log => v.ln(),
                U::Sin => v.sin(),
                U::Cos => v.cos(),
            };
            r.to_bits() as u64
        }
        T::F64 => {
            let v = match src {
                sptx::Operand::ImmF(x) => *x,
                _ => f64::from_bits(bits),
            };
            let r: f64 = match op {
                U::Neg => -v,
                U::Not => return (v == 0.0) as u64,
                U::BitNot => f64::from_bits(!v.to_bits()),
                U::Sqrt => v.sqrt(),
                U::Abs => v.abs(),
                U::Floor => v.floor(),
                U::Ceil => v.ceil(),
                U::Exp => v.exp(),
                U::Log => v.ln(),
                U::Sin => v.sin(),
                U::Cos => v.cos(),
            };
            r.to_bits()
        }
        T::I32 => {
            let v = bits as u32 as i32;
            let r: i32 = match op {
                U::Neg => v.wrapping_neg(),
                U::Not => (v == 0) as i32,
                U::BitNot => !v,
                U::Abs => v.wrapping_abs(),
                _ => v,
            };
            r as u32 as u64
        }
        T::I64 => {
            let v = bits as i64;
            let r: i64 = match op {
                U::Neg => v.wrapping_neg(),
                U::Not => (v == 0) as i64,
                U::BitNot => !v,
                U::Abs => v.wrapping_abs(),
                _ => v,
            };
            r as u64
        }
    }
}

fn convert(to: sptx::CvtTy, from: sptx::CvtTy, bits: u64, src: &sptx::Operand) -> u64 {
    use sptx::CvtTy as C;
    // Decode source value.
    let as_f64 = |bits: u64| -> f64 {
        match from {
            C::F32 => f32::from_bits(bits as u32) as f64,
            C::F64 => f64::from_bits(bits),
            C::I64 => bits as i64 as f64,
            C::I32 => bits as u32 as i32 as f64,
            C::S8 => bits as u8 as i8 as f64,
        }
    };
    let as_i64 = |bits: u64| -> i64 {
        match from {
            C::F32 => {
                if let sptx::Operand::ImmF(v) = src {
                    *v as i64
                } else {
                    f32::from_bits(bits as u32) as i64
                }
            }
            C::F64 => f64::from_bits(bits) as i64,
            C::I64 => bits as i64,
            C::I32 => bits as u32 as i32 as i64,
            C::S8 => bits as u8 as i8 as i64,
        }
    };
    let fsrc = if let sptx::Operand::ImmF(v) = src {
        if matches!(from, C::F32 | C::F64) {
            Some(*v)
        } else {
            None
        }
    } else {
        None
    };
    match to {
        C::S8 => (as_i64(bits) as i8) as u8 as u64,
        C::I32 => {
            let v = match fsrc {
                Some(f) => f as i32 as i64,
                None => as_i64(bits) as i32 as i64,
            };
            v as i32 as u32 as u64
        }
        C::I64 => match fsrc {
            Some(f) => (f as i64) as u64,
            None => as_i64(bits) as u64,
        },
        C::F32 => {
            let v = match fsrc {
                Some(f) => f,
                None => as_f64(bits),
            };
            (v as f32).to_bits() as u64
        }
        C::F64 => {
            let v = match fsrc {
                Some(f) => f,
                None => as_f64(bits),
            };
            v.to_bits()
        }
    }
}
