//! Region analysis for outlining: free variables of a target/parallel
//! region, canonical loop nests, and the call-graph closure of a kernel
//! (§3: "the compiler then derives the call graph of the subtree, by
//! discovering all called functions inside the kernel").

use std::collections::{BTreeMap, BTreeSet};

use minic::ast::build as b;
use minic::ast::*;
use minic::interp::{visit_child_exprs, visit_child_stmts, visit_stmt_exprs};
use minic::omp::DirKind;
use minic::token::Pos;
use minic::types::Ty;

/// Translation error.
#[derive(Clone, Debug)]
pub struct TransError {
    pub pos: Pos,
    pub msg: String,
}

impl std::fmt::Display for TransError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for TransError {}

pub type TResult<T> = Result<T, TransError>;

/// A free variable of a region, with its declared type.
#[derive(Clone, Debug)]
pub struct FreeVar {
    pub name: String,
    pub ty: Ty,
    pub slot: u32,
}

/// Collect the free variables of `body`: locals of the *enclosing* function
/// that are referenced inside but declared outside the region. Returned in
/// slot order (deterministic).
pub fn free_vars(body: &Stmt, frame: &minic::sema::FrameInfo) -> Vec<FreeVar> {
    let mut used: BTreeSet<u32> = BTreeSet::new();
    let mut declared: BTreeSet<u32> = BTreeSet::new();

    fn scan_expr(e: &Expr, used: &mut BTreeSet<u32>) {
        if let ExprKind::Ident(_, Resolved::Local(slot)) = &e.kind {
            used.insert(*slot);
        }
        visit_child_exprs(e, &mut |c| scan_expr(c, used));
    }
    fn scan_stmt(s: &Stmt, used: &mut BTreeSet<u32>, declared: &mut BTreeSet<u32>) {
        if let Stmt::Decl(d) = s {
            declared.insert(d.slot);
        }
        visit_stmt_exprs(s, &mut |e| scan_expr(e, used));
        // Clause expressions of nested directives also count as uses.
        if let Stmt::Omp(o) = s {
            for_each_clause_expr(&o.dir, &mut |e| scan_expr(e, used));
        }
        visit_child_stmts(s, &mut |c| scan_stmt(c, used, declared));
    }
    scan_stmt(body, &mut used, &mut declared);

    used.difference(&declared)
        .map(|&slot| {
            let info = &frame.slots[slot as usize];
            FreeVar { name: info.name.clone(), ty: info.ty.clone(), slot }
        })
        .collect()
}

/// Visit every expression in a directive's clauses.
pub fn for_each_clause_expr(dir: &minic::omp::Directive, f: &mut dyn FnMut(&Expr)) {
    use minic::omp::Clause;
    for c in &dir.clauses {
        match c {
            Clause::NumTeams(e)
            | Clause::NumThreads(e)
            | Clause::ThreadLimit(e)
            | Clause::If(e)
            | Clause::Device(e) => f(e),
            Clause::Schedule { chunk: Some(e), .. } => f(e),
            Clause::Map { items, .. } | Clause::UpdateTo(items) | Clause::UpdateFrom(items) => {
                for it in items {
                    for s in &it.sections {
                        if let Some(l) = &s.lower {
                            f(l);
                        }
                        if let Some(l) = &s.length {
                            f(l);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// One canonical loop of an associated nest.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Loop variable name.
    pub var: String,
    /// Loop variable type (int or long).
    pub var_ty: Ty,
    /// Whether the variable was declared in the for-init.
    pub var_declared: bool,
    pub lb: Expr,
    pub ub: Expr,
    /// `true` for `<=` / `>=`.
    pub inclusive: bool,
    /// Literal step (positive for `<`/`<=` loops, negative for `>`/`>=`).
    pub step: i64,
    pub pos: Pos,
}

/// Extract `depth` perfectly-nested canonical loops from a statement.
/// Returns the loops (outermost first) and the innermost body.
pub fn canonical_nest(s: &Stmt, depth: u32) -> TResult<(Vec<LoopInfo>, Stmt)> {
    let mut loops = Vec::new();
    let mut cur = s.clone();
    for level in 0..depth {
        let (info, body) = canonical_loop(&cur)?;
        loops.push(info);
        if level + 1 < depth {
            // The body must be exactly one nested for (possibly in a block).
            cur = unwrap_single(body).ok_or_else(|| TransError {
                pos: loops.last().unwrap().pos,
                msg: format!("collapse({depth}) requires perfectly nested loops"),
            })?;
        } else {
            return Ok((loops, body));
        }
    }
    unreachable!("depth >= 1")
}

fn unwrap_single(s: Stmt) -> Option<Stmt> {
    match s {
        Stmt::For { .. } => Some(s),
        Stmt::Block(b) => {
            let mut inner: Vec<Stmt> =
                b.stmts.into_iter().filter(|s| !matches!(s, Stmt::Empty)).collect();
            if inner.len() == 1 {
                unwrap_single(inner.remove(0))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Parse one canonical `for` loop.
pub fn canonical_loop(s: &Stmt) -> TResult<(LoopInfo, Stmt)> {
    let (init, cond, step, body) = match s {
        Stmt::For { init, cond, step, body } => (init, cond, step, body),
        other => {
            return Err(TransError {
                pos: Pos::default(),
                msg: format!("expected a for loop, found {other:?}"),
            })
        }
    };
    // Init: `int i = lb` or `i = lb`.
    let (var, var_ty, var_declared, lb, pos) = match init.as_deref() {
        Some(Stmt::Decl(d)) => {
            let lb = match &d.init {
                Some(Init::Expr(e)) => e.clone(),
                _ => {
                    return Err(TransError {
                        pos: d.pos,
                        msg: "canonical loop needs an initializer".into(),
                    })
                }
            };
            (d.name.clone(), d.ty.clone(), true, lb, d.pos)
        }
        Some(Stmt::Expr(e)) => match &e.kind {
            ExprKind::Assign { op: None, lhs, rhs } => match &lhs.kind {
                ExprKind::Ident(name, _) => {
                    (name.clone(), lhs.ty.clone(), false, (**rhs).clone(), e.pos)
                }
                _ => {
                    return Err(TransError {
                        pos: e.pos,
                        msg: "canonical loop must initialize a simple variable".into(),
                    })
                }
            },
            _ => {
                return Err(TransError {
                    pos: e.pos,
                    msg: "canonical loop needs `var = lb` initialization".into(),
                })
            }
        },
        _ => {
            return Err(TransError {
                pos: Pos::default(),
                msg: "canonical loop needs an init expression".into(),
            })
        }
    };
    // Condition: `i < ub`, `i <= ub`, `i > ub`, `i >= ub`.
    let (ub, inclusive, downward) = match cond {
        Some(c) => match &c.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs_is_var = matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var);
                if !lhs_is_var {
                    return Err(TransError {
                        pos: c.pos,
                        msg: "canonical loop condition must compare the loop variable".into(),
                    });
                }
                match op {
                    BinOp::Lt => ((**rhs).clone(), false, false),
                    BinOp::Le => ((**rhs).clone(), true, false),
                    BinOp::Gt => ((**rhs).clone(), false, true),
                    BinOp::Ge => ((**rhs).clone(), true, true),
                    other => {
                        return Err(TransError {
                            pos: c.pos,
                            msg: format!("unsupported loop comparison {other:?}"),
                        })
                    }
                }
            }
            _ => {
                return Err(TransError {
                    pos: c.pos,
                    msg: "canonical loop needs a comparison condition".into(),
                })
            }
        },
        None => return Err(TransError { pos, msg: "canonical loop needs a condition".into() }),
    };
    // Step: i++, ++i, i--, --i, i += c, i -= c, i = i + c, i = i - c.
    let step_val: i64 = match step {
        Some(e) => match &e.kind {
            ExprKind::IncDec { inc, expr, .. } if matches!(&expr.kind, ExprKind::Ident(n, _) if *n == var) => {
                if *inc {
                    1
                } else {
                    -1
                }
            }
            ExprKind::Assign { op: Some(BinOp::Add), lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var) => {
                rhs.const_int().ok_or_else(|| TransError {
                    pos: e.pos,
                    msg: "loop step must be a constant".into(),
                })?
            }
            ExprKind::Assign { op: Some(BinOp::Sub), lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var) => {
                -rhs.const_int().ok_or_else(|| TransError {
                    pos: e.pos,
                    msg: "loop step must be a constant".into(),
                })?
            }
            ExprKind::Assign { op: None, lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n, _) if *n == var) => {
                match &rhs.kind {
                    ExprKind::Binary { op: BinOp::Add, lhs: a, rhs: b } if matches!(&a.kind, ExprKind::Ident(n, _) if *n == var) => {
                        b.const_int().ok_or_else(|| TransError {
                            pos: e.pos,
                            msg: "loop step must be a constant".into(),
                        })?
                    }
                    ExprKind::Binary { op: BinOp::Sub, lhs: a, rhs: b } if matches!(&a.kind, ExprKind::Ident(n, _) if *n == var) => {
                        -b.const_int().ok_or_else(|| TransError {
                            pos: e.pos,
                            msg: "loop step must be a constant".into(),
                        })?
                    }
                    _ => {
                        return Err(TransError {
                            pos: e.pos,
                            msg: "unsupported loop step form".into(),
                        })
                    }
                }
            }
            _ => return Err(TransError { pos: e.pos, msg: "unsupported loop step form".into() }),
        },
        None => return Err(TransError { pos, msg: "canonical loop needs a step".into() }),
    };
    if step_val == 0 || (step_val > 0) == downward {
        return Err(TransError {
            pos,
            msg: "loop step direction contradicts the condition".into(),
        });
    }
    Ok((
        LoopInfo { var, var_ty, var_declared, lb, ub, inclusive, step: step_val, pos },
        (**body).clone(),
    ))
}

/// Shape analysis for memory-pressure tiling: the per-iteration byte row
/// of a mapped buffer inside a distribute loop.
///
/// A buffer `buf` is *sliceable* along the distribute variable `dist` when
/// every access indexes it as `dist*E + F` with
///
/// * `E` loop-invariant (it references no variable in `varying`) and
///   identical across all accesses, and
/// * `F` either absent or a single unscaled varying variable (an inner
///   loop counter) — the row-major convention `F < E`. A bare `dist`
///   index (`E` = 1) admits no `F` at all: `a[dist + 1]` reaches outside
///   the row, so stencils are correctly rejected.
///
/// Then iterations `[lb, ub)` touch exactly elements `[lb*E, ub*E)`, so
/// the governor can stream the buffer tile by tile with bit-identical
/// results. Returns `E` in *elements* (the caller scales by the element
/// size), or `None` when the buffer must stay resident.
pub fn row_stride(body: &Stmt, buf: &str, dist: &str, varying: &BTreeSet<String>) -> Option<Expr> {
    struct Scan<'a> {
        buf: &'a str,
        dist: &'a str,
        varying: &'a BTreeSet<String>,
        /// Pretty-printed form of the agreed-upon `E`, plus the Expr.
        stride: Option<(String, Expr)>,
        accesses: u32,
        ok: bool,
    }

    fn is_ident(e: &Expr, name: &str) -> bool {
        matches!(&e.kind, ExprKind::Ident(n, _) if n == name)
    }

    fn ident_name(e: &Expr) -> Option<&str> {
        match &e.kind {
            ExprKind::Ident(n, _) => Some(n.as_str()),
            _ => None,
        }
    }

    fn mentions(e: &Expr, name: &str) -> bool {
        let mut found = is_ident(e, name);
        visit_child_exprs(e, &mut |c| found |= mentions(c, name));
        found
    }

    fn invariant(e: &Expr, varying: &BTreeSet<String>) -> bool {
        let mut ok = match &e.kind {
            ExprKind::Ident(n, Resolved::Local(_)) => !varying.contains(n),
            // Globals / functions / calls: treat as varying (unknown).
            ExprKind::Call { .. } => false,
            _ => true,
        };
        visit_child_exprs(e, &mut |c| ok &= invariant(c, varying));
        ok
    }

    /// Flatten an `a + b + c` chain into terms (any `-` disqualifies).
    fn terms<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) -> bool {
        match &e.kind {
            ExprKind::Binary { op: BinOp::Add, lhs, rhs } => terms(lhs, out) && terms(rhs, out),
            ExprKind::Binary { op: BinOp::Sub, .. } => false,
            _ => {
                out.push(e);
                true
            }
        }
    }

    impl Scan<'_> {
        fn index(&mut self, idx: &Expr) {
            self.accesses += 1;
            let mut ts = Vec::new();
            if !terms(idx, &mut ts) {
                self.ok = false;
                return;
            }
            let (with_dist, rest): (Vec<&Expr>, Vec<&Expr>) =
                ts.into_iter().partition(|t| mentions(t, self.dist));
            let [dist_term] = with_dist[..] else {
                self.ok = false; // zero or several dist-bearing terms
                return;
            };
            // `dist * E` / `E * dist` / bare `dist`.
            let (stride, bare) = match &dist_term.kind {
                ExprKind::Binary { op: BinOp::Mul, lhs, rhs } if is_ident(lhs, self.dist) => {
                    ((**rhs).clone(), false)
                }
                ExprKind::Binary { op: BinOp::Mul, lhs, rhs } if is_ident(rhs, self.dist) => {
                    ((**lhs).clone(), false)
                }
                _ if is_ident(dist_term, self.dist) => (b::int(1), true),
                _ => {
                    self.ok = false;
                    return;
                }
            };
            if mentions(&stride, self.dist) || !invariant(&stride, self.varying) {
                self.ok = false;
                return;
            }
            match rest[..] {
                [] => {}
                // One unscaled inner counter, under the row-major
                // convention `counter < E` — meaningless for a bare
                // `dist` row.
                [f] if !bare
                    && ident_name(f)
                        .is_some_and(|n| self.varying.contains(n) && n != self.dist) => {}
                _ => {
                    self.ok = false;
                    return;
                }
            }
            let key = minic::pretty::expr(&stride);
            match &self.stride {
                Some((k, _)) if *k != key => self.ok = false,
                Some(_) => {}
                None => self.stride = Some((key, stride)),
            }
        }

        fn expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Index { base, index } if is_ident(base, self.buf) => {
                    self.index(index);
                    self.expr(index);
                    return;
                }
                // Any other appearance of the buffer (address-taken,
                // passed to a call, pointer arithmetic): not sliceable.
                ExprKind::Ident(n, _) if n == self.buf => {
                    self.ok = false;
                    return;
                }
                _ => {}
            }
            visit_child_exprs(e, &mut |c| self.expr(c));
        }
    }

    let mut scan = Scan { buf, dist, varying, stride: None, accesses: 0, ok: true };
    fn walk(s: &Stmt, scan: &mut Scan<'_>) {
        visit_stmt_exprs(s, &mut |e| scan.expr(e));
        visit_child_stmts(s, &mut |c| walk(c, scan));
    }
    walk(body, &mut scan);
    if scan.ok && scan.accesses > 0 {
        scan.stride.map(|(_, e)| e)
    } else {
        None
    }
}

/// The variables of a region body whose value changes during execution —
/// loop counters, locally declared variables, and assignment targets.
/// Everything else (by-value parameters) is loop-invariant for the
/// purposes of [`row_stride`].
pub fn varying_vars(body: &Stmt, loop_vars: &[String]) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = loop_vars.iter().cloned().collect();
    fn scan_expr(e: &Expr, out: &mut BTreeSet<String>) {
        match &e.kind {
            ExprKind::Assign { lhs, .. } | ExprKind::IncDec { expr: lhs, .. } => {
                if let ExprKind::Ident(n, _) = &lhs.kind {
                    out.insert(n.clone());
                }
            }
            _ => {}
        }
        visit_child_exprs(e, &mut |c| scan_expr(c, out));
    }
    fn scan_stmt(s: &Stmt, out: &mut BTreeSet<String>) {
        if let Stmt::Decl(d) = s {
            out.insert(d.name.clone());
        }
        visit_stmt_exprs(s, &mut |e| scan_expr(e, out));
        visit_child_stmts(s, &mut |c| scan_stmt(c, out));
    }
    scan_stmt(body, &mut out);
    out
}

/// Collect the names of program-defined functions called (transitively)
/// inside a statement — the kernel call-graph closure.
pub fn call_closure(body: &Stmt, prog: &Program) -> Vec<String> {
    let defs: BTreeMap<&str, &FuncDef> = prog
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Func(f) => Some((f.sig.name.as_str(), f)),
            _ => None,
        })
        .collect();

    fn scan_expr(e: &Expr, out: &mut BTreeSet<String>) {
        if let ExprKind::Call { callee, .. } = &e.kind {
            out.insert(callee.clone());
        }
        if let ExprKind::Ident(name, Resolved::Func) = &e.kind {
            out.insert(name.clone());
        }
        visit_child_exprs(e, &mut |c| scan_expr(c, out));
    }
    fn scan_stmt(s: &Stmt, out: &mut BTreeSet<String>) {
        visit_stmt_exprs(s, &mut |e| scan_expr(e, out));
        visit_child_stmts(s, &mut |c| scan_stmt(c, out));
    }

    let mut result: Vec<String> = Vec::new();
    let mut pending: Vec<String> = {
        let mut s = BTreeSet::new();
        scan_stmt(body, &mut s);
        s.into_iter().collect()
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    while let Some(name) = pending.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(f) = defs.get(name.as_str()) {
            result.push(name.clone());
            let mut inner = BTreeSet::new();
            for s in &f.body.stmts {
                scan_stmt(s, &mut inner);
            }
            pending.extend(inner);
        }
    }
    result.sort();
    result
}

/// Does this statement (without descending into nested `target` regions)
/// contain a stand-alone parallel-family directive? Decides combined-vs-
/// master/worker lowering.
pub fn contains_standalone_parallel(s: &Stmt) -> bool {
    let mut found = false;
    fn walk(s: &Stmt, found: &mut bool) {
        if let Stmt::Omp(o) = s {
            if matches!(
                o.dir.kind,
                DirKind::Parallel
                    | DirKind::ParallelFor
                    | DirKind::For
                    | DirKind::Sections
                    | DirKind::Single
                    | DirKind::Master
                    | DirKind::Critical
                    | DirKind::Barrier
            ) {
                *found = true;
            }
            if o.dir.kind.is_target() {
                return; // nested target: its own lowering
            }
        }
        visit_child_stmts(s, &mut |c| walk(c, found));
    }
    walk(s, &mut found);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parser::parse;
    use minic::sema::analyze;

    fn func(src: &str) -> (Program, usize) {
        let mut p = parse(src).unwrap();
        analyze(&mut p).unwrap();
        let idx =
            p.items.iter().position(|i| matches!(i, Item::Func(f) if f.sig.name == "f")).unwrap();
        (p, idx)
    }

    #[test]
    fn free_vars_excludes_region_locals() {
        let (p, i) = func(
            "void f(float *x, int n) { int outer = 1; { int inner = 2; x[outer] = inner + n; } }",
        );
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        // The inner block: x, outer, n free; inner declared.
        let body = f.body.stmts[1].clone();
        let fv = free_vars(&body, &f.frame);
        let names: Vec<_> = fv.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["x", "n", "outer"]);
    }

    #[test]
    fn canonical_loop_forms() {
        let (p, i) = func("void f(int n) { for (int i = 0; i < n; i++) ; }");
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let (info, _) = canonical_loop(&f.body.stmts[0]).unwrap();
        assert_eq!(info.var, "i");
        assert!(info.var_declared);
        assert_eq!(info.step, 1);
        assert!(!info.inclusive);
    }

    #[test]
    fn canonical_loop_downward_and_compound() {
        let (p, i) = func("void f(int n) { for (int i = n - 1; i >= 0; i -= 2) ; }");
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let (info, _) = canonical_loop(&f.body.stmts[0]).unwrap();
        assert_eq!(info.step, -2);
        assert!(info.inclusive);
    }

    #[test]
    fn collapse_nest_extraction() {
        let (p, i) =
            func("void f(int n, float *a) { for (int i = 0; i < n; i++) for (int j = 0; j < n; j++) a[i*n+j] = 0; }");
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let (loops, body) = canonical_nest(&f.body.stmts[0], 2).unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].var, "i");
        assert_eq!(loops[1].var, "j");
        assert!(matches!(body, Stmt::Expr(_)));
    }

    #[test]
    fn imperfect_nest_rejected() {
        let (p, i) = func(
            "void f(int n, float *a) { for (int i = 0; i < n; i++) { a[i] = 0; for (int j = 0; j < n; j++) a[j] = 1; } }",
        );
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        assert!(canonical_nest(&f.body.stmts[0], 2).is_err());
    }

    #[test]
    fn call_closure_transitive() {
        let src = r#"
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int unused(int x) { return x; }
void f(int *out) { out[0] = mid(3); }
"#;
        let (p, i) = func(src);
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        let body = Stmt::Block(f.body.clone());
        let names = call_closure(&body, &p);
        assert_eq!(names, ["leaf", "mid"]);
    }

    #[test]
    fn standalone_parallel_detection() {
        let (p, i) = func(
            "void f(int n, float *y) {\n#pragma omp target\n{\nint i;\n#pragma omp parallel for\nfor (i=0;i<n;i++) y[i]=0;\n}\n}",
        );
        let f = match &p.items[i] {
            Item::Func(f) => f,
            _ => panic!(),
        };
        if let Stmt::Omp(o) = &f.body.stmts[0] {
            assert!(contains_standalone_parallel(o.body.as_ref().unwrap()));
        } else {
            panic!();
        }
    }
}
