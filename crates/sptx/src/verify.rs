//! Module verifier — run after assembly or deserialization, and by the
//! compiler backend before emitting artifacts.

use crate::ir::*;

/// Verification failure.
#[derive(Clone, Debug)]
pub struct VerifyError {
    pub function: String,
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verify error in `{}`: {}", self.function, self.msg)
    }
}

impl std::error::Error for VerifyError {}

/// Maximum named barriers per block (PTX `bar.sync` limit, §4.2.2).
pub const MAX_NAMED_BARRIERS: i64 = 16;

/// Verify structural well-formedness of a module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        verify_function(m, f)?;
    }
    // Kernel names must be unique (the loader resolves by name).
    let mut names: Vec<&str> = m.functions.iter().map(|f| f.name.as_str()).collect();
    names.sort_unstable();
    for w in names.windows(2) {
        if w[0] == w[1] {
            return Err(VerifyError {
                function: w[0].to_string(),
                msg: "duplicate function name".into(),
            });
        }
    }
    Ok(())
}

fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError { function: f.name.clone(), msg };
    if (f.params.len() as u32) > f.num_regs {
        return Err(err(format!(
            "{} params but only {} registers (params live in the first registers)",
            f.params.len(),
            f.num_regs
        )));
    }
    check_nodes(m, f, &f.body, 0).map_err(err)?;
    Ok(())
}

fn check_operand(f: &Function, o: &Operand) -> Result<(), String> {
    if let Operand::Reg(Reg(n)) = o {
        if *n >= f.num_regs {
            return Err(format!("register %r{n} out of range (regs={})", f.num_regs));
        }
    }
    Ok(())
}

fn check_nodes(m: &Module, f: &Function, nodes: &[Node], loop_depth: u32) -> Result<(), String> {
    for n in nodes {
        match n {
            Node::Break | Node::Continue if loop_depth == 0 => {
                return Err("break/continue outside a loop".into());
            }
            Node::Break | Node::Continue => {}
            Node::If { cond, then_b, else_b } => {
                check_operand(f, cond)?;
                check_nodes(m, f, then_b, loop_depth)?;
                check_nodes(m, f, else_b, loop_depth)?;
            }
            Node::Loop { body } => check_nodes(m, f, body, loop_depth + 1)?,
            Node::Inst(i) => check_inst(m, f, i)?,
        }
    }
    Ok(())
}

fn check_inst(m: &Module, f: &Function, i: &Inst) -> Result<(), String> {
    let dst_ok = |r: &Reg| {
        if r.0 >= f.num_regs {
            Err(format!("destination %r{} out of range (regs={})", r.0, f.num_regs))
        } else {
            Ok(())
        }
    };
    match i {
        Inst::Bin { op, ty, dst, a, b } => {
            dst_ok(dst)?;
            check_operand(f, a)?;
            check_operand(f, b)?;
            if ty.is_float()
                && matches!(op, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr)
            {
                return Err(format!("bitwise {op:?} on float type"));
            }
            Ok(())
        }
        Inst::Un { dst, a, .. } => {
            dst_ok(dst)?;
            check_operand(f, a)
        }
        Inst::Mov { dst, src } => {
            dst_ok(dst)?;
            check_operand(f, src)
        }
        Inst::Cvt { dst, src, .. } => {
            dst_ok(dst)?;
            check_operand(f, src)
        }
        Inst::Ld { dst, addr, .. } => {
            dst_ok(dst)?;
            check_operand(f, addr)
        }
        Inst::St { src, addr, .. } => {
            check_operand(f, src)?;
            check_operand(f, addr)
        }
        Inst::AtomCas { dst, addr, expected, new } => {
            dst_ok(dst)?;
            check_operand(f, addr)?;
            check_operand(f, expected)?;
            check_operand(f, new)
        }
        Inst::Atom { dst, addr, val, .. } => {
            dst_ok(dst)?;
            check_operand(f, addr)?;
            check_operand(f, val)
        }
        Inst::BarSync { id, count } => {
            check_operand(f, id)?;
            if let Operand::ImmI(v) = id {
                if *v < 0 || *v >= MAX_NAMED_BARRIERS {
                    return Err(format!(
                        "named barrier id {v} out of range 0..{MAX_NAMED_BARRIERS}"
                    ));
                }
            }
            if let Some(c) = count {
                check_operand(f, c)?;
                if let Operand::ImmI(v) = c {
                    if *v <= 0 || *v % 32 != 0 {
                        return Err(format!(
                            "bar.sync count {v} must be a positive multiple of the warp size"
                        ));
                    }
                }
            }
            Ok(())
        }
        Inst::Call { func, dst, args } => {
            if *func as usize >= m.functions.len() {
                return Err(format!("call target {func} out of range"));
            }
            let callee = &m.functions[*func as usize];
            if callee.is_kernel {
                return Err(format!("call to kernel `{}` (kernels are entry points)", callee.name));
            }
            if args.len() != callee.params.len() {
                return Err(format!(
                    "call to `{}` with {} args (expects {})",
                    callee.name,
                    args.len(),
                    callee.params.len()
                ));
            }
            if let Some(d) = dst {
                dst_ok(d)?;
            }
            for a in args {
                check_operand(f, a)?;
            }
            Ok(())
        }
        Inst::Intrinsic { dst, args, .. } => {
            if let Some(d) = dst {
                dst_ok(d)?;
            }
            for a in args {
                check_operand(f, a)?;
            }
            Ok(())
        }
        Inst::Ret { val } => {
            if let Some(v) = val {
                check_operand(f, v)?;
            }
            Ok(())
        }
        Inst::Trap { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{op, FnBuilder};

    fn ok_module() -> Module {
        let mut b = FnBuilder::new("k", true);
        let p = b.param("p", ScalarTy::I64);
        let v = b.ld(MemTy::F32, op::r(p), 0);
        b.st(MemTy::F32, op::r(v), op::r(p), 0);
        Module {
            name: "m".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: false,
        }
    }

    #[test]
    fn valid_module_passes() {
        verify_module(&ok_module()).unwrap();
    }

    #[test]
    fn register_out_of_range() {
        let mut m = ok_module();
        m.functions[0]
            .body
            .insert(0, Node::Inst(Inst::Mov { dst: Reg(99), src: Operand::ImmI(0) }));
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn break_outside_loop() {
        let mut m = ok_module();
        m.functions[0].body.insert(0, Node::Break);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn bad_barrier_id_and_count() {
        let mut m = ok_module();
        m.functions[0]
            .body
            .insert(0, Node::Inst(Inst::BarSync { id: Operand::ImmI(16), count: None }));
        assert!(verify_module(&m).is_err());

        let mut m = ok_module();
        m.functions[0].body.insert(
            0,
            Node::Inst(Inst::BarSync { id: Operand::ImmI(1), count: Some(Operand::ImmI(33)) }),
        );
        assert!(verify_module(&m).is_err(), "non-multiple-of-32 count must be rejected");
    }

    #[test]
    fn call_arity_checked() {
        let mut helper = FnBuilder::new("h", false);
        helper.param("x", ScalarTy::I32);
        helper.ret(None);
        let mut k = FnBuilder::new("k", true);
        k.call(1, vec![], false); // wrong arity
        let m = Module {
            name: "m".into(),
            arch: "sm_53".into(),
            functions: vec![k.build(), helper.build()],
            device_lib_linked: false,
        };
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = ok_module();
        let f = m.functions[0].clone();
        m.functions.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn kernel_call_rejected() {
        let mut k2 = FnBuilder::new("other", true);
        k2.ret(None);
        let mut k = FnBuilder::new("k", true);
        k.call(1, vec![], false);
        let m = Module {
            name: "m".into(),
            arch: "sm_53".into(),
            functions: vec![k.build(), k2.build()],
            device_lib_linked: false,
        };
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn bitwise_on_float_rejected() {
        let mut b = FnBuilder::new("k", true);
        b.bin(ScalarTy::F32, BinOp::And, op::f(1.0), op::f(2.0));
        let m = Module {
            name: "m".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: false,
        };
        assert!(verify_module(&m).is_err());
    }
}
