//! Lexer for the mini-C dialect.
//!
//! `#pragma` lines are captured verbatim (with `\` line continuations) as
//! [`Tok::Pragma`] tokens; the parser re-lexes their payload to parse OpenMP
//! directives. `//` and `/* */` comments are skipped. Other preprocessor
//! lines (`#include`, `#define`) are not supported and produce an error —
//! benchmark sources parameterize through variables instead of macros.

use crate::token::{Pos, Tok, Token};

/// Lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub pos: Pos,
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'s> {
    src: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
    /// Set at start of each physical line until a non-space is consumed.
    at_line_start: bool,
}

/// Tokenize a full source text.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer { src: src.as_bytes(), i: 0, line: 1, col: 1, at_line_start: true };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let eof = t.tok == Tok::Eof;
        out.push(t);
        if eof {
            break;
        }
    }
    Ok(out)
}

/// Tokenize a pragma payload (no line-start semantics, no pragmas inside).
pub fn lex_fragment(src: &str) -> Result<Vec<Token>, LexError> {
    lex(src)
}

impl<'s> Lexer<'s> {
    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.i).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.i + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.i + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
            self.at_line_start = true;
        } else {
            self.col += 1;
        }
        c
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { pos: self.pos(), msg: msg.into() }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(LexError {
                                pos: start,
                                msg: "unterminated comment".into(),
                            });
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let c = self.peek();
        if c == 0 {
            return Ok(Token { tok: Tok::Eof, pos });
        }

        // Preprocessor line.
        if c == b'#' && self.at_line_start {
            self.bump();
            let mut text = String::new();
            loop {
                match self.peek() {
                    0 => break,
                    b'\\' if self.peek2() == b'\n' => {
                        self.bump();
                        self.bump();
                        text.push(' ');
                    }
                    b'\n' => break,
                    _ => text.push(self.bump() as char),
                }
            }
            let trimmed = text.trim();
            if let Some(rest) = trimmed.strip_prefix("pragma") {
                return Ok(Token { tok: Tok::Pragma(rest.trim().to_string()), pos });
            }
            return Err(LexError {
                pos,
                msg: format!(
                    "unsupported preprocessor directive: #{}",
                    trimmed.split_whitespace().next().unwrap_or("")
                ),
            });
        }
        self.at_line_start = false;

        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut s = String::new();
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                s.push(self.bump() as char);
            }
            let tok = Tok::keyword(&s).unwrap_or(Tok::Ident(s));
            return Ok(Token { tok, pos });
        }

        // Numbers.
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_ascii_digit()) {
            return self.lex_number(pos);
        }

        // String literal.
        if c == b'"' {
            self.bump();
            let mut s = String::new();
            loop {
                match self.peek() {
                    0 | b'\n' => return Err(self.err("unterminated string literal")),
                    b'"' => {
                        self.bump();
                        break;
                    }
                    b'\\' => {
                        self.bump();
                        s.push(self.escape()?);
                    }
                    _ => s.push(self.bump() as char),
                }
            }
            return Ok(Token { tok: Tok::StrLit(s), pos });
        }

        // Char literal.
        if c == b'\'' {
            self.bump();
            let v = match self.peek() {
                b'\\' => {
                    self.bump();
                    self.escape()? as i64
                }
                0 => return Err(self.err("unterminated char literal")),
                _ => self.bump() as i64,
            };
            if self.peek() != b'\'' {
                return Err(self.err("unterminated char literal"));
            }
            self.bump();
            return Ok(Token { tok: Tok::CharLit(v), pos });
        }

        // Operators / punctuation.
        macro_rules! two {
            ($second:expr, $two:expr, $one:expr) => {{
                self.bump();
                if self.peek() == $second {
                    self.bump();
                    $two
                } else {
                    $one
                }
            }};
        }
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'?' => {
                self.bump();
                Tok::Question
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'~' => {
                self.bump();
                Tok::Tilde
            }
            b'+' => {
                self.bump();
                match self.peek() {
                    b'+' => {
                        self.bump();
                        Tok::PlusPlus
                    }
                    b'=' => {
                        self.bump();
                        Tok::PlusAssign
                    }
                    _ => Tok::Plus,
                }
            }
            b'-' => {
                self.bump();
                match self.peek() {
                    b'-' => {
                        self.bump();
                        Tok::MinusMinus
                    }
                    b'=' => {
                        self.bump();
                        Tok::MinusAssign
                    }
                    b'>' => {
                        self.bump();
                        Tok::Arrow
                    }
                    _ => Tok::Minus,
                }
            }
            b'*' => two!(b'=', Tok::StarAssign, Tok::Star),
            b'/' => two!(b'=', Tok::SlashAssign, Tok::Slash),
            b'%' => two!(b'=', Tok::PercentAssign, Tok::Percent),
            b'^' => two!(b'=', Tok::CaretAssign, Tok::Caret),
            b'!' => two!(b'=', Tok::BangEq, Tok::Bang),
            b'=' => two!(b'=', Tok::EqEq, Tok::Assign),
            b'&' => {
                self.bump();
                match self.peek() {
                    b'&' => {
                        self.bump();
                        Tok::AmpAmp
                    }
                    b'=' => {
                        self.bump();
                        Tok::AmpAssign
                    }
                    _ => Tok::Amp,
                }
            }
            b'|' => {
                self.bump();
                match self.peek() {
                    b'|' => {
                        self.bump();
                        Tok::PipePipe
                    }
                    b'=' => {
                        self.bump();
                        Tok::PipeAssign
                    }
                    _ => Tok::Pipe,
                }
            }
            b'<' => {
                // `<<<` must win over `<<` for kernel launches.
                if self.peek2() == b'<' && self.peek3() == b'<' {
                    self.bump();
                    self.bump();
                    self.bump();
                    Tok::TripleLt
                } else {
                    self.bump();
                    match self.peek() {
                        b'<' => {
                            self.bump();
                            if self.peek() == b'=' {
                                self.bump();
                                Tok::ShlAssign
                            } else {
                                Tok::Shl
                            }
                        }
                        b'=' => {
                            self.bump();
                            Tok::Le
                        }
                        _ => Tok::Lt,
                    }
                }
            }
            b'>' => {
                if self.peek2() == b'>' && self.peek3() == b'>' {
                    self.bump();
                    self.bump();
                    self.bump();
                    Tok::TripleGt
                } else {
                    self.bump();
                    match self.peek() {
                        b'>' => {
                            self.bump();
                            if self.peek() == b'=' {
                                self.bump();
                                Tok::ShrAssign
                            } else {
                                Tok::Shr
                            }
                        }
                        b'=' => {
                            self.bump();
                            Tok::Ge
                        }
                        _ => Tok::Gt,
                    }
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Token { tok, pos })
    }

    fn escape(&mut self) -> Result<char, LexError> {
        Ok(match self.bump() {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'0' => '\0',
            b'\\' => '\\',
            b'\'' => '\'',
            b'"' => '"',
            other => return Err(self.err(format!("unknown escape \\{}", other as char))),
        })
    }

    fn lex_number(&mut self, pos: Pos) -> Result<Token, LexError> {
        let start = self.i;
        // Hex.
        if self.peek() == b'0' && (self.peek2() | 0x20) == b'x' {
            self.bump();
            self.bump();
            let hstart = self.i;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hstart..self.i]).unwrap();
            let v = i64::from_str_radix(text, 16).map_err(|_| self.err("bad hex literal"))?;
            while matches!(self.peek() | 0x20, b'u' | b'l') {
                self.bump();
            }
            return Ok(Token { tok: Tok::IntLit(v), pos });
        }
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if (self.peek() | 0x20) == b'e'
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-')
                    && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).unwrap().to_string();
        // Suffixes.
        let mut f32_suffix = false;
        loop {
            match self.peek() | 0x20 {
                b'f' => {
                    is_float = true;
                    f32_suffix = true;
                    self.bump();
                }
                b'u' | b'l' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            Ok(Token { tok: Tok::FloatLit(v, f32_suffix), pos })
        } else {
            let v: i64 = text.parse().map_err(|_| self.err("bad int literal"))?;
            Ok(Token { tok: Tok::IntLit(v), pos })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_keywords_numbers() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::IntLit(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
        assert_eq!(toks("1.5f")[0], Tok::FloatLit(1.5, true));
        assert_eq!(toks("2e3")[0], Tok::FloatLit(2000.0, false));
        assert_eq!(toks("0x1F")[0], Tok::IntLit(31));
        assert_eq!(toks("10UL")[0], Tok::IntLit(10));
    }

    #[test]
    fn pragma_capture_with_continuation() {
        let src = "#pragma omp target map(to: a) \\\n map(from: b)\nint x;";
        let ts = toks(src);
        match &ts[0] {
            Tok::Pragma(p) => {
                assert!(p.starts_with("omp target"));
                assert!(p.contains("map(from: b)"));
            }
            other => panic!("expected pragma, got {other:?}"),
        }
        assert_eq!(ts[1], Tok::KwInt);
    }

    #[test]
    fn triple_angle_brackets() {
        assert_eq!(
            toks("k<<<g,b>>>(x)"),
            vec![
                Tok::Ident("k".into()),
                Tok::TripleLt,
                Tok::Ident("g".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::TripleGt,
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Eof
            ]
        );
        // Plain shifts still work.
        assert_eq!(toks("a << b")[1], Tok::Shl);
        assert_eq!(toks("a >> b")[1], Tok::Shr);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("/* hi */ int // tail\n x;").len(), 4);
    }

    #[test]
    fn cuda_keywords() {
        assert_eq!(toks("__global__ void k();")[0], Tok::KwGlobal);
        assert_eq!(toks("__shared__ float s;")[0], Tok::KwShared);
    }

    #[test]
    fn string_and_char_literals() {
        assert_eq!(toks("\"a\\nb\"")[0], Tok::StrLit("a\nb".into()));
        assert_eq!(toks("'x'")[0], Tok::CharLit('x' as i64));
        assert_eq!(toks("'\\n'")[0], Tok::CharLit('\n' as i64));
    }

    #[test]
    fn include_is_rejected() {
        assert!(lex("#include <stdio.h>\n").is_err());
    }

    #[test]
    fn hash_mid_line_is_error() {
        assert!(lex("int x; # pragma").is_err());
    }
}
