//! Kernel launches: grid iteration, block execution (one OS thread per
//! warp), sampled simulation and the kernel time model.

use std::sync::atomic::{AtomicUsize, Ordering};

use vmcommon::sync::Mutex;

use crate::device::{Device, ExecError};
use crate::timing;
use crate::warp::{BlockCtx, BlockEnv, DeviceLib, Warp};

/// Launch configuration (grid/block shapes + kernel parameters as raw bit
/// patterns, exactly like `cuLaunchKernel`'s param buffer).
#[derive(Clone, Debug)]
pub struct LaunchConfig {
    pub grid: [u32; 3],
    pub block: [u32; 3],
    pub params: Vec<u64>,
}

/// A tiled launch window: run `cfg.grid` physical blocks as the slice of a
/// larger *logical* grid starting at (linear) team `team_base`. Each block
/// observes the logical grid as `%nctaid` and its absolute logical position
/// as `%ctaid`, so `cudadev_get_distribute_chunk` computes exactly the
/// chunk bounds the monolithic launch would — the memory governor relies
/// on this to keep tiled offloads bit-identical to untiled ones.
#[derive(Clone, Copy, Debug)]
pub struct TileView {
    /// Linear index (in the logical grid) of this tile's first block.
    pub team_base: u64,
    /// The full grid the kernel believes it was launched with.
    pub logical_grid: [u32; 3],
}

/// How much of the grid to actually simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute every block — full output correctness.
    Functional,
    /// Execute at most `max_blocks` evenly-spaced blocks and extrapolate
    /// the timing; output is only partially computed. (Documented
    /// substitution for full-scale runs; see DESIGN.md.)
    Sampled { max_blocks: u32 },
}

/// Per-launch results.
#[derive(Clone, Debug, Default)]
pub struct LaunchStats {
    pub blocks_total: u64,
    pub blocks_executed: u64,
    /// Extrapolated totals.
    pub issue_cycles: u64,
    pub mem_transactions: u64,
    pub lane_insts: u64,
    /// Slowest simulated block (latency cycles).
    pub max_block_cycles: u64,
    /// Modeled kernel duration in core cycles.
    pub kernel_cycles: u64,
    /// Modeled kernel duration in seconds (incl. launch overhead).
    pub time_s: f64,
    pub divergent_branches: u64,
    /// Blocks resident simultaneously on the SMM (occupancy).
    pub resident_blocks: u64,
    /// Waves the grid needs at that residency: `ceil(total / resident)`.
    pub waves: u64,
}

#[derive(Default)]
struct BlockAccum {
    issue: u64,
    transactions: u64,
    lane_insts: u64,
    divergent: u64,
    max_block_cycles: u64,
    executed: u64,
}

/// Launch a kernel on the device.
pub fn launch(
    device: &Device,
    module: &sptx::Module,
    kernel: &str,
    cfg: &LaunchConfig,
    lib: &dyn DeviceLib,
    mode: ExecMode,
) -> Result<LaunchStats, ExecError> {
    launch_view(device, module, kernel, cfg, lib, mode, None)
}

/// Launch `cfg.grid` blocks as a window of a larger logical grid (see
/// [`TileView`]).
pub fn launch_tiled(
    device: &Device,
    module: &sptx::Module,
    kernel: &str,
    cfg: &LaunchConfig,
    lib: &dyn DeviceLib,
    mode: ExecMode,
    tile: TileView,
) -> Result<LaunchStats, ExecError> {
    launch_view(device, module, kernel, cfg, lib, mode, Some(tile))
}

fn launch_view(
    device: &Device,
    module: &sptx::Module,
    kernel: &str,
    cfg: &LaunchConfig,
    lib: &dyn DeviceLib,
    mode: ExecMode,
    tile: Option<TileView>,
) -> Result<LaunchStats, ExecError> {
    device.fault_check(crate::fault::FaultSite::Launch)?;
    let kidx = module
        .function_index(kernel)
        .ok_or_else(|| ExecError::UnknownKernel(kernel.to_string()))?;
    let kfun = &module.functions[kidx as usize];
    if !kfun.is_kernel {
        return Err(ExecError::BadLaunch(format!("`{kernel}` is not a kernel entry point")));
    }
    if !module.device_lib_linked {
        return Err(ExecError::BadLaunch(format!(
            "module `{}` was not linked against the device library",
            module.name
        )));
    }
    if cfg.params.len() != kfun.params.len() {
        return Err(ExecError::BadLaunch(format!(
            "kernel `{kernel}` takes {} parameters, launch provided {}",
            kfun.params.len(),
            cfg.params.len()
        )));
    }
    let threads_per_block = cfg.block[0] as u64 * cfg.block[1] as u64 * cfg.block[2] as u64;
    if threads_per_block == 0 || threads_per_block > device.props.max_threads_per_block as u64 {
        return Err(ExecError::BadLaunch(format!(
            "block of {threads_per_block} threads (max {})",
            device.props.max_threads_per_block
        )));
    }
    if kfun.shared_size > device.props.shared_mem_per_block {
        return Err(ExecError::BadLaunch(format!(
            "kernel needs {} bytes of shared memory (max {})",
            kfun.shared_size, device.props.shared_mem_per_block
        )));
    }
    let blocks_total = cfg.grid[0] as u64 * cfg.grid[1] as u64 * cfg.grid[2] as u64;
    if blocks_total == 0 {
        return Err(ExecError::BadLaunch("empty grid".into()));
    }

    // Choose the blocks to simulate.
    let chosen: Vec<u64> = match mode {
        ExecMode::Functional => (0..blocks_total).collect(),
        ExecMode::Sampled { max_blocks } => {
            let max = max_blocks.max(1) as u64;
            if blocks_total <= max {
                (0..blocks_total).collect()
            } else {
                // Evenly spaced sample, always including the first and last
                // blocks (edge blocks often do boundary work).
                let mut v: Vec<u64> = (0..max).map(|i| i * blocks_total / max).collect();
                v.push(blocks_total - 1);
                v.dedup();
                v
            }
        }
    };

    let accum = Mutex::new(BlockAccum::default());
    let error: Mutex<Option<ExecError>> = Mutex::new(None);
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
        .min(chosen.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chosen.len() || error.lock().is_some() {
                    return;
                }
                let lin = chosen[i];
                match run_block(
                    device,
                    module,
                    kidx,
                    cfg,
                    lib,
                    lin,
                    threads_per_block as u32,
                    kfun.shared_size,
                    tile,
                ) {
                    Ok(b) => {
                        if let Some(t) = device.trace() {
                            // One complete event per simulated block. All
                            // start at the launch base — wave pipelining is
                            // summarized by the launch span, not re-modeled
                            // per block.
                            t.obs.tracer.complete(
                                t.pid,
                                BLOCK_TRACK_BASE + lin % BLOCK_TRACKS,
                                &format!("block {lin}"),
                                "block",
                                t.base_s,
                                b.max_block_cycles as f64 / device.props.clock_hz,
                                vec![
                                    ("cycles", b.max_block_cycles.into()),
                                    ("lane_insts", b.lane_insts.into()),
                                ],
                            );
                        }
                        let mut a = accum.lock();
                        a.issue += b.issue;
                        a.transactions += b.transactions;
                        a.lane_insts += b.lane_insts;
                        a.divergent += b.divergent;
                        a.max_block_cycles = a.max_block_cycles.max(b.max_block_cycles);
                        a.executed += 1;
                    }
                    Err(e) => {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let a = accum.into_inner();
    let executed = a.executed.max(1);
    let scale = blocks_total as f64 / executed as f64;

    let issue_total = (a.issue as f64 * scale) as u64;
    let transactions_total = (a.transactions as f64 * scale) as u64;
    let lane_insts_total = (a.lane_insts as f64 * scale) as u64;

    // Kernel time model (see `timing` module docs): the max of the issue
    // throughput bound, the DRAM bandwidth bound, and the wave-pipelined
    // critical path.
    let resident = timing::resident_blocks(threads_per_block as u32, kfun.shared_size) as u64;
    let waves = blocks_total.div_ceil(resident);
    let issue_bound = issue_total / timing::WARP_SCHEDULERS;
    let mem_bound = (transactions_total as f64 * timing::CYCLES_PER_TRANSACTION) as u64;
    let path_bound = a.max_block_cycles * waves;
    let kernel_cycles = issue_bound.max(mem_bound).max(path_bound).max(1);
    let time_s = timing::LAUNCH_OVERHEAD_S + kernel_cycles as f64 / device.props.clock_hz;

    {
        let mut st = device.stats.lock();
        st.kernels_launched += 1;
        st.blocks_total += blocks_total;
        st.blocks_simulated += a.executed;
        st.lane_insts += a.lane_insts;
        st.mem_transactions += a.transactions;
        st.busy_time_s += time_s;
    }

    Ok(LaunchStats {
        blocks_total,
        blocks_executed: a.executed,
        issue_cycles: issue_total,
        mem_transactions: transactions_total,
        lane_insts: lane_insts_total,
        max_block_cycles: a.max_block_cycles,
        kernel_cycles,
        time_s,
        divergent_branches: a.divergent,
        resident_blocks: resident,
        waves,
    })
}

/// Trace track (`tid`) layout within a device process: per-block events
/// round-robin over a bounded set of tracks above the per-warp tracks the
/// device library uses.
const BLOCK_TRACK_BASE: u64 = 64;
const BLOCK_TRACKS: u64 = 32;

struct BlockResult {
    issue: u64,
    transactions: u64,
    lane_insts: u64,
    divergent: u64,
    max_block_cycles: u64,
}

/// Outcome of running one block: `(cycles, dram_words, warp stats)`.
type BlockRunResult = Result<(u64, u64, crate::warp::WarpStats), ExecError>;

#[allow(clippy::too_many_arguments)]
fn run_block(
    device: &Device,
    module: &sptx::Module,
    kidx: u32,
    cfg: &LaunchConfig,
    lib: &dyn DeviceLib,
    lin_block: u64,
    nthreads: u32,
    shared_static: u64,
    tile: Option<TileView>,
) -> Result<BlockResult, ExecError> {
    // Under a tiled launch the block takes its identity (and the grid
    // shape it reports) from the logical grid, not the physical window.
    let logical_grid = tile.map_or(cfg.grid, |t| t.logical_grid);
    let lin_logical = tile.map_or(lin_block, |t| t.team_base + lin_block);
    let gx = logical_grid[0] as u64;
    let gy = logical_grid[1] as u64;
    let ctaid = [
        (lin_logical % gx) as u32,
        ((lin_logical / gx) % gy) as u32,
        (lin_logical / (gx * gy)) as u32,
    ];
    let env = BlockEnv {
        device,
        module,
        lib,
        ctx: BlockCtx::new(timing::SHARED_MEM_PER_BLOCK as usize),
        grid_dim: logical_grid,
        block_dim: cfg.block,
        ctaid,
        nthreads,
        shared_static,
    };
    // The device library's dynamic shared-memory stack starts above the
    // kernel's static allocation (slot convention shared with cudadev).
    env.ctx.ext[crate::SHMEM_SP_SLOT].store(shared_static, Ordering::Relaxed);

    let nwarps = nthreads.div_ceil(timing::WARP_SIZE);
    let results: Mutex<Vec<BlockRunResult>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..nwarps {
            let env = &env;
            let results = &results;
            scope.spawn(move || {
                let mut warp = Warp::new(env, w);
                let mask = warp.initial_mask();
                let r = warp.run_kernel(kidx, &cfg.params, mask);
                results.lock().push(r.map(|_| (warp.issue, warp.clock, warp.stats)));
            });
        }
    });

    let mut out =
        BlockResult { issue: 0, transactions: 0, lane_insts: 0, divergent: 0, max_block_cycles: 0 };
    for r in results.into_inner() {
        let (issue, clock, stats) = r?;
        out.issue += issue;
        out.transactions += stats.mem_transactions;
        out.lane_insts += stats.lane_insts;
        out.divergent += stats.divergent_branches;
        out.max_block_cycles = out.max_block_cycles.max(clock);
    }
    Ok(out)
}
