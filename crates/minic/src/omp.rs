//! OpenMP directive and clause representation.
//!
//! Directives are parsed from `#pragma omp …` lines by the parser. Combined
//! constructs are kept as distinct kinds because the translator lowers them
//! very differently (§3.1 vs §3.2 of the paper: combined constructs map
//! straight to a grid launch, stand-alone `parallel` regions go through the
//! master/worker scheme).

use crate::ast::Expr;

/// The directive name, including the combined forms we support.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirKind {
    Target,
    TargetData,
    TargetEnterData,
    TargetExitData,
    TargetUpdate,
    TargetTeams,
    TargetTeamsDistribute,
    TargetTeamsDistributeParallelFor,
    TargetParallel,
    TargetParallelFor,
    Teams,
    TeamsDistribute,
    TeamsDistributeParallelFor,
    Distribute,
    DistributeParallelFor,
    Parallel,
    ParallelFor,
    For,
    Sections,
    Section,
    Single,
    Master,
    Critical,
    Barrier,
    Taskwait,
    DeclareTarget,
    EndDeclareTarget,
}

impl DirKind {
    /// Directives that begin with `target` and (may) offload.
    pub fn is_target(&self) -> bool {
        matches!(
            self,
            DirKind::Target
                | DirKind::TargetTeams
                | DirKind::TargetTeamsDistribute
                | DirKind::TargetTeamsDistributeParallelFor
                | DirKind::TargetParallel
                | DirKind::TargetParallelFor
        )
    }

    /// Stand-alone directives with no associated statement.
    pub fn is_standalone(&self) -> bool {
        matches!(
            self,
            DirKind::Barrier
                | DirKind::Taskwait
                | DirKind::TargetEnterData
                | DirKind::TargetExitData
                | DirKind::TargetUpdate
                | DirKind::DeclareTarget
                | DirKind::EndDeclareTarget
        )
    }

    /// Whether the associated statement must be a `for` loop.
    pub fn needs_loop(&self) -> bool {
        matches!(
            self,
            DirKind::TargetTeamsDistribute
                | DirKind::TargetTeamsDistributeParallelFor
                | DirKind::TargetParallelFor
                | DirKind::TeamsDistribute
                | DirKind::TeamsDistributeParallelFor
                | DirKind::Distribute
                | DirKind::DistributeParallelFor
                | DirKind::ParallelFor
                | DirKind::For
        )
    }

    /// The canonical spelling.
    pub fn spelling(&self) -> &'static str {
        match self {
            DirKind::Target => "target",
            DirKind::TargetData => "target data",
            DirKind::TargetEnterData => "target enter data",
            DirKind::TargetExitData => "target exit data",
            DirKind::TargetUpdate => "target update",
            DirKind::TargetTeams => "target teams",
            DirKind::TargetTeamsDistribute => "target teams distribute",
            DirKind::TargetTeamsDistributeParallelFor => "target teams distribute parallel for",
            DirKind::TargetParallel => "target parallel",
            DirKind::TargetParallelFor => "target parallel for",
            DirKind::Teams => "teams",
            DirKind::TeamsDistribute => "teams distribute",
            DirKind::TeamsDistributeParallelFor => "teams distribute parallel for",
            DirKind::Distribute => "distribute",
            DirKind::DistributeParallelFor => "distribute parallel for",
            DirKind::Parallel => "parallel",
            DirKind::ParallelFor => "parallel for",
            DirKind::For => "for",
            DirKind::Sections => "sections",
            DirKind::Section => "section",
            DirKind::Single => "single",
            DirKind::Master => "master",
            DirKind::Critical => "critical",
            DirKind::Barrier => "barrier",
            DirKind::Taskwait => "taskwait",
            DirKind::DeclareTarget => "declare target",
            DirKind::EndDeclareTarget => "end declare target",
        }
    }
}

/// Map kinds for `map(...)` clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    To,
    From,
    ToFrom,
    Alloc,
    /// `release` on `target exit data`.
    Release,
    /// `delete` on `target exit data`.
    Delete,
}

impl MapKind {
    pub fn spelling(&self) -> &'static str {
        match self {
            MapKind::To => "to",
            MapKind::From => "from",
            MapKind::ToFrom => "tofrom",
            MapKind::Alloc => "alloc",
            MapKind::Release => "release",
            MapKind::Delete => "delete",
        }
    }
}

/// `x[lower : length]`; both parts optional (`x[:n]`, `x[0:]`).
#[derive(Clone, Debug)]
pub struct ArraySection {
    pub lower: Option<Expr>,
    pub length: Option<Expr>,
}

/// One item in a map/motion clause: a variable with optional array sections.
#[derive(Clone, Debug)]
pub struct MapItem {
    pub name: String,
    pub sections: Vec<ArraySection>,
}

/// Loop schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    Static,
    Dynamic,
    Guided,
}

impl SchedKind {
    pub fn spelling(&self) -> &'static str {
        match self {
            SchedKind::Static => "static",
            SchedKind::Dynamic => "dynamic",
            SchedKind::Guided => "guided",
        }
    }
}

/// Reduction operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedOp {
    Add,
    Mul,
    Max,
    Min,
}

impl RedOp {
    pub fn spelling(&self) -> &'static str {
        match self {
            RedOp::Add => "+",
            RedOp::Mul => "*",
            RedOp::Max => "max",
            RedOp::Min => "min",
        }
    }
}

/// `default(...)` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefaultKind {
    Shared,
    None,
}

/// A directive clause.
#[derive(Clone, Debug)]
pub enum Clause {
    Map {
        kind: MapKind,
        items: Vec<MapItem>,
    },
    NumTeams(Expr),
    NumThreads(Expr),
    ThreadLimit(Expr),
    Collapse(u32),
    Schedule {
        kind: SchedKind,
        chunk: Option<Expr>,
    },
    Private(Vec<String>),
    FirstPrivate(Vec<String>),
    Shared(Vec<String>),
    Default(DefaultKind),
    Reduction {
        op: RedOp,
        vars: Vec<String>,
    },
    If(Expr),
    Device(Expr),
    Nowait,
    /// `to(...)` on `target update`.
    UpdateTo(Vec<MapItem>),
    /// `from(...)` on `target update`.
    UpdateFrom(Vec<MapItem>),
    /// Critical-section name: `critical(name)`.
    Name(String),
}

/// A parsed directive.
#[derive(Clone, Debug)]
pub struct Directive {
    pub kind: DirKind,
    pub clauses: Vec<Clause>,
}

impl Directive {
    pub fn clause_num_teams(&self) -> Option<&Expr> {
        self.clauses.iter().find_map(|c| match c {
            Clause::NumTeams(e) => Some(e),
            _ => None,
        })
    }

    pub fn clause_num_threads(&self) -> Option<&Expr> {
        self.clauses.iter().find_map(|c| match c {
            Clause::NumThreads(e) => Some(e),
            _ => None,
        })
    }

    pub fn clause_thread_limit(&self) -> Option<&Expr> {
        self.clauses.iter().find_map(|c| match c {
            Clause::ThreadLimit(e) => Some(e),
            _ => None,
        })
    }

    pub fn clause_collapse(&self) -> u32 {
        self.clauses
            .iter()
            .find_map(|c| match c {
                Clause::Collapse(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1)
    }

    pub fn clause_schedule(&self) -> Option<(SchedKind, Option<&Expr>)> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Schedule { kind, chunk } => Some((*kind, chunk.as_ref())),
            _ => None,
        })
    }

    pub fn clause_nowait(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::Nowait))
    }

    pub fn clause_if(&self) -> Option<&Expr> {
        self.clauses.iter().find_map(|c| match c {
            Clause::If(e) => Some(e),
            _ => None,
        })
    }

    pub fn clause_device(&self) -> Option<&Expr> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Device(e) => Some(e),
            _ => None,
        })
    }

    pub fn maps(&self) -> impl Iterator<Item = (MapKind, &MapItem)> {
        self.clauses.iter().flat_map(|c| match c {
            Clause::Map { kind, items } => items.iter().map(|i| (*kind, i)).collect::<Vec<_>>(),
            _ => Vec::new(),
        })
    }

    pub fn reductions(&self) -> impl Iterator<Item = (RedOp, &String)> {
        self.clauses.iter().flat_map(|c| match c {
            Clause::Reduction { op, vars } => vars.iter().map(|v| (*op, v)).collect::<Vec<_>>(),
            _ => Vec::new(),
        })
    }

    pub fn privates(&self) -> Vec<&String> {
        self.clauses
            .iter()
            .flat_map(|c| match c {
                Clause::Private(v) => v.iter().collect::<Vec<_>>(),
                _ => Vec::new(),
            })
            .collect()
    }

    pub fn firstprivates(&self) -> Vec<&String> {
        self.clauses
            .iter()
            .flat_map(|c| match c {
                Clause::FirstPrivate(v) => v.iter().collect::<Vec<_>>(),
                _ => Vec::new(),
            })
            .collect()
    }
}
