//! Differential test: every OpenMP program must produce the same result
//! when (a) translated + offloaded to the simulated GPU and (b) executed
//! directly by the interpreter, which ignores directives (a legal
//! 1-thread OpenMP execution).

use minic::interp::{Interp, Machine, NoHooks};
use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};
use std::sync::Arc;

fn both(src: &str, tag: &str) -> (Value, Value) {
    // Sequential-semantics run.
    let m = Machine::from_source(src).unwrap();
    let mut seq = Interp::new(m, Arc::new(NoHooks)).unwrap();
    let seq_v = seq.run_main().unwrap();
    // Offloaded run.
    let dir = std::env::temp_dir().join(format!("ompinano-diff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = Ompicc::new(&dir).compile(src).unwrap();
    let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
    let omp_v = runner.run_main().unwrap();
    (seq_v, omp_v)
}

#[test]
fn stencil_1d() {
    let src = r#"
int main() {
    int n = 512;
    float a[512];
    float b[512];
    for (int i = 0; i < n; i++) { a[i] = (float) (i % 17); b[i] = 0.0f; }
    #pragma omp target teams distribute parallel for map(to: a[0:n]) map(tofrom: b[0:n])
    for (int i = 1; i < n - 1; i++)
        b[i] = 0.25f * a[i - 1] + 0.5f * a[i] + 0.25f * a[i + 1];
    float sum = 0.0f;
    for (int i = 0; i < n; i++) sum += b[i];
    return (int) sum;
}
"#;
    let (s, o) = both(src, "stencil");
    assert_eq!(s, o);
}

#[test]
fn integer_histogram_with_atomics() {
    let src = r#"
int main() {
    int n = 2048;
    int hist[16];
    int data[2048];
    for (int i = 0; i < 16; i++) hist[i] = 0;
    for (int i = 0; i < n; i++) data[i] = (i * 7 + 3) % 16;
    #pragma omp target map(to: data[0:n]) map(tofrom: hist[0:16])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            #pragma omp critical
            { hist[data[i]] = hist[data[i]] + 1; }
        }
    }
    int total = 0;
    for (int i = 0; i < 16; i++) total += hist[i];
    return total;
}
"#;
    let (s, o) = both(src, "hist");
    assert_eq!(s, o);
    assert_eq!(s, Value::I32(2048));
}

#[test]
fn nested_loops_collapse3() {
    let src = r#"
int main() {
    int n = 12;
    float v[12 * 12 * 12];
    for (int i = 0; i < n * n * n; i++) v[i] = 1.0f;
    #pragma omp target teams distribute parallel for collapse(3) map(tofrom: v[0:n*n*n])
    for (int i = 0; i < 12; i++)
        for (int j = 0; j < 12; j++)
            for (int k = 0; k < 12; k++)
                v[i * 144 + j * 12 + k] = (float) (i + j + k);
    float sum = 0.0f;
    for (int i = 0; i < n * n * n; i++) sum += v[i];
    return (int) sum;
}
"#;
    let (s, o) = both(src, "collapse3");
    assert_eq!(s, o);
}

#[test]
fn downward_loop() {
    let src = r#"
int main() {
    int n = 100;
    int v[100];
    for (int i = 0; i < n; i++) v[i] = 0;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = n - 1; i >= 0; i -= 2)
        v[i] = i;
    int sum = 0;
    for (int i = 0; i < n; i++) sum += v[i];
    return sum;
}
"#;
    let (s, o) = both(src, "downward");
    assert_eq!(s, o);
}
