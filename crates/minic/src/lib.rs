//! `minic` — the C-subset frontend of the OMPi reproduction.
//!
//! Provides the lexer, parser, OpenMP directive representation, semantic
//! analysis, pretty-printer and a thread-safe executor for *host* programs
//! (a register bytecode VM, plus the original tree-walking interpreter as
//! a differential-test oracle). The dialect covers the C that the paper's
//! benchmark suite and the OMPi-generated code need:
//!
//! * scalar types `char`/`int`/`long`/`float`/`double`, pointers, multi-dim
//!   arrays (constant and VLA-parameter extents), full declarator syntax
//!   including pointer-to-array (`int (*x)[96]`, as in the paper's Fig. 3);
//! * all of C's statement and expression forms used by Polybench-style code;
//! * `#pragma omp` directives (target/teams/distribute/parallel/for and the
//!   combined forms, data-environment directives, worksharing and
//!   synchronization constructs);
//! * the CUDA dialect for kernel files: `__global__`/`__device__`/
//!   `__shared__`, `threadIdx`/`blockIdx`/`blockDim`/`gridDim`, `dim3` and
//!   `kernel<<<grid, block>>>(…)` launches.

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod fuzzgen;
pub mod interp;
pub mod lexer;
pub mod limits;
pub mod omp;
pub mod parser;
pub mod pretty;
pub mod rt;
pub mod sema;
pub mod token;
pub mod types;
pub mod vm;
pub mod walker;

pub use ast::{Expr, ExprKind, FuncDef, Item, Program, Stmt};
pub use parser::{parse, ParseError};
pub use sema::{analyze, ProgramInfo, SemaError};
pub use types::Ty;
