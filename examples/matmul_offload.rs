//! gemm through the recommended combined construct, OMPi vs. hand-written
//! CUDA, at a configurable size (default 256).
//!
//!     cargo run --release --example matmul_offload [-- <size>]

use gpusim::ExecMode;
use unibench::{app_by_name, build_variant, measure, Variant};

fn main() {
    let n: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let app = app_by_name("gemm").unwrap();
    let work = std::env::temp_dir().join("ompi-example-matmul");
    println!("gemm n={n} on the simulated Jetson Nano (sampled grid)");
    for variant in [Variant::Cuda, Variant::OmpiCudadev] {
        let built =
            build_variant(&app, variant, n, ExecMode::Sampled { max_blocks: 8 }, false, &work);
        let m = measure(&app, &built, n);
        println!(
            "  {:<14} {:>10.6}s  (kernels {:.6}s, memcpy {:.6}s, {} launches)",
            variant.label(),
            m.time_s,
            m.kernel_s,
            m.memcpy_s,
            m.launches
        );
    }
}
