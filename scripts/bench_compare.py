#!/usr/bin/env python3
"""Compare a fresh BENCH_fig4.json against the committed baseline.

Usage: bench_compare.py BASELINE CURRENT [--max-ratio R]

Three gates, per (app, variant, n) series point present in both files:

* **checksum** — must match bit-exactly. The guest programs are
  deterministic IEEE-754, so checksums are machine-independent; any
  drift means an execution-semantics change, not noise.
* **vm_instructions** — must match bit-exactly. The instruction count is
  a deterministic function of the guest program and the emitted op
  stream; drift means the compiler changed what it emits (or the VM
  changed how it counts), which is a semantics-facing change that must
  be a deliberate baseline update, never an accident.
* **wall clock** — `wall_s` may not exceed `max-ratio` (default 2.0)
  times the baseline. Only `host-seq` rows are gated: they measure raw
  engine throughput, while device rows are dominated by the simulator
  and carry more scheduling noise. Absolute times differ across
  machines; the 2x headroom absorbs that, and sustained regressions
  (e.g. the VM silently falling back to the tree-walker) blow well
  past it.

Exit status 0 = pass, 1 = regression, 2 = usage/shape error.
"""

import json
import sys


def key(row):
    return (row["app"], row["variant"], row["n"])


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    max_ratio = 2.0
    if "--max-ratio" in argv:
        max_ratio = float(argv[argv.index("--max-ratio") + 1])
    with open(argv[1]) as f:
        base = {key(r): r for r in json.load(f)["series"]}
    with open(argv[2]) as f:
        cur = json.load(f)
    if cur.get("schema") != "ompi-nano/fig4/v1":
        print(f"unexpected schema: {cur.get('schema')}", file=sys.stderr)
        return 2

    failures = []
    compared = 0
    for row in cur["series"]:
        b = base.get(key(row))
        if b is None:
            continue
        compared += 1
        tag = "{}/{}/n={}".format(*key(row))
        if row["checksum"] != b["checksum"]:
            failures.append(
                f"{tag}: checksum {row['checksum']} != baseline {b['checksum']}"
            )
        if "vm_instructions" in row and "vm_instructions" in b:
            if row["vm_instructions"] != b["vm_instructions"]:
                failures.append(
                    f"{tag}: vm_instructions {row['vm_instructions']} != baseline "
                    f"{b['vm_instructions']} "
                    f"(drift {row['vm_instructions'] - b['vm_instructions']:+d}; "
                    "instruction counts are bit-deterministic — an intentional "
                    "compiler change needs a baseline refresh)"
                )
        if row["variant"] == "host-seq" and b["wall_s"] > 0:
            ratio = row["wall_s"] / b["wall_s"]
            mark = " REGRESSION" if ratio > max_ratio else ""
            print(
                f"{tag}: wall {row['wall_s']:.3f}s vs baseline "
                f"{b['wall_s']:.3f}s ({ratio:.2f}x){mark}"
            )
            if ratio > max_ratio:
                failures.append(f"{tag}: {ratio:.2f}x > {max_ratio}x wall-clock budget")
    if compared == 0:
        print("no comparable series points between baseline and current", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} series points within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
