//! The register bytecode VM — the production host executor.
//!
//! Executes [`crate::bytecode::CompiledProgram`] images produced by
//! [`crate::compile`]. Semantics are bit-identical to the tree-walking
//! oracle ([`crate::walker`]): every arithmetic step goes through the
//! shared [`crate::rt`] helpers, typed memory access replicates the
//! walker's `load_typed`/`store_typed` byte-for-byte, and trap conditions
//! carry the walker's exact messages. Only dispatch cost differs.
//!
//! Execution model: one `Value` register window per guest call (the
//! compiler pre-resolves scalar locals into window slots), a guest-memory
//! stack frame identical to the walker's for address-taken and aggregate
//! locals, and guest-to-guest calls on an explicit [`Frame`] stack —
//! guest recursion must not consume host stack, whose debug-build frames
//! would overflow well before the guest's configurable frame limit
//! (`OMPI_GUEST_STACK`, default 200). Dispatch and
//! instruction counts accumulate locally and flush to the machine's
//! atomic counters when the top-level call returns (see `obs`'s `vm.*`
//! metrics).

use std::sync::Arc;

use vmcommon::addr::{self, Space};
use vmcommon::{MemArena, MemError, Value};

use crate::ast::BinOp;
use crate::bytecode::{CompiledProgram, Op, ParamSpec, TyK};
use crate::interp::{HookCtx, Hooks, IResult, InterpError, Machine, STACK_SIZE};
use crate::limits::{GuestLimitError, FUEL_CHECK_INTERVAL};
use crate::rt;

/// An execution context: one per OS thread, with its own guest stack.
pub struct Vm {
    machine: Arc<Machine>,
    hooks: Arc<dyn Hooks>,
    stack_block: u64,
    sp: u64,
    depth: u32,
    /// Instructions retired since the last flush.
    instructions: u64,
    /// Instructions since the last fuel/deadline checkpoint; billed to the
    /// machine's fuel pool every [`FUEL_CHECK_INTERVAL`] ops and drained
    /// (without trapping) at flush.
    unbilled: u64,
    /// Dispatch counts by [`crate::bytecode::OpCat`].
    dispatch: [u64; 6],
    /// Attribute dispatch to source lines (snapshot of the machine flag;
    /// one predictable branch per op when off).
    hot: bool,
    /// Per-chunk, per-pc hit counts (allocated lazily per chunk entered).
    pc_hits: Vec<Vec<u64>>,
}

impl Vm {
    /// Create a VM with a fresh guest stack. Compiles the program and runs
    /// global initializers on first creation per machine.
    pub fn new(machine: Arc<Machine>, hooks: Arc<dyn Hooks>) -> IResult<Vm> {
        let stack_block = machine.heap.lock().alloc(STACK_SIZE)?;
        let hot = machine.hotspots_enabled();
        let mut vm = Vm {
            machine,
            hooks,
            stack_block,
            sp: stack_block,
            depth: 0,
            instructions: 0,
            unbilled: 0,
            dispatch: [0; 6],
            hot,
            pc_hits: Vec::new(),
        };
        vm.init_globals_once()?;
        Ok(vm)
    }

    fn init_globals_once(&mut self) -> IResult<()> {
        if self.machine.globals_ready.swap(true, std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        let machine = self.machine.clone();
        let prog = machine.compiled();
        if let Some(idx) = prog.init_chunk {
            let r = self.call_chunk(prog, idx, &[]);
            self.flush_counters();
            r?;
        }
        Ok(())
    }

    /// Run `main` (or any entry) with no arguments.
    pub fn run_main(&mut self) -> IResult<Value> {
        self.call("main", &[])
    }

    /// Call a guest function by name.
    pub fn call(&mut self, name: &str, args: &[Value]) -> IResult<Value> {
        let machine = self.machine.clone();
        let prog = machine.compiled();
        let idx = match prog.fn_chunk.get(name) {
            Some(&i) => i,
            None => return Err(InterpError::Trap(format!("undefined function `{name}`"))),
        };
        let r = self.call_chunk(prog, idx, args);
        self.flush_counters();
        r
    }

    fn flush_counters(&mut self) {
        // Bill the partial fuel interval without trapping: a drained pool
        // then traps at the first checkpoint of the next call.
        self.machine.limits.drain_fuel(self.unbilled);
        self.unbilled = 0;
        if self.instructions != 0 {
            self.machine.add_vm_counters(self.instructions, &self.dispatch);
            self.instructions = 0;
            self.dispatch = [0; 6];
        }
        if self.hot {
            for (chunk, hits) in self.pc_hits.iter_mut().enumerate() {
                if hits.iter().any(|&n| n != 0) {
                    self.machine.add_line_hits(chunk as u32, hits);
                    hits.iter_mut().for_each(|n| *n = 0);
                }
            }
        }
    }

    fn call_chunk(&mut self, prog: &CompiledProgram, idx: u32, args: &[Value]) -> IResult<Value> {
        // An error abandons every frame entered since this call (guest
        // state is about to be reported broken anyway) — restore the
        // stack pointer and depth wholesale.
        let (sp0, depth0) = (self.sp, self.depth);
        let r = self.run(prog, idx, args);
        if r.is_err() {
            self.sp = sp0;
            self.depth = depth0;
        }
        r
    }

    /// Enter a guest frame: checks, guest-stack reservation, register
    /// window setup, parameter binding. On error the caller unwinds
    /// `sp`/`depth` (see `call_chunk`).
    fn new_frame(
        &mut self,
        prog: &CompiledProgram,
        idx: u32,
        args: &[Value],
        ret_dst: u16,
    ) -> IResult<Frame> {
        // Same order as the walker's `call_def`: depth first, then argc,
        // then the hard stack block, then the governor's byte ceiling.
        let stack_limit = self.machine.limits.stack_limit();
        if self.depth > stack_limit {
            return Err(GuestLimitError::StackOverflow { limit: stack_limit }.into());
        }
        let chunk = &prog.chunks[idx as usize];
        if args.len() != chunk.params.len() {
            return Err(InterpError::Trap(format!(
                "call to `{}` with {} args (expected {})",
                chunk.name,
                args.len(),
                chunk.params.len()
            )));
        }
        let saved_sp = self.sp;
        let base = self.sp.next_multiple_of(16);
        if base + chunk.frame_size > self.stack_block + STACK_SIZE {
            return Err(InterpError::Trap("guest stack exhausted".into()));
        }
        // Stack usage derives from `sp`, so unwinding needs no credits;
        // identical frame layouts keep this check engine-agnostic.
        self.machine.limits.check_footprint(base + chunk.frame_size - self.stack_block)?;
        self.sp = base + chunk.frame_size;
        self.depth += 1;

        let mut regs: Vec<Value> = vec![Value::I32(0); chunk.nregs as usize];
        for &(r, ty) in &chunk.zero_init {
            regs[r as usize] = zero_k(ty);
        }
        for (spec, v) in chunk.params.iter().zip(args) {
            match spec {
                ParamSpec::Reg { reg, ty } => regs[*reg as usize] = convert_k(*v, *ty),
                ParamSpec::Mem { off, ty } => {
                    let a = addr::make(Space::Host, addr::offset(base) + *off as u64);
                    store_k(&self.machine, a, *ty, *v)?;
                }
            }
        }
        Ok(Frame { chunk: idx, pc: 0, base, saved_sp, ret_dst, regs })
    }

    /// The dispatch loop, over an explicit guest call stack.
    fn run(&mut self, prog: &CompiledProgram, idx: u32, args: &[Value]) -> IResult<Value> {
        let mut frames: Vec<Frame> = Vec::new();
        let mut cur = self.new_frame(prog, idx, args, 0)?;
        let machine = self.machine.clone();
        let mem = &machine.mem;
        'frame: loop {
            let ci = cur.chunk as usize;
            let chunk = &prog.chunks[ci];
            let code = &chunk.code;
            if self.hot {
                if self.pc_hits.len() < prog.chunks.len() {
                    self.pc_hits.resize(prog.chunks.len(), Vec::new());
                }
                if self.pc_hits[ci].len() < code.len() {
                    self.pc_hits[ci] = vec![0; code.len()];
                }
            }
            let frame_off = addr::offset(cur.base);
            let mut pc = cur.pc;
            let regs = &mut cur.regs;
            loop {
                let op = &code[pc];
                self.instructions += 1;
                self.dispatch[op.cat() as usize] += 1;
                self.unbilled += 1;
                if self.unbilled >= FUEL_CHECK_INTERVAL {
                    machine.limits.checkpoint(self.unbilled)?;
                    self.unbilled = 0;
                }
                if self.hot {
                    self.pc_hits[ci][pc] += 1;
                }
                match op {
                    Op::Const { dst, idx } => {
                        regs[*dst as usize] = prog.consts[*idx as usize];
                    }
                    Op::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
                    Op::Conv { dst, src, ty } => {
                        regs[*dst as usize] = convert_k(regs[*src as usize], *ty);
                    }
                    Op::FrameAddr { dst, off } => {
                        regs[*dst as usize] =
                            Value::Ptr(addr::make(Space::Host, frame_off + *off as u64));
                    }
                    Op::LoadSlot { dst, off, ty } => {
                        regs[*dst as usize] = load_arena(mem, frame_off + *off as u64, *ty)?;
                    }
                    Op::StoreSlot { off, src, ty } => {
                        store_arena(mem, frame_off + *off as u64, *ty, regs[*src as usize])?;
                    }
                    Op::LoadAbs { dst, at, ty } => {
                        let a = prog.consts[*at as usize].as_ptr();
                        regs[*dst as usize] = load_k(&machine, a, *ty)?;
                    }
                    Op::StoreAbs { at, src, ty } => {
                        let a = prog.consts[*at as usize].as_ptr();
                        store_k(&self.machine, a, *ty, regs[*src as usize])?;
                    }
                    Op::Load { dst, addr, off, ty } => {
                        let p = regs[*addr as usize].as_ptr();
                        if p == 0 {
                            return Err(InterpError::Mem(MemError::Null));
                        }
                        regs[*dst as usize] = load_k(&machine, p + *off as u64, *ty)?;
                    }
                    Op::Store { addr, off, src, ty } => {
                        let p = regs[*addr as usize].as_ptr();
                        if p == 0 {
                            return Err(InterpError::Mem(MemError::Null));
                        }
                        store_k(&machine, p + *off as u64, *ty, regs[*src as usize])?;
                    }
                    Op::LoadIdx { dst, base, idx, stride, ty } => {
                        let a =
                            idx_addr(regs[*base as usize], regs[*idx as usize], *stride as u64)?;
                        regs[*dst as usize] = load_k(&machine, a, *ty)?;
                    }
                    Op::StoreIdx { base, idx, stride, src, ty } => {
                        let a =
                            idx_addr(regs[*base as usize], regs[*idx as usize], *stride as u64)?;
                        store_k(&self.machine, a, *ty, regs[*src as usize])?;
                    }
                    Op::AddrIdx { dst, base, idx, stride } => {
                        let a =
                            idx_addr(regs[*base as usize], regs[*idx as usize], *stride as u64)?;
                        regs[*dst as usize] = Value::Ptr(a);
                    }
                    Op::LoadIdxD { dst, base, idx, stride, ty } => {
                        let s = regs[*stride as usize].as_i64() as u64;
                        let a = idx_addr(regs[*base as usize], regs[*idx as usize], s)?;
                        regs[*dst as usize] = load_k(&machine, a, *ty)?;
                    }
                    Op::StoreIdxD { base, idx, stride, src, ty } => {
                        let s = regs[*stride as usize].as_i64() as u64;
                        let a = idx_addr(regs[*base as usize], regs[*idx as usize], s)?;
                        store_k(&self.machine, a, *ty, regs[*src as usize])?;
                    }
                    Op::AddrIdxD { dst, base, idx, stride } => {
                        let s = regs[*stride as usize].as_i64() as u64;
                        let a = idx_addr(regs[*base as usize], regs[*idx as usize], s)?;
                        regs[*dst as usize] = Value::Ptr(a);
                    }
                    Op::ChkNull { src } => {
                        if regs[*src as usize].as_ptr() == 0 {
                            return Err(InterpError::Mem(MemError::Null));
                        }
                    }
                    Op::Stride { dst, extent, elem } => {
                        let n = regs[*extent as usize].as_i64();
                        if n < 0 {
                            return Err(InterpError::Trap("negative VLA extent".into()));
                        }
                        regs[*dst as usize] = Value::I64((*elem as u64 * n as u64) as i64);
                    }
                    Op::StrideD { dst, extent, elem } => {
                        let n = regs[*extent as usize].as_i64();
                        if n < 0 {
                            return Err(InterpError::Trap("negative VLA extent".into()));
                        }
                        let e = regs[*elem as usize].as_i64() as u64;
                        regs[*dst as usize] = Value::I64((e * n as u64) as i64);
                    }
                    Op::Bin { op, dst, a, b, stride } => {
                        regs[*dst as usize] = rt::apply_binop(
                            *op,
                            regs[*a as usize],
                            *stride as u64,
                            regs[*b as usize],
                        )?;
                    }
                    Op::BinD { op, dst, a, b, stride } => {
                        let s = regs[*stride as usize].as_i64() as u64;
                        regs[*dst as usize] =
                            rt::apply_binop(*op, regs[*a as usize], s, regs[*b as usize])?;
                    }
                    Op::PtrDiff { dst, a, b, stride } => {
                        let s = (*stride as u64).max(1);
                        let d =
                            regs[*a as usize].as_ptr() as i64 - regs[*b as usize].as_ptr() as i64;
                        regs[*dst as usize] = Value::I64(d / s as i64);
                    }
                    Op::PtrDiffD { dst, a, b, stride } => {
                        let s = (regs[*stride as usize].as_i64() as u64).max(1);
                        let d =
                            regs[*a as usize].as_ptr() as i64 - regs[*b as usize].as_ptr() as i64;
                        regs[*dst as usize] = Value::I64(d / s as i64);
                    }
                    Op::FmaAssign { dst, a, b, ty } => {
                        // Exactly the walker's compound-assign: rhs product,
                        // then accumulate, then convert — two rounding steps.
                        let t =
                            rt::apply_binop(BinOp::Mul, regs[*a as usize], 1, regs[*b as usize])?;
                        let s = rt::apply_binop(BinOp::Add, regs[*dst as usize], 1, t)?;
                        regs[*dst as usize] = convert_k(s, *ty);
                    }
                    Op::Neg { dst, src } => {
                        regs[*dst as usize] = match regs[*src as usize] {
                            Value::I32(v) => Value::I32(v.wrapping_neg()),
                            Value::I64(v) => Value::I64(v.wrapping_neg()),
                            Value::F32(v) => Value::F32(-v),
                            Value::F64(v) => Value::F64(-v),
                            Value::Ptr(v) => Value::I64(-(v as i64)),
                        };
                    }
                    Op::NotL { dst, src } => {
                        regs[*dst as usize] = Value::I32(!regs[*src as usize].is_truthy() as i32);
                    }
                    Op::BitNot { dst, src } => {
                        regs[*dst as usize] = match regs[*src as usize] {
                            Value::I64(v) => Value::I64(!v),
                            v => Value::I32(!v.as_i32()),
                        };
                    }
                    Op::Truth { dst, src } => {
                        regs[*dst as usize] = Value::I32(regs[*src as usize].is_truthy() as i32);
                    }
                    Op::Jmp { to } => {
                        pc = *to as usize;
                        continue;
                    }
                    Op::Jz { cond, to } => {
                        if !regs[*cond as usize].is_truthy() {
                            pc = *to as usize;
                            continue;
                        }
                    }
                    Op::Jnz { cond, to } => {
                        if regs[*cond as usize].is_truthy() {
                            pc = *to as usize;
                            continue;
                        }
                    }
                    Op::Ret { src } => {
                        let v = regs[*src as usize];
                        self.sp = cur.saved_sp;
                        self.depth -= 1;
                        match frames.pop() {
                            None => return Ok(v),
                            Some(parent) => {
                                let dst = cur.ret_dst as usize;
                                cur = parent;
                                cur.regs[dst] = v;
                                continue 'frame;
                            }
                        }
                    }
                    Op::Call { dst, func, abase, nargs } => {
                        let a = *abase as usize;
                        let args: Vec<Value> = regs[a..a + *nargs as usize].to_vec();
                        cur.pc = pc + 1;
                        let callee = self.new_frame(prog, *func, &args, *dst)?;
                        frames.push(std::mem::replace(&mut cur, callee));
                        continue 'frame;
                    }
                    Op::CallBuiltin { dst, which, abase, nargs } => {
                        let a = *abase as usize;
                        regs[*dst as usize] =
                            rt::call_builtin(&machine, *which, &regs[a..a + *nargs as usize])?;
                    }
                    Op::CallHook { dst, name, abase, nargs } => {
                        let name = &prog.strs[*name as usize];
                        let a = *abase as usize;
                        let hooks = self.hooks.clone();
                        let ctx = HookCtx { machine: &machine, hooks: &self.hooks };
                        match hooks.call(name, &regs[a..a + *nargs as usize], &ctx)? {
                            Some(v) => regs[*dst as usize] = v,
                            None => {
                                return Err(InterpError::Trap(format!("unknown function `{name}`")))
                            }
                        }
                    }
                    Op::Printf { dst, fmt, abase, nargs } => {
                        let fmt = &prog.strs[*fmt as usize];
                        let a = *abase as usize;
                        regs[*dst as usize] =
                            rt::do_printf(&machine, fmt, &regs[a..a + *nargs as usize])?;
                    }
                    Op::PrintfD { dst, fmt, abase, nargs } => {
                        let p = regs[*fmt as usize].as_ptr();
                        let fmt = machine.mem.read_cstr(addr::offset(p))?;
                        let a = *abase as usize;
                        let avail = &regs[a..a + *nargs as usize];
                        let n = rt::printf_arg_kinds(&fmt).len().min(avail.len());
                        regs[*dst as usize] = rt::do_printf(&machine, &fmt, &avail[..n])?;
                    }
                    Op::Launch { name, gb, abase, nargs } => {
                        let name = &prog.strs[*name as usize];
                        let g = dim3_from(regs, *gb);
                        let b = dim3_from(regs, *gb + 3);
                        let a = *abase as usize;
                        let hooks = self.hooks.clone();
                        let ctx = HookCtx { machine: &machine, hooks: &self.hooks };
                        hooks.kernel_launch(name, g, b, &regs[a..a + *nargs as usize], &ctx)?;
                    }
                    Op::DimFix { dst, src } => {
                        regs[*dst as usize] =
                            Value::I64(regs[*src as usize].as_i64().max(1) as u32 as i64);
                    }
                    Op::Dim3Load { dst3, off } => {
                        let a = frame_off + *off as u64;
                        for k in 0..3u64 {
                            regs[(*dst3 + k as u16) as usize] =
                                Value::I64(mem.load_u32(a + 4 * k)? as i64);
                        }
                    }
                    Op::Dim3Store { off, src3 } => {
                        let a = frame_off + *off as u64;
                        for k in 0..3u64 {
                            let v = regs[(*src3 + k as u16) as usize].as_i64() as u32;
                            mem.store_u32(a + 4 * k, v)?;
                        }
                    }
                    Op::Trap { msg } => {
                        return Err(InterpError::Trap(prog.strs[*msg as usize].clone()))
                    }
                }
                pc += 1;
            }
        }
    }
}

/// One live guest frame on the explicit call stack.
struct Frame {
    chunk: u32,
    /// Resumption point in the chunk (the op after the pending `Call`).
    pc: usize,
    /// Guest frame base address.
    base: u64,
    /// `sp` to restore when this frame returns.
    saved_sp: u64,
    /// Caller register receiving the return value.
    ret_dst: u16,
    regs: Vec<Value>,
}

impl Drop for Vm {
    fn drop(&mut self) {
        let _ = self.machine.heap.lock().free(self.stack_block);
    }
}

/// Fused element address: the walker's `(p + i * stride)` with its null
/// check at lvalue time.
#[inline]
fn idx_addr(base: Value, idx: Value, stride: u64) -> IResult<u64> {
    let p = base.as_ptr();
    if p == 0 {
        return Err(InterpError::Mem(MemError::Null));
    }
    Ok((p as i64 + idx.as_i64() * stride as i64) as u64)
}

/// [`rt::convert`] over the compact type kind (identical per-type rules).
#[inline]
fn convert_k(v: Value, ty: TyK) -> Value {
    match ty {
        TyK::Char => Value::I32(v.as_i64() as i8 as i32),
        TyK::Int => Value::I32(v.as_i32()),
        TyK::Long => Value::I64(v.as_i64()),
        TyK::Float => Value::F32(v.as_f32()),
        TyK::Double => Value::F64(v.as_f64()),
        TyK::Ptr => Value::Ptr(v.as_ptr()),
        // Whole-dim3 assignment converts like the walker: identity.
        TyK::Dim3X => v,
    }
}

/// The typed zero a fresh frame slot would load as.
fn zero_k(ty: TyK) -> Value {
    match ty {
        TyK::Char | TyK::Int => Value::I32(0),
        TyK::Long => Value::I64(0),
        TyK::Float => Value::F32(0.0),
        TyK::Double => Value::F64(0.0),
        TyK::Ptr => Value::Ptr(0),
        TyK::Dim3X => Value::I32(0),
    }
}

/// The walker's `resolve_space`: host addresses only.
#[inline]
fn resolve(m: &Machine, a: u64) -> IResult<&MemArena> {
    match addr::space(a) {
        Some(Space::Host) => Ok(&m.mem),
        _ => Err(InterpError::Mem(MemError::BadSpace { addr: a })),
    }
}

/// The walker's `load_typed`, keyed by [`TyK`].
#[inline]
fn load_k(m: &Machine, a: u64, ty: TyK) -> IResult<Value> {
    let mem = resolve(m, a)?;
    load_arena(mem, addr::offset(a), ty)
}

#[inline]
fn load_arena(mem: &MemArena, off: u64, ty: TyK) -> IResult<Value> {
    Ok(match ty {
        TyK::Char => Value::I32(mem.load_u8(off)? as i8 as i32),
        TyK::Int => Value::I32(mem.load_u32(off)? as i32),
        TyK::Long => Value::I64(mem.load_u64(off)? as i64),
        TyK::Float => Value::F32(f32::from_bits(mem.load_u32(off)?)),
        TyK::Double => Value::F64(f64::from_bits(mem.load_u64(off)?)),
        TyK::Ptr => Value::Ptr(mem.load_u64(off)?),
        TyK::Dim3X => return Err(InterpError::Trap("cannot load value of type dim3".into())),
    })
}

/// The walker's `store_typed`, keyed by [`TyK`] (`Dim3X` stores the x
/// component, matching whole-`dim3` scalar stores).
#[inline]
fn store_k(m: &Machine, a: u64, ty: TyK, v: Value) -> IResult<()> {
    let mem = resolve(m, a)?;
    store_arena(mem, addr::offset(a), ty, v)
}

#[inline]
fn store_arena(mem: &MemArena, off: u64, ty: TyK, v: Value) -> IResult<()> {
    match ty {
        TyK::Char => mem.store_u8(off, v.as_i64() as u8)?,
        TyK::Int => mem.store_u32(off, v.as_i32() as u32)?,
        TyK::Long => mem.store_u64(off, v.as_i64() as u64)?,
        TyK::Float => mem.store_u32(off, v.as_f32().to_bits())?,
        TyK::Double => mem.store_u64(off, v.as_f64().to_bits())?,
        TyK::Ptr => mem.store_u64(off, v.as_ptr())?,
        TyK::Dim3X => mem.store_u32(off, v.as_i64() as u32)?,
    }
    Ok(())
}

fn dim3_from(regs: &[Value], at: u16) -> [u32; 3] {
    [
        regs[at as usize].as_i64() as u32,
        regs[at as usize + 1].as_i64() as u32,
        regs[at as usize + 2].as_i64() as u32,
    ]
}
