//! The OMPi transformation phase (§3): AST→AST rewriting of OpenMP
//! constructs, organized as an explicit **pass pipeline** over the paper's
//! two *transformation sets*:
//!
//! * the **CUDA set** ([`CudaTransformSet`]) — `target`-family constructs
//!   run through the pipeline's device passes: [`outline`] extracts the
//!   region and classifies its variables, [`dataenv`] lowers the device
//!   data environment to `__dev_*` runtime calls (with `device()` routing
//!   and graceful host fallback), [`combined`] maps combined
//!   `target teams distribute parallel for` constructs to grid launches
//!   with two-phase iteration distribution (§3.1), [`masterworker`]
//!   lowers regions with stand-alone `parallel` constructs to the
//!   master/worker scheme of §3.2 (Fig. 3), and kernel emission
//!   pretty-prints the separate kernel file (§3.3).
//! * the **general-purpose set** ([`GeneralPurposeTransformSet`]) — host
//!   `parallel`/worksharing constructs are outlined into host thread
//!   functions driven by the `hostomp` runtime ([`hostset`]).
//!
//! The rewritten host program calls runtime entry points by name
//! (`__dev_*`, `ort_*`), which the [`crate::runner`] wires to the real
//! runtimes through interpreter hooks. Every `__dev_*` call carries a
//! leading device-id argument (from the `device()` clause, `-1` = the
//! default-device ICV) so the runner can route regions across the device
//! registry.

use std::collections::HashMap;

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{DirKind, MapKind as OmpMapKind, RedOp};
use minic::pretty;
use minic::sema::FrameInfo;
use minic::token::Pos;
use minic::types::Ty;

use crate::analyze::*;

mod combined;
mod dataenv;
mod hostset;
mod masterworker;
mod outline;
mod util;

pub(crate) use util::{err, long_cast, sizeof_expr};
pub use util::{rename_expr, rename_idents, trip_count_expr};

/// One resolved `map` clause item:
/// `(name, kind, base address expr, byte-length expr, mapped type)`.
pub(crate) type MapItem = (String, OmpMapKind, Expr, Expr, Ty);

/// A generated kernel file.
#[derive(Clone, Debug)]
pub struct KernelFile {
    pub id: u32,
    /// Module name (= file stem of the emitted `.cu`).
    pub module_name: String,
    /// Entry kernel function.
    pub kernel_fn: String,
    /// CUDA C source text (the paper's separate kernel file, §3.3).
    pub c_text: String,
    /// Whether it uses the master/worker scheme.
    pub master_worker: bool,
}

/// The result of translating one program.
#[derive(Clone, Debug)]
pub struct Translation {
    /// The lowered host program (pragma-free; calls runtime functions).
    pub host: Program,
    pub kernels: Vec<KernelFile>,
}

// ============================================================== pipeline

/// Static description of one pipeline pass.
#[derive(Clone, Copy, Debug)]
pub struct PassInfo {
    pub name: &'static str,
    pub description: &'static str,
}

/// The device-lowering passes, in the order a target region flows through
/// them.
pub const PASSES: [PassInfo; 5] = [
    PassInfo {
        name: "outline",
        description: "extract the target region, classify free variables, build kernel parameters",
    },
    PassInfo {
        name: "combined",
        description:
            "lower combined target loops to grid launches with chunked distribution (§3.1)",
    },
    PassInfo {
        name: "masterworker",
        description: "lower stand-alone parallel constructs to the master/worker scheme (§3.2)",
    },
    PassInfo { name: "emit", description: "emit the separate CUDA C kernel file (§3.3)" },
    PassInfo {
        name: "dataenv",
        description: "lower the data environment to __dev_* calls with device() routing + fallback",
    },
];

/// One pass-boundary snapshot recorded during a traced translation.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Pass name (one of [`PASSES`]).
    pub pass: &'static str,
    /// The region's kernel function (ties entries of one region together).
    pub region: String,
    /// Pretty-printed result at the pass boundary.
    pub text: String,
}

/// All pass-boundary snapshots of one translation (the Fig. 2 chain-stage
/// log, extended to pass granularity). Used by the golden tests.
#[derive(Clone, Debug, Default)]
pub struct PassTrace {
    pub entries: Vec<TraceEntry>,
}

impl PassTrace {
    /// Entries recorded at one pass boundary, in region order.
    pub fn at(&self, pass: &str) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| e.pass == pass).collect()
    }
}

/// One of the paper's transformation sets: claims a directive family and
/// lowers it. Selected per construct — `target`-family directives go to
/// the set matching the target device kind, everything else to the
/// general-purpose set.
pub trait TransformSet {
    fn name(&self) -> &'static str;
    /// Does this set lower `kind`?
    fn handles(&self, kind: DirKind) -> bool;
    /// Lower one claimed construct.
    fn lower(&self, tr: &mut Translator<'_>, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt>;
}

/// The CUDA transformation set: `target`-family constructs become kernel
/// files plus `__dev_*` data-environment/offload calls.
pub struct CudaTransformSet;

impl TransformSet for CudaTransformSet {
    fn name(&self) -> &'static str {
        "cuda"
    }

    fn handles(&self, kind: DirKind) -> bool {
        kind.is_target()
            || matches!(
                kind,
                DirKind::TargetData
                    | DirKind::TargetEnterData
                    | DirKind::TargetExitData
                    | DirKind::TargetUpdate
            )
    }

    fn lower(&self, tr: &mut Translator<'_>, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        match o.dir.kind {
            k if k.is_target() => tr.lower_target(o, ctx),
            DirKind::TargetData => tr.lower_target_data(o, ctx),
            DirKind::TargetEnterData => tr.map_calls(&o.dir, ctx, /*enter*/ true),
            DirKind::TargetExitData => tr.map_calls(&o.dir, ctx, false),
            DirKind::TargetUpdate => tr.lower_target_update(&o.dir, ctx),
            _ => unreachable!("non-target directive dispatched to the CUDA set"),
        }
    }
}

/// The general-purpose transformation set: host `parallel`/worksharing
/// constructs become `ort_*` runtime calls and outlined thread functions.
pub struct GeneralPurposeTransformSet;

impl TransformSet for GeneralPurposeTransformSet {
    fn name(&self) -> &'static str {
        "general-purpose"
    }

    fn handles(&self, _kind: DirKind) -> bool {
        true // the fallback set
    }

    fn lower(&self, tr: &mut Translator<'_>, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        tr.lower_host_construct(o, ctx)
    }
}

/// Set selection order: first set claiming the directive wins.
const SETS: [&dyn TransformSet; 2] = [&CudaTransformSet, &GeneralPurposeTransformSet];

/// The explicit transformation pipeline: the transformation sets plus the
/// pass metadata of [`PASSES`].
pub struct Pipeline {
    trace: bool,
    /// Prepended to every outlined kernel's module name. Empty for
    /// standalone compiles; the batch server compiles many tenants'
    /// programs into one shared kernel directory, where `k0_main` from two
    /// programs must not collide.
    module_prefix: String,
}

impl Pipeline {
    pub fn new() -> Pipeline {
        Pipeline { trace: false, module_prefix: String::new() }
    }

    /// Record pretty-printed snapshots at every pass boundary.
    pub fn traced() -> Pipeline {
        Pipeline { trace: true, module_prefix: String::new() }
    }

    /// Namespace the outlined kernel modules (`<prefix>k0_main`, ...).
    pub fn with_module_prefix(mut self, prefix: impl Into<String>) -> Pipeline {
        self.module_prefix = prefix.into();
        self
    }

    pub fn passes(&self) -> &'static [PassInfo] {
        &PASSES
    }

    /// Translate an analyzed program through the pipeline.
    pub fn run(&self, prog: &Program) -> TResult<(Translation, PassTrace)> {
        let mut tr = Translator {
            prog,
            kernels: Vec::new(),
            host_fns: Vec::new(),
            next_kernel: 0,
            next_hostfn: 0,
            next_tmp: 0,
            critical_ids: HashMap::new(),
            module_prefix: self.module_prefix.clone(),
            trace: if self.trace { Some(PassTrace::default()) } else { None },
        };
        let mut items = Vec::new();
        for item in &prog.items {
            match item {
                Item::Func(f) => {
                    let mut body_stmts = Vec::new();
                    let ctx =
                        HostCtx { fname: f.sig.name.clone(), frame: &f.frame, in_parallel: false };
                    for s in &f.body.stmts {
                        body_stmts.push(tr.host_stmt(s, &ctx)?);
                    }
                    let mut nf = f.clone();
                    nf.body = Block { stmts: body_stmts };
                    nf.frame = FrameInfo::default(); // re-sema will rebuild
                    items.push(Item::Func(nf));
                }
                Item::DeclareTarget(_) => {} // consumed (functions already marked)
                other => items.push(other.clone()),
            }
        }
        // Outlined host thread functions go at the end.
        items.extend(tr.host_fns.drain(..).map(Item::Func));
        let trace = tr.trace.take().unwrap_or_default();
        Ok((Translation { host: Program { items }, kernels: tr.kernels }, trace))
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

/// Translate an analyzed program (the standard, untraced pipeline).
pub fn translate(prog: &Program) -> TResult<Translation> {
    Pipeline::new().run(prog).map(|(t, _)| t)
}

/// Translate and record pass-boundary snapshots (golden tests, Fig. 2
/// chain-stage logging).
pub fn translate_traced(prog: &Program) -> TResult<(Translation, PassTrace)> {
    Pipeline::traced().run(prog)
}

// ============================================================ translator

pub struct HostCtx<'f> {
    pub(crate) fname: String,
    pub(crate) frame: &'f FrameInfo,
    /// Inside an outlined host parallel region (worksharing context).
    #[allow(dead_code)]
    pub(crate) in_parallel: bool,
}

/// How a free variable enters a kernel / thread function.
// The `Mapped` variant dominates in practice, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub(crate) enum VarRole {
    /// Mapped pointer: kernel parameter of decayed pointer type; launch arg
    /// is the host section base address.
    Mapped {
        #[allow(dead_code)]
        kind: OmpMapKind,
        base: Expr,
        #[allow(dead_code)]
        bytes: Expr,
        param_ty: Ty,
    },
    /// Scalar passed by value.
    FirstPrivate,
    /// Reduction accumulator.
    Reduction(RedOp),
}

pub struct Translator<'p> {
    pub(crate) prog: &'p Program,
    pub(crate) kernels: Vec<KernelFile>,
    pub(crate) host_fns: Vec<FuncDef>,
    pub(crate) next_kernel: u32,
    pub(crate) next_hostfn: u32,
    pub(crate) next_tmp: u32,
    pub(crate) critical_ids: HashMap<String, i64>,
    pub(crate) module_prefix: String,
    pub(crate) trace: Option<PassTrace>,
}

impl<'p> Translator<'p> {
    pub(crate) fn tmp(&mut self, base: &str) -> String {
        let n = self.next_tmp;
        self.next_tmp += 1;
        format!("__{base}{n}")
    }

    pub(crate) fn critical_id(&mut self, name: &str) -> i64 {
        let next = self.critical_ids.len() as i64;
        *self.critical_ids.entry(name.to_string()).or_insert(next)
    }

    /// Record a pass-boundary snapshot (no-op on the untraced pipeline).
    pub(crate) fn record(&mut self, pass: &'static str, region: &str, text: String) {
        if let Some(t) = &mut self.trace {
            t.entries.push(TraceEntry { pass, region: region.to_string(), text });
        }
    }

    // ================================================= host transformation

    pub(crate) fn host_stmt(&mut self, s: &Stmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        match s {
            Stmt::Omp(o) => self.host_directive(o, ctx),
            Stmt::Block(bl) => {
                let mut out = Vec::new();
                for st in &bl.stmts {
                    out.push(self.host_stmt(st, ctx)?);
                }
                Ok(Stmt::Block(Block { stmts: out }))
            }
            Stmt::If { cond, then_s, else_s } => Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(self.host_stmt(then_s, ctx)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.host_stmt(e, ctx)?)),
                    None => None,
                },
            }),
            Stmt::For { init, cond, step, body } => Ok(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.host_stmt(body, ctx)?),
            }),
            Stmt::While { cond, body } => {
                Ok(Stmt::While { cond: cond.clone(), body: Box::new(self.host_stmt(body, ctx)?) })
            }
            Stmt::DoWhile { body, cond } => {
                Ok(Stmt::DoWhile { body: Box::new(self.host_stmt(body, ctx)?), cond: cond.clone() })
            }
            other => Ok(other.clone()),
        }
    }

    /// Dispatch a directive to the transformation set that claims it.
    fn host_directive(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let set = SETS
            .iter()
            .find(|s| s.handles(o.dir.kind))
            .expect("the general-purpose set claims every directive");
        set.lower(self, o, ctx)
    }

    // ================================================== target offloading

    /// Lower a `target`-family region through the device passes: outline →
    /// kernel-body lowering (combined or master/worker) → kernel emission →
    /// data-environment host replacement.
    fn lower_target(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let dir = &o.dir;

        // ---- pass: outline ----
        let mut reg = self.outline_region(o, ctx)?;
        if self.trace.is_some() {
            let text = reg.describe();
            self.record("outline", &reg.kernel_fn.clone(), text);
        }

        // ---- pass: combined / masterworker (kernel-body lowering) ----
        let mut kbody: Vec<Stmt> = Vec::new();
        // Private-clause locals.
        for pv in &reg.privates {
            let ty = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == *pv)
                .map(|sl| sl.ty.clone())
                .unwrap_or(Ty::Int);
            kbody.push(b::decl(pv, ty, None));
        }
        let lowering_pass;
        if reg.combined {
            lowering_pass = "combined";
            kbody.extend(self.combined_kernel_body(
                &reg.loops,
                &reg.inner_body,
                dir,
                &reg.roles,
                reg.dist_only,
                o.pos,
            )?);
        } else {
            lowering_pass = "masterworker";
            let mw_body = reg.mw_body.clone().expect("outline built a master/worker body");
            kbody.extend(self.master_worker_kernel_body(
                &mw_body,
                &reg.roles,
                &reg.scalar_writebacks,
                o.pos,
                &mut reg.kprog,
            )?);
        }
        if self.trace.is_some() {
            let text = pretty::stmt(&Stmt::Block(Block { stmts: kbody.clone() }));
            self.record(lowering_pass, &reg.kernel_fn.clone(), text);
        }

        // ---- pass: emit (the separate kernel file, §3.3) ----
        let kfun = FuncDef {
            sig: FuncSig {
                name: reg.kernel_fn.clone(),
                ret: Ty::Void,
                params: reg.params.clone(),
                quals: FnQuals { global: true, device: false },
                pos: o.pos,
            },
            body: Block { stmts: kbody },
            frame: FrameInfo::default(),
            declare_target: false,
        };
        reg.kprog.items.push(Item::Func(kfun));
        let c_text = pretty::program(&reg.kprog);
        if self.trace.is_some() {
            self.record("emit", &reg.kernel_fn.clone(), c_text.clone());
        }
        self.kernels.push(KernelFile {
            id: reg.kid,
            module_name: reg.module_name.clone(),
            kernel_fn: reg.kernel_fn.clone(),
            c_text,
            master_worker: !reg.combined,
        });

        // ---- pass: dataenv (host-side replacement) ----
        let replacement = self.host_replacement(o, ctx, &reg)?;
        if self.trace.is_some() {
            let text = pretty::stmt(&replacement);
            self.record("dataenv", &reg.kernel_fn.clone(), text);
        }
        Ok(replacement)
    }
}

pub(crate) struct DeviceCtx {
    pub(crate) roles: Vec<(String, Ty, VarRole)>,
    #[allow(dead_code)]
    pub(crate) pos: Pos,
}
