//! A minimal JSON parser — just enough to validate and query the traces
//! this crate emits (the workspace carries no external dependencies, so
//! there is no serde to lean on). Numbers are parsed as `f64`; objects
//! preserve key order.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match; `None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates are not needed for our own output.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "t": true, "z": null}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("z").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "[1] extra", "nul", "\"open"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
