//! Types of the mini-C dialect.

use crate::ast::Expr;

/// A mini-C type.
///
/// `long` is 64-bit (LP64, as on the Jetson's AArch64 Linux); `int` is
/// 32-bit; pointers are 64-bit tagged guest addresses.
#[derive(Clone, Debug, PartialEq)]
pub enum Ty {
    /// Placeholder before semantic analysis.
    Unknown,
    Void,
    Char,
    Int,
    Long,
    Float,
    Double,
    Ptr(Box<Ty>),
    Array(Box<Ty>, ArrayLen),
    /// CUDA `dim3` (x, y, z as unsigned ints); a builtin aggregate.
    Dim3,
}

/// Array extent: a compile-time constant or a runtime expression (VLA-style
/// parameter such as `float A[n][n]`).
#[derive(Clone, Debug)]
pub enum ArrayLen {
    Const(u64),
    /// Evaluated at run time in the enclosing scope.
    Expr(Box<Expr>),
    /// `[]` — unspecified outermost dimension (decays to pointer).
    Unspec,
}

impl PartialEq for ArrayLen {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ArrayLen::Const(a), ArrayLen::Const(b)) => a == b,
            (ArrayLen::Unspec, ArrayLen::Unspec) => true,
            // Runtime extents are not statically comparable.
            _ => false,
        }
    }
}

impl Ty {
    /// Size in bytes; `None` if unsized or the size is only known at run
    /// time (VLA).
    pub fn size(&self) -> Option<u64> {
        match self {
            Ty::Unknown | Ty::Void => None,
            Ty::Char => Some(1),
            Ty::Int => Some(4),
            Ty::Long => Some(8),
            Ty::Float => Some(4),
            Ty::Double => Some(8),
            Ty::Ptr(_) => Some(8),
            Ty::Array(elem, ArrayLen::Const(n)) => Some(elem.size()? * n),
            Ty::Array(..) => None,
            Ty::Dim3 => Some(12),
        }
    }

    /// Natural alignment in bytes.
    pub fn align(&self) -> u64 {
        match self {
            Ty::Unknown | Ty::Void => 1,
            Ty::Char => 1,
            Ty::Int | Ty::Float => 4,
            Ty::Long | Ty::Double | Ty::Ptr(_) => 8,
            Ty::Array(elem, _) => elem.align(),
            Ty::Dim3 => 4,
        }
    }

    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::Char | Ty::Int | Ty::Long)
    }

    pub fn is_float(&self) -> bool {
        matches!(self, Ty::Float | Ty::Double)
    }

    pub fn is_arith(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Ty::Array(..))
    }

    /// Element type of a pointer or array.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) => Some(t),
            Ty::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The type this expression has after array-to-pointer decay.
    pub fn decayed(&self) -> Ty {
        match self {
            Ty::Array(elem, _) => Ty::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// Result of the usual arithmetic conversions between two types.
    pub fn usual_arith(a: &Ty, b: &Ty) -> Ty {
        use Ty::*;
        match (a, b) {
            (Double, _) | (_, Double) => Double,
            (Float, _) | (_, Float) => Float,
            (Long, _) | (_, Long) => Long,
            _ => Int,
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Unknown => write!(f, "<unknown>"),
            Ty::Void => write!(f, "void"),
            Ty::Char => write!(f, "char"),
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Float => write!(f, "float"),
            Ty::Double => write!(f, "double"),
            Ty::Ptr(t) => write!(f, "{t}*"),
            Ty::Array(t, ArrayLen::Const(n)) => write!(f, "{t}[{n}]"),
            Ty::Array(t, ArrayLen::Expr(_)) => write!(f, "{t}[<expr>]"),
            Ty::Array(t, ArrayLen::Unspec) => write!(f, "{t}[]"),
            Ty::Dim3 => write!(f, "dim3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_lp64() {
        assert_eq!(Ty::Int.size(), Some(4));
        assert_eq!(Ty::Long.size(), Some(8));
        assert_eq!(Ty::Ptr(Box::new(Ty::Float)).size(), Some(8));
        assert_eq!(Ty::Array(Box::new(Ty::Float), ArrayLen::Const(10)).size(), Some(40));
        assert_eq!(
            Ty::Array(
                Box::new(Ty::Array(Box::new(Ty::Double), ArrayLen::Const(3))),
                ArrayLen::Const(2)
            )
            .size(),
            Some(48)
        );
    }

    #[test]
    fn arithmetic_conversions() {
        assert_eq!(Ty::usual_arith(&Ty::Int, &Ty::Float), Ty::Float);
        assert_eq!(Ty::usual_arith(&Ty::Float, &Ty::Double), Ty::Double);
        assert_eq!(Ty::usual_arith(&Ty::Char, &Ty::Int), Ty::Int);
        assert_eq!(Ty::usual_arith(&Ty::Long, &Ty::Int), Ty::Long);
    }

    #[test]
    fn decay() {
        let a = Ty::Array(Box::new(Ty::Float), ArrayLen::Const(8));
        assert_eq!(a.decayed(), Ty::Ptr(Box::new(Ty::Float)));
        assert_eq!(Ty::Int.decayed(), Ty::Int);
    }
}
