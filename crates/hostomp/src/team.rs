//! Thread teams and per-team worksharing state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vmcommon::sched::{DynamicState, GuidedState};
use vmcommon::sync::{Condvar, Mutex};

/// A reusable sense-reversing barrier for `n` threads.
pub struct TeamBarrier {
    n: usize,
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl TeamBarrier {
    pub fn new(n: usize) -> TeamBarrier {
        TeamBarrier { n, state: Mutex::new((0, 0)), cv: Condvar::new() }
    }

    pub fn wait(&self) {
        let mut st = self.state.lock();
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            return;
        }
        let gen = st.1;
        while st.1 == gen {
            self.cv.wait(&mut st);
        }
    }
}

/// Worksharing state for one region instance (a `for`, `single` or
/// `sections` the team passes through together).
pub struct WsState {
    /// Loop trip count (0 for single/sections use).
    pub total: u64,
    pub dynamic: DynamicState,
    pub guided: GuidedState,
    /// `single` claimed flag.
    single_done: AtomicBool,
    /// `sections` dispenser.
    sections_next: AtomicU64,
}

impl WsState {
    fn new(total: u64) -> WsState {
        WsState {
            total,
            dynamic: DynamicState::new(),
            guided: GuidedState::new(),
            single_done: AtomicBool::new(false),
            sections_next: AtomicU64::new(0),
        }
    }

    /// State for execution outside a team (sequential region).
    pub fn solo(total: u64) -> WsState {
        WsState::new(total)
    }

    /// First caller wins the `single` region.
    pub fn single_winner(&self) -> bool {
        !self.single_done.swap(true, Ordering::AcqRel)
    }

    /// Claim the next section (lock-free counter; the paper's device
    /// implementation uses a lock + counter, the host one a fetch-add).
    pub fn sections_next(&self, nsections: u64) -> Option<u64> {
        let i = self.sections_next.fetch_add(1, Ordering::AcqRel);
        if i < nsections {
            Some(i)
        } else {
            None
        }
    }
}

/// One parallel-region team.
pub struct Team {
    pub nthreads: usize,
    barrier: TeamBarrier,
    /// Worksharing instances, keyed by per-thread region ordinal. Threads
    /// encounter worksharing regions in the same order (an OpenMP
    /// requirement), so the ordinal identifies the instance.
    ws: Mutex<HashMap<u64, Arc<WsState>>>,
    /// Per-thread count of worksharing regions encountered.
    ws_ordinal: Vec<AtomicU64>,
    /// Cleanup epoch: instances older than every thread's ordinal are
    /// dropped lazily.
    ws_floor: AtomicU64,
}

impl Team {
    pub fn new(nthreads: usize) -> Team {
        Team {
            nthreads,
            barrier: TeamBarrier::new(nthreads),
            ws: Mutex::new(HashMap::new()),
            ws_ordinal: (0..nthreads).map(|_| AtomicU64::new(0)).collect(),
            ws_floor: AtomicU64::new(0),
        }
    }

    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// The worksharing instance for the next region this thread encounters
    /// (creating it if this thread is first).
    pub fn ws(&self, tid: usize) -> Arc<WsState> {
        self.ws_with_total(tid, 0)
    }

    /// Worksharing instance for a loop with `total` iterations.
    pub fn ws_loop(&self, tid: usize, total: u64) -> Arc<WsState> {
        self.ws_with_total(tid, total)
    }

    fn ws_with_total(&self, tid: usize, total: u64) -> Arc<WsState> {
        let ordinal = self.ws_ordinal[tid].fetch_add(1, Ordering::AcqRel);
        let mut map = self.ws.lock();
        let state = map.entry(ordinal).or_insert_with(|| Arc::new(WsState::new(total))).clone();
        // Drop instances every live thread has moved past.
        let min = self.ws_ordinal.iter().map(|a| a.load(Ordering::Acquire)).min().unwrap_or(0);
        let floor = self.ws_floor.load(Ordering::Acquire);
        if min > floor + 16 {
            map.retain(|&k, _| k + 1 >= min);
            self.ws_floor.store(min.saturating_sub(1), Ordering::Release);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_instances_match_by_ordinal() {
        let team = Team::new(2);
        // Thread 0 encounters two regions, thread 1 encounters the same two.
        let a0 = team.ws(0);
        let b0 = team.ws(0);
        let a1 = team.ws(1);
        let b1 = team.ws(1);
        assert!(Arc::ptr_eq(&a0, &a1));
        assert!(Arc::ptr_eq(&b0, &b1));
        assert!(!Arc::ptr_eq(&a0, &b0));
    }

    #[test]
    fn barrier_reusable() {
        let team = Arc::new(Team::new(3));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let team = team.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        team.barrier();
                    }
                });
            }
        });
    }

    #[test]
    fn single_winner_exactly_one() {
        let ws = WsState::solo(0);
        assert!(ws.single_winner());
        assert!(!ws.single_winner());
        assert!(!ws.single_winner());
    }
}
