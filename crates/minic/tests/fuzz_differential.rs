//! Differential fuzzing of the two execution engines.
//!
//! For each seed, [`minic::fuzzgen::generate`] produces a deterministic
//! mini-C program, which runs under the bytecode VM and the tree-walking
//! oracle with the same fuel budget. The contract:
//!
//! 1. the lexer→parser→sema→compile→vm pipeline never panics;
//! 2. both engines terminate (the fuel governor bounds hostile loops);
//! 3. unless one engine fuel-trapped, return value, printed output, and
//!    error messages are byte-identical.
//!
//! Fuel is the one limit checked at engine-specific step boundaries, so a
//! program near the budget may trap in one engine and finish in the other;
//! those runs assert termination only. Every other trap (division by zero,
//! stack overflow, …) must match byte for byte.
//!
//! `OMPI_FUZZ_SEEDS` / `OMPI_FUZZ_SEED_BASE` scale the sweep (CI smoke
//! runs 1200 seeds). On failure the seed is printed and the generated
//! program is written to `OMPI_FUZZ_ARTIFACT_DIR` (default: temp dir).

use std::sync::Arc;

use minic::interp::{Engine, Interp, Machine, NoHooks};

/// Generous budget: orders of magnitude above what a generated program
/// needs unless it contains a genuinely unbounded loop.
const FUEL: u64 = 500_000;

/// The whole run of one engine, flattened for comparison.
type Outcome = Result<(String, String), String>;

fn run_engine(src: &str, engine: Engine) -> Outcome {
    let m = match Machine::from_source(src) {
        Ok(m) => m,
        // A frontend rejection is engine-independent by construction; it
        // still must not panic, which reaching here proves.
        Err(e) => return Err(format!("frontend: {e}")),
    };
    m.set_engine(engine);
    m.limits().set_fuel(Some(FUEL));
    let mut i = match Interp::new(m.clone(), Arc::new(NoHooks)) {
        Ok(i) => i,
        Err(e) => return Err(format!("init: {e}")),
    };
    match i.run_main() {
        Ok(v) => Ok((format!("{v:?}"), m.take_output())),
        Err(e) => Err(e.to_string()),
    }
}

fn fuel_trapped(o: &Outcome) -> bool {
    matches!(o, Err(e) if e.contains("guest fuel exhausted"))
}

/// Write the offending program next to the failure message so CI can
/// upload it as an artifact.
fn fail(seed: u64, src: &str, why: &str) -> ! {
    let dir = std::env::var("OMPI_FUZZ_ARTIFACT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("fuzz_seed_{seed}.c"));
    let _ = std::fs::write(&path, src);
    panic!(
        "differential fuzz failure at seed {seed}: {why}\n\
         program written to {}\n\
         reproduce with: OMPI_FUZZ_SEED_BASE={seed} OMPI_FUZZ_SEEDS=1 \
         cargo test --test fuzz_differential",
        path.display()
    );
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

#[test]
fn engines_agree_over_seed_sweep() {
    let base = env_u64("OMPI_FUZZ_SEED_BASE", 0);
    let seeds = env_u64("OMPI_FUZZ_SEEDS", 300);
    for seed in base..base + seeds {
        let src = minic::fuzzgen::generate(seed);
        // A worker thread with a big stack: the walker recurses on the
        // host stack, and generated programs legitimately reach the guest
        // depth limit. A panic anywhere in the pipeline surfaces as a
        // join error instead of killing the harness.
        let src2 = src.clone();
        let joined = std::thread::Builder::new()
            .name(format!("fuzz-{seed}"))
            .stack_size(64 << 20)
            .spawn(move || {
                let vm = run_engine(&src2, Engine::Vm);
                let walker = run_engine(&src2, Engine::Walker);
                (vm, walker)
            })
            .expect("spawn fuzz worker")
            .join();
        let (vm, walker) = match joined {
            Ok(r) => r,
            Err(_) => fail(seed, &src, "pipeline panicked"),
        };
        // Fuel granularity differs per engine: if either trapped on fuel,
        // "both terminated" is the whole assertion.
        if fuel_trapped(&vm) || fuel_trapped(&walker) {
            continue;
        }
        if vm != walker {
            fail(seed, &src, &format!("engines diverge:\n  vm:     {vm:?}\n  walker: {walker:?}"));
        }
    }
}

/// Fuel-limited runs of a guaranteed-hostile program terminate in both
/// engines with the typed fuel error.
#[test]
fn hostile_loop_terminates_under_fuel() {
    let src = "int main() { while (1); return 0; }";
    for engine in [Engine::Vm, Engine::Walker] {
        let m = Machine::from_source(src).unwrap();
        m.set_engine(engine);
        m.limits().set_fuel(Some(10_000));
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        let err = i.run_main().unwrap_err();
        assert_eq!(
            err.to_string(),
            "guest limit: guest fuel exhausted (budget 10000 instructions)",
            "under {engine:?}"
        );
    }
}
