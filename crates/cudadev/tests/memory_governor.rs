//! Memory-governor tests: fragmentation-induced OOM at the allocator
//! level, LRU eviction reclaiming contiguous arena space, chunked staging
//! of oversized transfers, transfer reuse from the cache, and the typed
//! `InvalidFree` error under fault injection.

use std::sync::Arc;

use cudadev::{CudaDev, CudaDevConfig, CudadevError, MapKind};
use gpusim::fault::FaultPlan;
use gpusim::ExecMode;
use vmcommon::alloc::AllocError;
use vmcommon::{addr, BlockAllocator, MemArena};

fn dev_with(obs: Arc<obs::Obs>, tag: &str, f: impl FnOnce(&mut CudaDevConfig)) -> CudaDev {
    let base = std::env::temp_dir().join(format!("cudadev-gov-{}-{tag}", std::process::id()));
    let mut cfg = CudaDevConfig {
        global_mem: 16 << 20,
        kernel_dir: base.join("k"),
        jit_cache_dir: base.join("j"),
        exec_mode: ExecMode::Functional,
        obs,
        ..Default::default()
    };
    f(&mut cfg);
    CudaDev::new(cfg)
}

fn counter(obs: &obs::Obs, name: &str) -> u64 {
    obs.metrics.counter(0, name)
}

/// Interleaved alloc/free leaves the arena with plenty of total free space
/// but no contiguous run large enough: the allocator must report OOM for
/// the request, and freeing the separator block must coalesce the holes so
/// the same request then succeeds. This is the failure mode the governor's
/// evict rung exists to repair.
#[test]
fn fragmentation_causes_oom_despite_sufficient_total_free() {
    let mut a = BlockAllocator::new(0, 4096);
    let big1 = a.alloc(1024).unwrap();
    let sep1 = a.alloc(256).unwrap();
    let big2 = a.alloc(1024).unwrap();
    let _sep2 = a.alloc(256).unwrap();
    let _big3 = a.alloc(1024).unwrap();

    a.free(big1).unwrap();
    a.free(big2).unwrap();
    assert!(a.bytes_free() >= 2048, "total free space covers the request");
    assert!(a.largest_free() < 2048, "but no single hole does");
    assert_eq!(a.alloc(2048), Err(AllocError::OutOfMemory { requested: 2048 }));

    // Freeing the separator merges the two holes into one contiguous run.
    a.free(sep1).unwrap();
    assert!(a.largest_free() >= 2048, "coalescing must merge adjacent holes");
    a.alloc(2048).expect("the coalesced hole satisfies the request");
}

/// The peak-usage watermark never decreases, and tracks the maximum
/// bytes-in-use exactly across an interleaved alloc/free sequence.
#[test]
fn high_water_mark_is_monotone() {
    let mut a = BlockAllocator::new(0, 1 << 20);
    let mut peak = 0u64;
    let mut live = Vec::new();
    let sizes = [4096u64, 1024, 8192, 512, 2048, 16384];
    for (i, &sz) in sizes.iter().enumerate() {
        live.push(a.alloc(sz).unwrap());
        peak = peak.max(a.bytes_in_use());
        assert_eq!(a.high_water(), peak, "after alloc #{i}");
        if i % 2 == 1 {
            let prev = a.high_water();
            a.free(live.remove(0)).unwrap();
            assert_eq!(a.high_water(), prev, "free must never lower the watermark");
        }
    }
    assert_eq!(a.high_water(), peak);
}

/// The evict rung: a zero-refcount buffer parked in the LRU cache still
/// occupies the arena; when a new mapping cannot fit, the governor evicts
/// it and retries, so the map succeeds instead of going pending.
#[test]
fn evict_reclaims_contiguous_arena_space() {
    let obs = obs::Obs::enabled();
    let dev = dev_with(obs.clone(), "evict", |cfg| cfg.global_mem = 1 << 20);
    let host = MemArena::new(2 << 20);
    let a = addr::make(addr::Space::Host, 256);
    let b = addr::make(addr::Space::Host, 1 << 20);
    let len = 600 << 10; // two of these cannot coexist in a 1 MiB arena

    dev.map(&host, a, len, MapKind::To).unwrap();
    dev.unmap(&host, a, MapKind::To).unwrap();
    assert_eq!(dev.cached_bytes(), len, "unmapped buffer parks in the cache");

    let d = dev.map(&host, b, len, MapKind::To).unwrap();
    assert_ne!(d, 0, "the map must be resolved by eviction, not go pending");
    assert_eq!(counter(&obs, "pressure.evict"), 1, "exactly one eviction");
    assert_eq!(dev.cached_bytes(), 0, "the cached buffer was the victim");
    assert_eq!(counter(&obs, "maps_pending"), 0);
    dev.unmap(&host, b, MapKind::To).unwrap();
}

/// The stage rung: copies larger than the staging bound are split into
/// bounded chunks — same bytes on the device, `staged_chunks` counted.
#[test]
fn oversized_transfers_are_staged_in_chunks() {
    let obs = obs::Obs::enabled();
    let dev = dev_with(obs.clone(), "stage", |cfg| cfg.staging_bytes = 4096);
    let host = MemArena::new(1 << 20);
    let base = 4096u64;
    let words = 16384u64; // 64 KiB = 16 chunks of 4 KiB
    for i in 0..words {
        host.store_u32(base + 4 * i, i as u32).unwrap();
    }
    let ha = addr::make(addr::Space::Host, base);
    let dp = dev.map(&host, ha, words * 4, MapKind::To).unwrap();

    assert_eq!(counter(&obs, "pressure.stage"), 1);
    assert_eq!(counter(&obs, "staged_chunks"), 16);

    // The chunked upload must be byte-identical to a flat copy.
    let mut raw = vec![0u8; (words * 4) as usize];
    dev.device().memcpy_d2h(&mut raw, dp).unwrap();
    for i in 0..words {
        let v = u32::from_le_bytes(raw[(4 * i) as usize..(4 * i + 4) as usize].try_into().unwrap());
        assert_eq!(v, i as u32, "word {i} survived staging");
    }
    dev.unmap(&host, ha, MapKind::To).unwrap();
}

/// Transfer reuse: re-mapping a host buffer whose cached device copy is
/// provably in sync (the unmap copy-back recorded its hash) skips the
/// upload entirely.
#[test]
fn remap_of_synced_buffer_skips_the_upload() {
    let obs = obs::Obs::enabled();
    let dev = dev_with(obs.clone(), "reuse", |cfg| cfg.global_mem = 1 << 20);
    let host = MemArena::new(1 << 16);
    let ha = addr::make(addr::Space::Host, 256);
    for i in 0..64u64 {
        host.store_u32(256 + 4 * i, i as u32).unwrap();
    }

    dev.map(&host, ha, 256, MapKind::ToFrom).unwrap();
    dev.unmap(&host, ha, MapKind::From).unwrap(); // copy-back records the hash
    let h2d_before = dev.clock.lock().h2d_bytes;

    dev.map(&host, ha, 256, MapKind::To).unwrap();
    assert_eq!(counter(&obs, "cache.reuse"), 1);
    assert_eq!(counter(&obs, "transfer_reuse"), 1, "contents match: no re-upload");
    assert_eq!(dev.clock.lock().h2d_bytes, h2d_before, "no h2d traffic on reuse");

    // Mutating the host copy invalidates the proof: the next cycle must
    // re-upload instead of trusting the stale cache entry.
    dev.unmap(&host, ha, MapKind::To).unwrap();
    host.store_u32(256, 0xdead_beef).unwrap();
    dev.map(&host, ha, 256, MapKind::To).unwrap();
    assert_eq!(counter(&obs, "transfer_reuse"), 1, "stale contents must not reuse");
    assert!(dev.clock.lock().h2d_bytes > h2d_before, "the changed buffer re-uploads");
    dev.unmap(&host, ha, MapKind::To).unwrap();
}

/// Unmapping or updating an address with no live mapping is a typed
/// `NotMapped` error — a host bookkeeping bug, not a device failure — so
/// the device stays usable and the address survives into the diagnostic.
#[test]
fn unmap_and_update_of_unmapped_address_are_typed_errors() {
    let dev = dev_with(obs::Obs::disabled(), "notmapped", |_| {});
    let host = MemArena::new(1 << 16);
    let never_mapped = addr::make(addr::Space::Host, 256);

    let err = dev.unmap(&host, never_mapped, MapKind::From).expect_err("nothing is mapped");
    assert!(
        matches!(err, CudadevError::NotMapped { host_addr } if host_addr == never_mapped),
        "typed NotMapped with the offending address, got: {err}"
    );
    let err = dev.update(&host, never_mapped, 64, true).expect_err("still nothing mapped");
    assert!(matches!(err, CudadevError::NotMapped { .. }), "update path too, got: {err}");
    assert!(!dev.is_broken(), "a bookkeeping error must not latch the device");

    // Double-unmap: the first releases the mapping, the second is typed.
    dev.map(&host, never_mapped, 512, MapKind::To).unwrap();
    dev.unmap(&host, never_mapped, MapKind::Delete).unwrap();
    let err = dev.unmap(&host, never_mapped, MapKind::Delete).expect_err("already unmapped");
    assert!(matches!(err, CudadevError::NotMapped { .. }));
}

/// An injected `free@1` fault surfaces as the typed `InvalidFree` error —
/// a host bookkeeping bug, not a device failure — so the device stays
/// usable and the rejection is counted.
#[test]
fn injected_invalid_free_is_typed_and_non_fatal() {
    let obs = obs::Obs::enabled();
    let dev = dev_with(obs.clone(), "invfree", |cfg| {
        cfg.fault_plan = Some(Arc::new(FaultPlan::parse("free@1").unwrap()));
    });
    let host = MemArena::new(1 << 16);
    let ha = addr::make(addr::Space::Host, 256);

    dev.map(&host, ha, 512, MapKind::To).unwrap();
    dev.unmap(&host, ha, MapKind::To).unwrap();
    let err = dev.trim_cache().expect_err("the injected fault must surface");
    assert!(
        matches!(err, CudadevError::InvalidFree { dev_ptr } if dev_ptr != 0),
        "typed InvalidFree with the rejected pointer, got: {err}"
    );
    assert_eq!(counter(&obs, "invalid_frees"), 1);
    assert!(!dev.is_broken(), "an invalid free must not latch the device");

    // The device keeps working: a fresh map/unmap/trim cycle is clean.
    dev.map(&host, ha, 512, MapKind::To).unwrap();
    dev.unmap(&host, ha, MapKind::To).unwrap();
    dev.trim_cache().expect("only call #1 was poisoned");
}
