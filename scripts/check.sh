#!/usr/bin/env sh
# Repo-wide quality gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "== module size ratchet (crates/core/src + crates/obs/src, 900 lines) =="
# The transform monolith was split into a pass pipeline; keep it split.
# The obs crate starts split (trace/metrics/profile/json); keep it that way.
oversized=0
for f in $(find crates/core/src crates/obs/src -name '*.rs'); do
    lines=$(wc -l < "$f")
    if [ "$lines" -gt 900 ]; then
        echo "FAIL: $f has $lines lines (limit 900)"
        oversized=1
    fi
done
[ "$oversized" -eq 0 ] || exit 1

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --quiet

echo "All checks passed."
