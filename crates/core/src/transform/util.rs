//! Shared helpers for the translation pipeline: error construction,
//! trip-count algebra, reduction identities/folds, and the name-collection
//! and identifier-renaming walks used by the outlining passes.

use std::collections::HashMap;

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{DirKind, RedOp};
use minic::token::Pos;
use minic::types::Ty;

use crate::analyze::*;

pub(crate) fn err(pos: Pos, msg: impl Into<String>) -> TransError {
    TransError { pos, msg: msg.into() }
}

pub(crate) fn sizeof_expr(ty: &Ty) -> Expr {
    b::e(ExprKind::SizeofTy(ty.clone()))
}

pub(crate) fn long_cast(e: Expr) -> Expr {
    b::cast(Ty::Long, e)
}

pub(crate) fn find_decl_ty(decls: &[(String, Ty)], name: &str) -> Option<Ty> {
    decls.iter().find(|(n, _)| n == name).map(|(_, t)| t.clone())
}

/// Trip count expression of a canonical loop (evaluates host- or
/// device-side depending on where it is spliced).
pub fn trip_count_expr(l: &LoopInfo) -> Expr {
    let s = l.step.abs();
    let (hi, lo) =
        if l.step > 0 { (l.ub.clone(), l.lb.clone()) } else { (l.lb.clone(), l.ub.clone()) };
    let span = b::bin(BinOp::Sub, long_cast(hi), long_cast(lo));
    let adj = if l.inclusive { s } else { s - 1 };
    let num = b::bin(BinOp::Add, span, b::int(adj));
    let q = b::bin(BinOp::Div, num, b::int(s));
    // Negative spans (empty loops) clamp to 0: (q > 0 ? q : 0).
    b::e(ExprKind::Ternary {
        cond: Box::new(b::bin(BinOp::Gt, q.clone(), b::int(0))),
        then_e: Box::new(q),
        else_e: Box::new(b::int(0)),
    })
}

pub(crate) fn red_identity(op: RedOp, ty: &Ty) -> Expr {
    let is32 = *ty == Ty::Float;
    match op {
        RedOp::Add => match ty {
            Ty::Float => b::e(ExprKind::FloatLit(0.0, true)),
            Ty::Double => b::e(ExprKind::FloatLit(0.0, false)),
            _ => b::int(0),
        },
        RedOp::Mul => match ty {
            Ty::Float => b::e(ExprKind::FloatLit(1.0, true)),
            Ty::Double => b::e(ExprKind::FloatLit(1.0, false)),
            _ => b::int(1),
        },
        RedOp::Max => match ty {
            Ty::Float | Ty::Double => b::e(ExprKind::FloatLit(-3.0e38, is32)),
            _ => b::int(i32::MIN as i64),
        },
        RedOp::Min => match ty {
            Ty::Float | Ty::Double => b::e(ExprKind::FloatLit(3.0e38, is32)),
            _ => b::int(i32::MAX as i64),
        },
    }
}

fn red_opcode(op: RedOp) -> i64 {
    match op {
        RedOp::Add => 0,
        RedOp::Mul => 1,
        RedOp::Max => 2,
        RedOp::Min => 3,
    }
}

/// Device-side fold of a local accumulator into `__red_<name>` (combined
/// kernels).
pub(crate) fn red_combine(name: &str, ty: &Ty, op: RedOp) -> Stmt {
    let ptr = b::ident(&format!("__red_{name}"));
    red_fold_stmt(ptr, b::ident(name), ty, op)
}

pub(crate) fn red_fold_stmt(ptr: Expr, val: Expr, ty: &Ty, op: RedOp) -> Stmt {
    if op == RedOp::Add {
        return b::expr_stmt(b::call("atomicAdd", vec![ptr, val]));
    }
    let f = match ty {
        Ty::Float => "cudadev_red_f32",
        Ty::Double => "cudadev_red_f64",
        _ => "cudadev_red_i32",
    };
    b::expr_stmt(b::call(f, vec![ptr, val, b::int(red_opcode(op))]))
}

/// Host-side reduction fold: `target = target <op> local`.
pub(crate) fn host_red_fold(target: Expr, local: Expr, op: RedOp) -> Stmt {
    let combined = match op {
        RedOp::Add => b::bin(BinOp::Add, target.clone(), local),
        RedOp::Mul => b::bin(BinOp::Mul, target.clone(), local),
        RedOp::Max => b::e(ExprKind::Ternary {
            cond: Box::new(b::bin(BinOp::Gt, target.clone(), local.clone())),
            then_e: Box::new(target.clone()),
            else_e: Box::new(local),
        }),
        RedOp::Min => b::e(ExprKind::Ternary {
            cond: Box::new(b::bin(BinOp::Lt, target.clone(), local.clone())),
            then_e: Box::new(target.clone()),
            else_e: Box::new(local),
        }),
    };
    b::expr_stmt(b::assign(target, combined))
}

/// All `section` bodies of a sections region (non-section statements are
/// treated as a leading section, per OpenMP).
pub(crate) fn collect_sections(body: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match body {
        Stmt::Block(bl) => {
            for s in &bl.stmts {
                match s {
                    Stmt::Omp(o) if o.dir.kind == DirKind::Section => {
                        out.push(o.body.as_deref().cloned().unwrap_or(Stmt::Empty));
                    }
                    Stmt::Empty => {}
                    other => out.push(other.clone()),
                }
            }
        }
        other => out.push(other.clone()),
    }
    out
}

/// Collect identifier names used in a statement (by name, pre-re-sema).
pub(crate) fn collect_used_names(s: &Stmt, out: &mut Vec<String>) {
    fn in_expr(e: &Expr, out: &mut Vec<String>) {
        if let ExprKind::Ident(n, _) = &e.kind {
            out.push(n.clone());
        }
        minic::interp::visit_child_exprs(e, &mut |c| in_expr(c, out));
    }
    minic::interp::visit_stmt_exprs(s, &mut |e| in_expr(e, out));
    if let Stmt::Omp(o) = s {
        for_each_clause_expr(&o.dir, &mut |e| in_expr(e, out));
    }
    minic::interp::visit_child_stmts(s, &mut |c| collect_used_names(c, out));
}

pub(crate) fn collect_expr_names(e: &Expr, out: &mut Vec<String>) {
    if let ExprKind::Ident(n, _) = &e.kind {
        out.push(n.clone());
    }
    minic::interp::visit_child_exprs(e, &mut |c| collect_expr_names(c, out));
}

pub(crate) fn collect_declared_names(s: &Stmt, out: &mut Vec<String>) {
    if let Stmt::Decl(d) = s {
        out.push(d.name.clone());
    }
    minic::interp::visit_child_stmts(s, &mut |c| collect_declared_names(c, out));
}

/// Replace identifier uses by name with replacement expressions (used for
/// shared-variable and reduction rewrites). Declarations shadowing the
/// name stop the replacement in their block… conservatively we replace all
/// uses; the translator avoids emitting shadowing declarations for renamed
/// variables.
pub fn rename_idents(s: &mut Stmt, map: &HashMap<String, Expr>) {
    if map.is_empty() {
        return;
    }
    match s {
        Stmt::Expr(e) => rename_expr(e, map),
        Stmt::Decl(d) => {
            if let Some(Init::Expr(e)) = &mut d.init {
                rename_expr(e, map);
            }
        }
        Stmt::Block(bl) => {
            for st in &mut bl.stmts {
                rename_idents(st, map);
            }
        }
        Stmt::If { cond, then_s, else_s } => {
            rename_expr(cond, map);
            rename_idents(then_s, map);
            if let Some(e) = else_s {
                rename_idents(e, map);
            }
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                rename_idents(i, map);
            }
            if let Some(c) = cond {
                rename_expr(c, map);
            }
            if let Some(st) = step {
                rename_expr(st, map);
            }
            rename_idents(body, map);
        }
        Stmt::While { cond, body } => {
            rename_expr(cond, map);
            rename_idents(body, map);
        }
        Stmt::DoWhile { body, cond } => {
            rename_idents(body, map);
            rename_expr(cond, map);
        }
        Stmt::Return(Some(e)) => rename_expr(e, map),
        Stmt::Omp(o) => {
            for c in &mut o.dir.clauses {
                use minic::omp::Clause as Cl;
                match c {
                    Cl::NumTeams(e)
                    | Cl::NumThreads(e)
                    | Cl::ThreadLimit(e)
                    | Cl::If(e)
                    | Cl::Device(e) => rename_expr(e, map),
                    Cl::Schedule { chunk: Some(e), .. } => rename_expr(e, map),
                    _ => {}
                }
            }
            if let Some(bd) = &mut o.body {
                rename_idents(bd, map);
            }
        }
        _ => {}
    }
}

pub fn rename_expr(e: &mut Expr, map: &HashMap<String, Expr>) {
    if let ExprKind::Ident(n, _) = &e.kind {
        if let Some(repl) = map.get(n) {
            *e = repl.clone();
            return;
        }
    }
    match &mut e.kind {
        ExprKind::Call { args, .. } => args.iter_mut().for_each(|a| rename_expr(a, map)),
        ExprKind::KernelLaunch { grid, block, args, .. } => {
            rename_expr(grid, map);
            rename_expr(block, map);
            args.iter_mut().for_each(|a| rename_expr(a, map));
        }
        ExprKind::Dim3 { x, y, z } => {
            rename_expr(x, map);
            if let Some(y) = y {
                rename_expr(y, map);
            }
            if let Some(z) = z {
                rename_expr(z, map);
            }
        }
        ExprKind::Member { base, .. } => rename_expr(base, map),
        ExprKind::Index { base, index } => {
            rename_expr(base, map);
            rename_expr(index, map);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::IncDec { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeofExpr(expr) => rename_expr(expr, map),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            rename_expr(lhs, map);
            rename_expr(rhs, map);
        }
        ExprKind::Ternary { cond, then_e, else_e } => {
            rename_expr(cond, map);
            rename_expr(then_e, map);
            rename_expr(else_e, map);
        }
        ExprKind::Comma(a, bx) => {
            rename_expr(a, map);
            rename_expr(bx, map);
        }
        _ => {}
    }
}
