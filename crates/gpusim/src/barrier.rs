//! PTX-style named barriers (`bar.sync id, count`).
//!
//! Semantics follow §4.2.2 of the paper and the PTX ISA:
//!
//! * 16 barriers per block;
//! * arrival is **per warp** — a warp with any active lane arrives on
//!   behalf of all 32 of its threads, which is why the expected count must
//!   be a multiple of the warp size (the paper rounds N participants up to
//!   X = W⌈N/W⌉);
//! * different subsets of warps can synchronize on different barrier ids
//!   concurrently.
//!
//! Besides releasing the OS threads that simulate the warps, the barrier
//! synchronizes their *virtual clocks*: every released warp resumes at the
//! latest arrival time plus the barrier latency.

use std::time::Duration;

use vmcommon::sync::{Condvar, Mutex};

use crate::timing;

/// Error produced when a barrier is never satisfied (a deadlocked guest).
#[derive(Clone, Debug)]
pub struct BarrierTimeout {
    pub barrier: u32,
    pub expected_threads: u32,
    pub arrived_threads: u32,
}

struct State {
    /// Threads that have arrived in the current generation.
    arrived: u32,
    /// Incremented on every release.
    generation: u64,
    /// Max virtual clock among arrivals of the current generation.
    max_cycles: u64,
    /// Clock value all waiters of the *previous* generation resume at.
    release_cycles: u64,
}

/// One named barrier.
pub struct NamedBarrier {
    id: u32,
    st: Mutex<State>,
    cv: Condvar,
}

/// Default for how long a simulated barrier may block host-side before we
/// declare the guest deadlocked.
pub const BARRIER_HOST_TIMEOUT: Duration = Duration::from_secs(30);

/// The effective host-side deadlock timeout: `OMPI_BARRIER_TIMEOUT_MS`
/// (milliseconds) when set and parseable, else [`BARRIER_HOST_TIMEOUT`].
/// Read once per process; tests that need a short timeout (so a deadlock
/// regression fails in ~200 ms instead of stalling 30 s) set the variable
/// before the first barrier wait.
pub fn barrier_host_timeout() -> Duration {
    static TIMEOUT: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        std::env::var("OMPI_BARRIER_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
            .unwrap_or(BARRIER_HOST_TIMEOUT)
    })
}

impl NamedBarrier {
    pub fn new(id: u32) -> NamedBarrier {
        NamedBarrier {
            id,
            st: Mutex::new(State { arrived: 0, generation: 0, max_cycles: 0, release_cycles: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Arrive on behalf of one warp (32 threads) and wait until
    /// `expected_threads` have arrived. Updates the caller's virtual clock.
    pub fn sync(&self, expected_threads: u32, cycles: &mut u64) -> Result<(), BarrierTimeout> {
        debug_assert_eq!(expected_threads % timing::WARP_SIZE, 0);
        let mut st = self.st.lock();
        st.arrived += timing::WARP_SIZE;
        st.max_cycles = st.max_cycles.max(*cycles);
        if st.arrived >= expected_threads {
            st.release_cycles = st.max_cycles + timing::BARRIER_LAT;
            st.arrived = 0;
            st.max_cycles = 0;
            st.generation += 1;
            *cycles = st.release_cycles;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        loop {
            if self.cv.wait_for(&mut st, barrier_host_timeout()).timed_out() {
                let arrived = st.arrived;
                // Undo our arrival so a late retry does not double-count.
                st.arrived = st.arrived.saturating_sub(timing::WARP_SIZE);
                return Err(BarrierTimeout {
                    barrier: self.id,
                    expected_threads,
                    arrived_threads: arrived,
                });
            }
            if st.generation != gen {
                *cycles = st.release_cycles;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn releases_when_count_reached() {
        let b = Arc::new(NamedBarrier::new(0));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut cycles = 100 * (w + 1);
                b.sync(128, &mut cycles).unwrap();
                cycles
            }));
        }
        let cycles: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Everyone resumes at the same, latest-arrival-based clock.
        for c in &cycles {
            assert_eq!(*c, 400 + timing::BARRIER_LAT);
        }
    }

    #[test]
    fn partial_subsets_independent() {
        // Two warps sync on barrier 1 with count 64 while a third warp is
        // unrelated — must not deadlock.
        let b1 = Arc::new(NamedBarrier::new(1));
        let t1 = {
            let b = b1.clone();
            std::thread::spawn(move || {
                let mut c = 10;
                b.sync(64, &mut c).unwrap();
                c
            })
        };
        let t2 = {
            let b = b1.clone();
            std::thread::spawn(move || {
                let mut c = 50;
                b.sync(64, &mut c).unwrap();
                c
            })
        };
        assert_eq!(t1.join().unwrap(), 50 + timing::BARRIER_LAT);
        assert_eq!(t2.join().unwrap(), 50 + timing::BARRIER_LAT);
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(NamedBarrier::new(2));
        for round in 0..3u64 {
            let mut handles = Vec::new();
            for w in 0..2u64 {
                let b = b.clone();
                handles.push(std::thread::spawn(move || {
                    let mut c = round * 1000 + w;
                    b.sync(64, &mut c).unwrap();
                    c
                }));
            }
            for h in handles {
                assert_eq!(h.join().unwrap(), round * 1000 + 1 + timing::BARRIER_LAT);
            }
        }
    }
}
