//! A `printf(3)` subset shared by the host interpreter and the device-side
//! `printf` intrinsic.
//!
//! Supported conversions: `%d %i %u %ld %lu %lld %llu %f %lf %e %g %c %s %p
//! %x %X %%` with optional `-`/`0` flags, width and precision. `%s` consumes
//! a pre-read guest string (the caller resolves guest pointers).

use crate::Value;

/// An argument to [`format()`]: either a scalar or an already-resolved string.
#[derive(Clone, Debug)]
pub enum FmtArg {
    Val(Value),
    Str(String),
}

/// Format `spec` with `args`. Unknown conversions are copied through
/// verbatim; missing arguments print as `<?>` (matching C's UB with
/// something diagnosable rather than trapping).
pub fn format(spec: &str, args: &[FmtArg]) -> String {
    let mut out = String::with_capacity(spec.len() + 16);
    let mut chars = spec.chars().peekable();
    let mut next_arg = 0usize;
    let take = |next_arg: &mut usize| -> Option<FmtArg> {
        let a = args.get(*next_arg).cloned();
        *next_arg += 1;
        a
    };

    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            out.push('%');
            continue;
        }
        // Flags.
        let mut left = false;
        let mut zero = false;
        loop {
            match chars.peek() {
                Some('-') => {
                    left = true;
                    chars.next();
                }
                Some('0') => {
                    zero = true;
                    chars.next();
                }
                Some('+') | Some(' ') => {
                    chars.next();
                }
                _ => break,
            }
        }
        // Width.
        let mut width = 0usize;
        while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
            width = width * 10 + d as usize;
            chars.next();
        }
        // Precision.
        let mut prec: Option<usize> = None;
        if chars.peek() == Some(&'.') {
            chars.next();
            let mut p = 0usize;
            while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                p = p * 10 + d as usize;
                chars.next();
            }
            prec = Some(p);
        }
        // Length modifiers (l, ll, z) — parsed and ignored; Value carries width.
        while matches!(chars.peek(), Some('l') | Some('z') | Some('h')) {
            chars.next();
        }
        let conv = match chars.next() {
            Some(c) => c,
            None => {
                out.push('%');
                break;
            }
        };
        let body = match conv {
            'd' | 'i' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => v.as_i64().to_string(),
                Some(FmtArg::Str(_)) | None => "<?>".into(),
            },
            'u' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => (v.as_i64() as u64).to_string(),
                _ => "<?>".into(),
            },
            'x' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => format!("{:x}", v.as_i64() as u64),
                _ => "<?>".into(),
            },
            'X' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => format!("{:X}", v.as_i64() as u64),
                _ => "<?>".into(),
            },
            'f' | 'F' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => format!("{:.*}", prec.unwrap_or(6), v.as_f64()),
                _ => "<?>".into(),
            },
            'e' | 'E' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => {
                    let s = format!("{:.*e}", prec.unwrap_or(6), v.as_f64());
                    if conv == 'E' {
                        s.to_uppercase()
                    } else {
                        s
                    }
                }
                _ => "<?>".into(),
            },
            'g' | 'G' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => {
                    // Shortest of %e/%f like C's %g, simplified.
                    let x = v.as_f64();
                    if x != 0.0 && (x.abs() < 1e-4 || x.abs() >= 1e6) {
                        format!("{:e}", x)
                    } else {
                        let s = format!("{}", x);
                        s
                    }
                }
                _ => "<?>".into(),
            },
            'c' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => {
                    char::from_u32(v.as_i64() as u32).unwrap_or('\u{fffd}').to_string()
                }
                _ => "<?>".into(),
            },
            's' => match take(&mut next_arg) {
                Some(FmtArg::Str(s)) => match prec {
                    Some(p) => s.chars().take(p).collect(),
                    None => s,
                },
                Some(FmtArg::Val(_)) | None => "<?>".into(),
            },
            'p' => match take(&mut next_arg) {
                Some(FmtArg::Val(v)) => format!("{:#x}", v.as_ptr()),
                _ => "<?>".into(),
            },
            other => {
                out.push('%');
                out.push(other);
                continue;
            }
        };
        // Apply width padding.
        if body.len() >= width {
            out.push_str(&body);
        } else if left {
            out.push_str(&body);
            out.extend(std::iter::repeat_n(' ', width - body.len()));
        } else if zero && !matches!(conv, 's' | 'c') {
            // Keep the sign in front of zero padding.
            if let Some(rest) = body.strip_prefix('-') {
                out.push('-');
                out.extend(std::iter::repeat_n('0', width - body.len()));
                out.push_str(rest);
            } else {
                out.extend(std::iter::repeat_n('0', width - body.len()));
                out.push_str(&body);
            }
        } else {
            out.extend(std::iter::repeat_n(' ', width - body.len()));
            out.push_str(&body);
        }
    }
    out
}

/// Parse a human-readable byte size: a decimal count with an optional
/// `K`/`M`/`G` suffix (binary units, case-insensitive, optional trailing
/// `B`/`iB`). Used for `OMPI_DEV_MEM=64M`-style environment knobs.
pub fn parse_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    if t.is_empty() {
        return Err("empty size".into());
    }
    let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return Err(format!("size '{t}' must start with a number"));
    }
    let n: u64 = digits.parse().map_err(|_| format!("size '{t}' out of range"))?;
    let suffix = t[digits.len()..].trim().to_ascii_lowercase();
    let shift = match suffix.as_str() {
        "" | "b" => 0,
        "k" | "kb" | "kib" => 10,
        "m" | "mb" | "mib" => 20,
        "g" | "gb" | "gib" => 30,
        other => return Err(format!("unknown size suffix '{other}' in '{t}'")),
    };
    n.checked_shl(shift).filter(|v| v >> shift == n).ok_or(format!("size '{t}' overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: impl Into<Value>) -> FmtArg {
        FmtArg::Val(x.into())
    }

    #[test]
    fn parse_size_accepts_binary_suffixes() {
        assert_eq!(parse_size("64M"), Ok(64 << 20));
        assert_eq!(parse_size("2g"), Ok(2 << 30));
        assert_eq!(parse_size("512KiB"), Ok(512 << 10));
        assert_eq!(parse_size("1024"), Ok(1024));
        assert_eq!(parse_size(" 16 MB "), Ok(16 << 20));
    }

    #[test]
    fn parse_size_rejects_garbage() {
        assert!(parse_size("").is_err());
        assert!(parse_size("M").is_err());
        assert!(parse_size("12X").is_err());
        assert!(parse_size("99999999999999999999").is_err());
    }

    #[test]
    fn basic_conversions() {
        assert_eq!(format("x=%d y=%f", &[v(42), v(1.5)]), "x=42 y=1.500000");
        assert_eq!(format("%s!", &[FmtArg::Str("hi".into())]), "hi!");
        assert_eq!(format("%c%c", &[v(104), v(105)]), "hi");
        assert_eq!(format("100%%", &[]), "100%");
    }

    #[test]
    fn width_and_precision() {
        assert_eq!(format("[%5d]", &[v(42)]), "[   42]");
        assert_eq!(format("[%-5d]", &[v(42)]), "[42   ]");
        assert_eq!(format("[%05d]", &[v(-42)]), "[-0042]");
        assert_eq!(format("[%.2f]", &[v(12.3456)]), "[12.35]");
    }

    #[test]
    fn length_modifiers_ignored() {
        assert_eq!(format("%ld %lu %lld", &[v(1i64), v(2i64), v(3i64)]), "1 2 3");
    }

    #[test]
    fn missing_args_diagnosable() {
        assert_eq!(format("%d %d", &[v(1)]), "1 <?>");
    }
}
