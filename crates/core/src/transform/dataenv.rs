//! Pipeline pass: **data environment** (§3, §4.2.1).
//!
//! Lowers the device data environment to `__dev_*` runtime calls: map
//! clauses of `target` regions, stand-alone `target [enter|exit] data`,
//! `target update`, and the host-side replacement of an offloaded region —
//! guard on device health, map entries, `__dev_offload`, unmaps in reverse
//! order, and the graceful-degradation host fallback.
//!
//! Every `__dev_*` call takes a leading device-id argument resolved from
//! the construct's `device()` clause (`-1` = the default-device ICV), so
//! one translated program can drive several registered devices.

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{Clause, Directive, MapKind as OmpMapKind};
use minic::token::Pos;
use minic::types::{ArrayLen, Ty};

use crate::analyze::*;

use super::outline::OutlinedRegion;
use super::{err, long_cast, sizeof_expr, HostCtx, MapItem, Translator, VarRole};

pub(crate) fn map_kind_code(kind: OmpMapKind) -> i64 {
    match kind {
        OmpMapKind::To => 0,
        OmpMapKind::From => 1,
        OmpMapKind::ToFrom => 2,
        OmpMapKind::Alloc => 3,
        OmpMapKind::Release => 4,
        OmpMapKind::Delete => 5,
    }
}

/// The device-id expression of a stand-alone data directive.
fn device_expr(dir: &Directive) -> Expr {
    dir.clause_device().cloned().unwrap_or_else(|| b::int(-1))
}

impl<'p> Translator<'p> {
    /// Map-clause items of a directive → (base address expr, byte-size expr,
    /// kind), resolved against the enclosing frame.
    pub(crate) fn map_items(
        &mut self,
        dir: &Directive,
        ctx: &HostCtx<'_>,
        pos: Pos,
    ) -> TResult<Vec<MapItem>> {
        let mut out = Vec::new();
        for (kind, item) in dir.maps() {
            let slot = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == item.name)
                .ok_or_else(|| err(pos, format!("map of unknown variable `{}`", item.name)))?;
            let ty = slot.ty.clone();
            let decayed = ty.decayed();
            let (base, bytes, param_ty) = if let Ty::Ptr(pointee) = &decayed {
                let sec = item.sections.first();
                let lower = sec.and_then(|s| s.lower.clone()).unwrap_or_else(|| b::int(0));
                let length = match sec.and_then(|s| s.length.clone()) {
                    Some(l) => l,
                    None => match &ty {
                        // Whole array object.
                        Ty::Array(_, ArrayLen::Const(n)) => b::int(*n as i64),
                        Ty::Array(_, ArrayLen::Expr(e)) => (**e).clone(),
                        _ => {
                            return Err(err(
                                pos,
                                format!(
                                    "map of pointer `{}` needs an array section (e.g. {}[0:n])",
                                    item.name, item.name
                                ),
                            ))
                        }
                    },
                };
                let base = b::bin(BinOp::Add, b::ident(&item.name), lower);
                let bytes = b::bin(BinOp::Mul, long_cast(length), sizeof_expr(pointee));
                (base, bytes, decayed.clone())
            } else {
                // Scalar mapped by address.
                let base = b::addr_of(b::ident(&item.name));
                let bytes = sizeof_expr(&ty);
                (base, bytes, Ty::Ptr(Box::new(ty.clone())))
            };
            out.push((item.name.clone(), kind, base, bytes, param_ty));
        }
        Ok(out)
    }

    /// Stand-alone enter/exit data.
    pub(crate) fn map_calls(
        &mut self,
        dir: &Directive,
        ctx: &HostCtx<'_>,
        enter: bool,
    ) -> TResult<Stmt> {
        let items = self.map_items(dir, ctx, Pos::default())?;
        let dev_var = self.tmp("dev");
        let mut stmts = vec![b::decl(&dev_var, Ty::Int, Some(device_expr(dir)))];
        for (_, kind, base, bytes, _) in items {
            let code = b::int(map_kind_code(kind));
            if enter {
                stmts.push(b::expr_stmt(b::call(
                    "__dev_map",
                    vec![b::ident(&dev_var), base, bytes, code],
                )));
            } else {
                stmts.push(b::expr_stmt(b::call(
                    "__dev_unmap",
                    vec![b::ident(&dev_var), base, code],
                )));
            }
        }
        Ok(b::block(stmts))
    }

    pub(crate) fn lower_target_update(
        &mut self,
        dir: &Directive,
        ctx: &HostCtx<'_>,
    ) -> TResult<Stmt> {
        let dev_var = self.tmp("dev");
        let mut stmts = vec![b::decl(&dev_var, Ty::Int, Some(device_expr(dir)))];
        for c in &dir.clauses {
            let (items, to_device) = match c {
                Clause::UpdateTo(items) => (items, true),
                Clause::UpdateFrom(items) => (items, false),
                _ => continue,
            };
            for item in items {
                let slot =
                    ctx.frame.slots.iter().find(|sl| sl.name == item.name).ok_or_else(|| {
                        err(Pos::default(), format!("update of unknown variable `{}`", item.name))
                    })?;
                let ty = slot.ty.clone();
                let decayed = ty.decayed();
                let (base, bytes) = if let Ty::Ptr(pointee) = &decayed {
                    let sec = item.sections.first();
                    let lower = sec.and_then(|s| s.lower.clone()).unwrap_or_else(|| b::int(0));
                    let length = sec
                        .and_then(|s| s.length.clone())
                        .or_else(|| match &ty {
                            Ty::Array(_, ArrayLen::Const(n)) => Some(b::int(*n as i64)),
                            Ty::Array(_, ArrayLen::Expr(e)) => Some((**e).clone()),
                            _ => None,
                        })
                        .ok_or_else(|| {
                            err(
                                Pos::default(),
                                format!("update of `{}` needs an array section", item.name),
                            )
                        })?;
                    (
                        b::bin(BinOp::Add, b::ident(&item.name), lower),
                        b::bin(BinOp::Mul, long_cast(length), sizeof_expr(pointee)),
                    )
                } else {
                    (b::addr_of(b::ident(&item.name)), sizeof_expr(&ty))
                };
                stmts.push(b::expr_stmt(b::call(
                    "__dev_update",
                    vec![b::ident(&dev_var), base, bytes, b::int(to_device as i64)],
                )));
            }
        }
        Ok(b::block(stmts))
    }

    pub(crate) fn lower_target_data(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let items = self.map_items(&o.dir, ctx, o.pos)?;
        let dev_var = self.tmp("dev");
        let mut stmts = vec![b::decl(&dev_var, Ty::Int, Some(device_expr(&o.dir)))];
        for (_, kind, base, bytes, _) in &items {
            stmts.push(b::expr_stmt(b::call(
                "__dev_map",
                vec![b::ident(&dev_var), base.clone(), bytes.clone(), b::int(map_kind_code(*kind))],
            )));
        }
        stmts.push(self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?);
        for (_, kind, base, _, _) in items.iter().rev() {
            stmts.push(b::expr_stmt(b::call(
                "__dev_unmap",
                vec![b::ident(&dev_var), base.clone(), b::int(map_kind_code(*kind))],
            )));
        }
        Ok(b::block(stmts))
    }

    /// Host-side replacement of an outlined target region: the data
    /// environment, the `__dev_offload` launch, and the graceful host
    /// fallback.
    pub(crate) fn host_replacement(
        &mut self,
        o: &OmpStmt,
        ctx: &HostCtx<'_>,
        reg: &OutlinedRegion,
    ) -> TResult<Stmt> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "target without a body"))?;
        let kid = reg.kid;
        // The region's device id, bound once so every __dev_* call of this
        // region targets the same device even if the default-device ICV
        // changes concurrently.
        let dev_var = format!("__ompi_dev_{kid}");
        let dev = || b::ident(&dev_var);

        // Scalars in map clauses were demoted to by-value parameters; only
        // pointer/array items need device buffers.
        let buffer_maps: Vec<_> = reg
            .maps
            .iter()
            .filter(|(n, ..)| {
                ctx.frame
                    .slots
                    .iter()
                    .find(|sl| sl.name == *n)
                    .map(|sl| sl.ty.decayed().is_ptr())
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let mut stmts: Vec<Stmt> = Vec::new();
        // map entries (region lifetime) — includes mapped-but-unreferenced.
        for (_, kind, base, bytes, _) in &buffer_maps {
            stmts.push(b::expr_stmt(b::call(
                "__dev_map",
                vec![dev(), base.clone(), bytes.clone(), b::int(map_kind_code(*kind))],
            )));
        }
        // Written-back mapped scalars need a device buffer.
        for name in &reg.scalar_writebacks {
            stmts.push(b::expr_stmt(b::call(
                "__dev_map",
                vec![
                    dev(),
                    b::addr_of(b::ident(name)),
                    sizeof_expr(
                        &ctx.frame
                            .slots
                            .iter()
                            .find(|sl| sl.name == *name)
                            .map(|sl| sl.ty.clone())
                            .unwrap_or(Ty::Int),
                    ),
                    b::int(map_kind_code(OmpMapKind::ToFrom)),
                ],
            )));
        }
        // Reduction scalars: initialize + map tofrom.
        for (name, _, role) in &reg.roles {
            if matches!(role, VarRole::Reduction(_)) {
                stmts.push(b::expr_stmt(b::call(
                    "__dev_map",
                    vec![
                        dev(),
                        b::addr_of(b::ident(name)),
                        sizeof_expr(
                            &ctx.frame
                                .slots
                                .iter()
                                .find(|sl| sl.name == *name)
                                .map(|sl| sl.ty.clone())
                                .unwrap_or(Ty::Int),
                        ),
                        b::int(map_kind_code(OmpMapKind::ToFrom)),
                    ],
                )));
            }
        }

        // Launch: __dev_offload(dev, "module", "kernel", mw, ndims, tc0,
        // tc1, tc2, teams, threads, tileable, nowait, (arg, row_bytes)…).
        // Each
        // launch argument travels with its per-iteration byte stride so
        // the memory governor can stream sliceable buffers tile by tile
        // when they do not fit on the device (row 0 = scalar / resident).
        let ndims = if reg.combined { reg.loops.len() as i64 } else { 0 };
        let mut offload_args: Vec<Expr> = vec![
            dev(),
            b::e(ExprKind::StrLit(reg.module_name.clone())),
            b::e(ExprKind::StrLit(reg.kernel_fn.clone())),
            b::int(!reg.combined as i64),
            b::int(ndims),
        ];
        for d in 0..3usize {
            if reg.combined && d < reg.loops.len() {
                offload_args.push(long_cast(super::trip_count_expr(&reg.loops[d])));
            } else {
                offload_args.push(b::int(1));
            }
        }
        offload_args.push(match dir.clause_num_teams() {
            Some(e) => long_cast(e.clone()),
            None => b::int(0),
        });
        offload_args.push(match dir.clause_num_threads() {
            Some(e) => long_cast(e.clone()),
            None => match dir.clause_thread_limit() {
                Some(e) => long_cast(e.clone()),
                None => b::int(0),
            },
        });
        offload_args.push(b::int(reg.tileable as i64));
        offload_args.push(b::int(dir.clause_nowait() as i64));
        for (arg, row) in reg.launch_args.iter().zip(&reg.launch_rows) {
            offload_args.push(arg.clone());
            offload_args.push(long_cast(row.clone()));
        }
        // `__dev_offload` returns 1 when the kernel ran on the device, 0 on
        // a terminal device failure — record the latter in the fallback
        // flag so the region re-executes on the host below.
        let fb_var = format!("__ompi_fb_{kid}");
        stmts.push(b::expr_stmt(b::assign(
            b::ident(&fb_var),
            b::bin(BinOp::Eq, b::call("__dev_offload", offload_args), b::int(0)),
        )));

        // Unmap (reverse order), reductions and written-back scalars last.
        // `__dev_unmap` returns 0 when a needed copy-back was lost (device
        // died between launch and unmap); fold that into the fallback flag
        // with `|` (not `||` — the unmap call must always execute).
        let unmap_into_fb = |stmts: &mut Vec<Stmt>, args: Vec<Expr>, copies_back: bool| {
            let call = b::call("__dev_unmap", args);
            if copies_back {
                stmts.push(b::expr_stmt(b::assign(
                    b::ident(&fb_var),
                    b::bin(BinOp::BitOr, b::ident(&fb_var), b::bin(BinOp::Eq, call, b::int(0))),
                )));
            } else {
                stmts.push(b::expr_stmt(call));
            }
        };
        for name in reg.scalar_writebacks.iter().rev() {
            unmap_into_fb(
                &mut stmts,
                vec![dev(), b::addr_of(b::ident(name)), b::int(map_kind_code(OmpMapKind::ToFrom))],
                true,
            );
        }
        for (name, _, role) in reg.roles.iter().rev() {
            if matches!(role, VarRole::Reduction(_)) {
                unmap_into_fb(
                    &mut stmts,
                    vec![
                        dev(),
                        b::addr_of(b::ident(name)),
                        b::int(map_kind_code(OmpMapKind::ToFrom)),
                    ],
                    true,
                );
            }
        }
        for (_, kind, base, _, _) in buffer_maps.iter().rev() {
            unmap_into_fb(
                &mut stmts,
                vec![dev(), base.clone(), b::int(map_kind_code(*kind))],
                matches!(kind, OmpMapKind::From | OmpMapKind::ToFrom),
            );
        }
        // Graceful degradation (host fallback): guard the offload on device
        // health, and re-execute the region body on the host whenever its
        // results did not reach host memory — `__dev_ok` said the device is
        // down, `__dev_offload` reported a terminal failure, or the device
        // died before any copy-back committed. In all three cases host
        // memory still holds the pre-region state, so re-execution is safe;
        // a loss after a *partial* commit traps instead (see runner.rs).
        let fallback_body = self.host_stmt(body, ctx)?;
        // Observability brackets: the whole replacement is one target-region
        // span on the resolved device; a taken fallback path is its own span
        // attributed to the host device.
        let construct =
            if reg.combined { "target teams distribute parallel for" } else { "target" };
        let offload_block = b::block(vec![
            b::decl(&dev_var, Ty::Int, Some(reg.dev_expr.clone())),
            b::decl(&fb_var, Ty::Int, Some(b::int(1))),
            b::expr_stmt(b::call(
                "__dev_region_begin",
                vec![dev(), b::e(ExprKind::StrLit(construct.to_string()))],
            )),
            Stmt::If {
                cond: b::call("__dev_ok", vec![dev()]),
                then_s: Box::new(b::block(stmts)),
                else_s: None,
            },
            Stmt::If {
                cond: b::ident(&fb_var),
                then_s: Box::new(b::block(vec![
                    b::expr_stmt(b::call("__dev_fb_begin", vec![dev()])),
                    fallback_body,
                    b::expr_stmt(b::call("__dev_fb_end", vec![dev()])),
                ])),
                else_s: None,
            },
            b::expr_stmt(b::call("__dev_region_end", vec![dev()])),
        ]);

        // if(...) clause: false → run on the host instead.
        if let Some(cond) = dir.clause_if() {
            let host_body = self.host_stmt(body, ctx)?;
            return Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(offload_block),
                else_s: Some(Box::new(host_body)),
            });
        }
        Ok(offload_block)
    }
}
