#!/usr/bin/env sh
# Repo-wide quality gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --quiet

echo "All checks passed."
