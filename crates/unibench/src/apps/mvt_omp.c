/* mvt: x1 += A y1 ; x2 += A^T y2 — OpenMP offload. */
void run(int n, float *a, float *x1, float *x2, float *y1, float *y2)
{
    #pragma omp target data map(to: a[0:n*n], y1[0:n], y2[0:n]) map(tofrom: x1[0:n], x2[0:n])
    {
        #pragma omp target teams distribute parallel for num_threads(256) \
                map(to: a[0:n*n], y1[0:n]) map(tofrom: x1[0:n])
        for (int i = 0; i < n; i++) {
            float t = x1[i];
            for (int j = 0; j < n; j++)
                t += a[i * n + j] * y1[j];
            x1[i] = t;
        }
        #pragma omp target teams distribute parallel for num_threads(256) \
                map(to: a[0:n*n], y2[0:n]) map(tofrom: x2[0:n])
        for (int i = 0; i < n; i++) {
            float t = x2[i];
            for (int j = 0; j < n; j++)
                t += a[j * n + i] * y2[j];
            x2[i] = t;
        }
    }
}
