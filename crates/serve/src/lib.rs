//! `serve` — offload-as-a-service: a long-running multi-tenant batch
//! server over the simulated device fleet.
//!
//! The paper's runtime is a one-shot process: compile one program, build
//! one [`ompi_core::Runner`] (which constructs its own `DeviceRegistry`),
//! run `main`, exit. This crate inverts that ownership for a server that
//! stays up: a [`Scheduler`](scheduler) owns the device fleet, tenants
//! submit compiled guest programs as jobs, and worker threads execute each
//! job through the existing `Runner` machinery against a per-job view of
//! the fleet.
//!
//! The moving parts:
//!
//! * **Tenants & fairness** — per-tenant FIFO queues with stride
//!   (weighted-fair) scheduling and a high-priority lane. A tenant with
//!   weight 2 gets twice the pick rate of a weight-1 tenant under
//!   contention; no tenant starves.
//! * **Admission control** — typed [`ServeError::Overloaded`] rejections
//!   instead of unbounded queues: per-tenant pending caps, a global queue
//!   cap, and a memory gate driven by the governor's
//!   [`cudadev::MemPressure`] export (a job declaring a `mem_hint` larger
//!   than any healthy device could free up is refused at submit time).
//! * **Device affinity** — a tenant's jobs prefer the device that ran its
//!   previous job, where its kernel modules are still resident in the
//!   module cache and its buffers may still sit in the governor's LRU
//!   transfer cache. Placement outcomes are counted as
//!   `serve.affinity.{hit,miss,reroute}`.
//! * **Observability** — aggregate and per-tenant `job_latency_us`
//!   histograms (p50/p95/p99 via [`obs::Hist::percentile`]), job counters
//!   under the server's own metrics pid, and a flight-recorder post-mortem
//!   on every aborted job.
//!
//! Configuration is snapshotted once at [`Server::new`] through
//! [`ompi_core::ResolvedConfig`]; no job ever reads the environment.

mod config;
mod scheduler;
mod server;

pub use config::{ServeConfig, TenantConfig};
pub use server::Server;

use vmcommon::Value;

/// A submitted job's handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A registered program's handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProgramId(pub u64);

/// Scheduling lane for a job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    #[default]
    Normal,
    /// Picked before any `Normal` job, still weighted-fair within the lane.
    High,
}

/// A job submission: which program, which entry point, with what
/// arguments.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub program: ProgramId,
    /// Guest function to call (default `main`).
    pub entry: String,
    pub args: Vec<Value>,
    pub priority: Priority,
    /// Advisory device-memory footprint in bytes; the admission gate
    /// refuses the job if no healthy device could free this much. `0`
    /// opts out of the gate.
    pub mem_hint: u64,
}

impl JobSpec {
    pub fn new(program: ProgramId) -> JobSpec {
        JobSpec {
            program,
            entry: "main".to_string(),
            args: Vec::new(),
            priority: Priority::Normal,
            mem_hint: 0,
        }
    }
}

/// A finished job.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub id: JobId,
    pub tenant: String,
    /// Fleet device the job ran on; `None` means host execution (the
    /// whole fleet was broken).
    pub device: Option<usize>,
    /// The entry point's return value, or the typed runner error text.
    pub value: Result<Value, String>,
    /// Captured guest stdout plus device printf output.
    pub output: String,
    /// Wall-clock submit→completion latency in microseconds.
    pub latency_us: u64,
}

/// Server-level errors. Job-level guest failures are *not* here — they
/// come back in [`JobResult::value`] so one tenant's crash never looks
/// like a server fault.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Admission control refused the job; `reason` is one of
    /// `tenant_queue_full`, `global_queue_full`, `mem_pressure`.
    Overloaded {
        reason: &'static str,
    },
    UnknownTenant(String),
    UnknownProgram(ProgramId),
    /// The program does not belong to the submitting tenant.
    WrongTenant {
        program: ProgramId,
        owner: String,
    },
    Compile(String),
    Config(ompi_core::ConfigError),
    FaultPlan(String),
    Io(String),
    /// The server is shutting down; no new jobs.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { reason } => write!(f, "server overloaded: {reason}"),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            ServeError::UnknownProgram(p) => write!(f, "unknown program {p:?}"),
            ServeError::WrongTenant { program, owner } => {
                write!(f, "program {program:?} belongs to tenant `{owner}`")
            }
            ServeError::Compile(e) => write!(f, "compile: {e}"),
            ServeError::Config(e) => write!(f, "config: {e}"),
            ServeError::FaultPlan(e) => write!(f, "fault plan: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}
