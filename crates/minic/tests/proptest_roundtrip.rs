//! Property tests on the frontend: pretty-printing is a fixed point under
//! reparsing, for randomly generated expressions and programs.

use minic::ast::{BinOp, Expr, ExprKind, UnOp};
use minic::parser::parse_expr_str;
use minic::pretty;
use proptest::prelude::*;

/// Strategy for random (valid) expressions over a fixed identifier pool.
fn arb_expr() -> impl Strategy<Value = Expr> {
    use minic::ast::build as b;
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(b::int),
        prop_oneof![Just("x"), Just("y"), Just("n"), Just("acc")].prop_map(b::ident),
        (any::<f32>().prop_filter("finite", |v| v.is_finite()))
            .prop_map(|v| b::e(ExprKind::FloatLit(v as f64, true))),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(l, r, op)| b::bin(op, l, r)),
            (inner.clone(), arb_unop()).prop_map(|(e, op)| b::e(ExprKind::Unary {
                op,
                expr: Box::new(e)
            })),
            (inner.clone(), inner.clone()).prop_map(|(base, idx)| b::index(base, idx)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| b::e(
                ExprKind::Ternary {
                    cond: Box::new(c),
                    then_e: Box::new(t),
                    else_e: Box::new(e)
                }
            )),
            (inner.clone(), proptest::collection::vec(inner, 0..3)).prop_map(|(a, more)| {
                let mut args = vec![a];
                args.extend(more);
                b::call("f", args)
            }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Lt),
        Just(BinOp::Gt),
        Just(BinOp::Le),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::LogAnd),
        Just(BinOp::LogOr),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::BitXor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)]
}

proptest! {
    /// print(parse(print(e))) == print(e): the printer emits enough
    /// parentheses to preserve structure, and is a reparse fixed point.
    #[test]
    fn expr_print_parse_fixed_point(e in arb_expr()) {
        let printed = pretty::expr(&e);
        let reparsed = parse_expr_str(&printed)
            .unwrap_or_else(|err| panic!("printed expr must reparse: `{printed}`: {err}"));
        prop_assert_eq!(pretty::expr(&reparsed), printed);
    }

    /// Random integer-expression evaluation agrees between the original
    /// AST and the reparse of its printed form (structure really survives).
    #[test]
    fn expr_semantics_survive_roundtrip(e in arb_expr()) {
        let printed = pretty::expr(&e);
        let reparsed = parse_expr_str(&printed).unwrap();
        // Compare constant folds where both sides fold.
        if let (Some(a), Some(b)) = (e.const_int(), reparsed.const_int()) {
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn program_print_is_reparse_fixed_point() {
    // A program exercising every statement form.
    let src = r#"
int g = 3;
float helper(float v) { return v * 2.0f; }
int main() {
    int a[4];
    float m[2][3];
    int i = 0;
    while (i < 4) { a[i] = i; i++; }
    do { i--; } while (i > 0);
    for (int k = 0; k < 2; k++)
        for (int j = 0; j < 3; j++)
            m[k][j] = helper((float) (k + j));
    if (a[1] > 0 && m[0][0] >= 0.0f) i = 5; else i = -5;
    int *p = &a[2];
    *p += 7;
    return g + i + a[2];
}
"#;
    let p1 = minic::parse(src).unwrap();
    let t1 = pretty::program(&p1);
    let p2 = minic::parse(&t1).unwrap();
    let t2 = pretty::program(&p2);
    assert_eq!(t1, t2);
}

#[test]
fn roundtripped_program_runs_identically() {
    use minic::interp::{Interp, Machine, NoHooks};
    use std::sync::Arc;
    let src = r#"
int main() {
    int s = 0;
    for (int i = 1; i <= 100; i++)
        if (i % 3 == 0 || i % 5 == 0) s += i;
    return s;
}
"#;
    let run = |text: &str| {
        let m = Machine::from_source(text).unwrap();
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        i.run_main().unwrap()
    };
    let printed = pretty::program(&minic::parse(src).unwrap());
    assert_eq!(run(src), run(&printed));
}
