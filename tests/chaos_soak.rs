//! Chaos soak harness: every UniBench app is driven through seeded random
//! fault plans (`chaos:<seed>`, see `gpusim::FaultPlan::chaos`) mixing
//! transient faults, hangs, arena corruption and terminal failures — and
//! every run must be **bit-identical** to the fault-free baseline, whether
//! it survived on the device (recovery), degraded through the governor, or
//! fell back to the host.
//!
//! The generator is completion-safe by construction: hang windows stay
//! under the reset budget, `d2h` is never terminal (that would be a
//! legitimate partial-commit hard error), and at most one rule per site.
//! So any result difference — or any error — is a recovery bug.

use ompi_nano::unibench::{app_by_name, compile_omp, run_once, runner_config};
use ompi_nano::{ExecMode, Runner, RunnerConfig};

/// Fixed seeds chosen for coverage of the rule space (see the generator's
/// kind mix): terminal launch/init, hangs at launch/h2d/alloc, terminal
/// h2d/alloc, arena corruption, and plain transient bursts.
const SEEDS: [u64; 6] = [0, 3, 16, 25, 34, 50];

const APPS: [&str; 6] = ["3dconv", "bicg", "atax", "mvt", "gemm", "gramschmidt"];

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The soak itself: 6 apps x 6 seeds, each compared bit-for-bit against
/// the app's fault-free output from the same compiled binary.
#[test]
fn chaos_soak_is_bit_identical_across_apps_and_seeds() {
    for name in APPS {
        let app = app_by_name(name).expect("unibench app");
        let n = app.test_size;
        let compiled = compile_omp(&app, &work(name));
        let cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);

        let baseline_runner = Runner::new(&compiled, &cfg).unwrap();
        let baseline = run_once(&app, &baseline_runner, n)
            .unwrap_or_else(|e| panic!("{name} fault-free baseline failed: {e}"));

        for seed in SEEDS {
            let chaos_cfg =
                RunnerConfig { fault_spec: Some(format!("chaos:{seed}")), ..cfg.clone() };
            let runner = Runner::new(&compiled, &chaos_cfg).unwrap();
            let out = run_once(&app, &runner, n)
                .unwrap_or_else(|e| panic!("{name} chaos:{seed} errored: {e}"));
            assert_eq!(out.len(), baseline.len(), "{name} chaos:{seed}: output length");
            for (i, (c, b)) in out.iter().zip(&baseline).enumerate() {
                assert_eq!(
                    c.to_bits(),
                    b.to_bits(),
                    "{name} chaos:{seed}: output[{i}] differs ({c} vs baseline {b})"
                );
            }
        }
    }
}

/// Chaos faults and the resource governor compose: a run under an active
/// fault plan AND a fuel budget far below the app's real cost must stop at
/// the budget with the typed limit error — not hang in a retry loop, not
/// panic, and not latch the device breaker (a limit is the guest's fault,
/// never the device's).
#[test]
fn tight_fuel_under_chaos_trips_cleanly() {
    // gramschmidt is the one app whose guest `run()` does real host-side
    // work between offloads (~11k VM instructions at test size) — the
    // others drive everything from a few hundred instructions of launch
    // glue, which never spans a fuel checkpoint.
    let app = app_by_name("gramschmidt").expect("gramschmidt");
    let n = app.test_size;
    let compiled = compile_omp(&app, &work("gs-fuel"));
    let obs = obs::Obs::enabled();
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);
    cfg.fault_spec = Some("chaos:3".into());
    cfg.fuel = Some(2000); // gramschmidt needs ~11k
    cfg.obs = Some(obs.clone());
    let runner = Runner::new(&compiled, &cfg).unwrap();
    let err = run_once(&app, &runner, n).expect_err("2k instructions cannot finish gramschmidt");
    assert_eq!(
        err.to_string(),
        "guest limit: guest fuel exhausted (budget 2000 instructions)",
        "the governor, not a fault or a panic, must be what stops the run"
    );
    assert_eq!(obs.metrics.counter(runner.registry().num_devices() as u64, "guest_limit.fuel"), 1);
    assert!(!runner.device_broken(), "a guest limit must never latch the breaker");
}

/// A hang-heavy seed (3 -> `hang@launch,...`) must actually exercise the
/// recovery machinery, not just happen to pass: the soak asserts at least
/// one device reset was performed and the run stayed on the device.
#[test]
fn chaos_hang_seed_exercises_reset_and_replay() {
    let app = app_by_name("atax").expect("atax");
    let n = app.test_size;
    let compiled = compile_omp(&app, &work("atax-obs"));
    let obs = obs::Obs::enabled();
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);
    cfg.fault_spec = Some("chaos:3".into());
    cfg.obs = Some(obs.clone());
    let runner = Runner::new(&compiled, &cfg).unwrap();
    run_once(&app, &runner, n).unwrap_or_else(|e| panic!("atax chaos:3 errored: {e}"));
    assert!(
        obs.metrics.counter(0, "recovery.reset") >= 1,
        "seed 3 hangs the first launch; the watchdog must reset the device"
    );
    assert!(obs.metrics.counter(0, "recovery.probe") >= 1, "each reset half-open-probes");
    assert!(!runner.device_broken(), "a one-shot hang must be recovered, not latched");
}
