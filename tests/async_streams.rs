//! Async command-stream integration tests: bit-identical results with a
//! lower simulated total under double-buffered tiling, per-stream trace
//! tracks that only appear in async mode, and the `nowait`/`taskwait`
//! path overlapping two target regions on the simulated clock.

use gpusim::ExecMode;
use ompi_nano::unibench::{
    app_by_name, build_variant_cfg, measure, runner_config, Measurement, Variant,
};
use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};

/// Stream tracks start here in the Chrome trace (`tid = 100 + stream id`).
const STREAM_TRACK_BASE: u64 = 100;

/// Run atax at n=1024 with the device arena capped to 3 MiB — small enough
/// to force the governor's tile rung, large enough for it to double-buffer
/// when async streams are on. Returns the measurement, the device-0
/// counters, and the parsed trace-event array.
fn run_atax(async_streams: bool, tag: &str) -> (Measurement, Vec<(String, u64)>, Vec<obs::Json>) {
    let app = app_by_name("atax").expect("atax");
    let n = 1024;
    let work = std::env::temp_dir().join(format!("ompinano-async-{}-{tag}", std::process::id()));
    let obs = obs::Obs::enabled();
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Sampled { max_blocks: 4 }, true);
    cfg.obs = Some(obs.clone());
    cfg.device_mem = Some(3 << 20);
    cfg.async_streams = Some(async_streams);
    let built = build_variant_cfg(&app, Variant::OmpiCudadev, &work, &cfg);
    let m = measure(&app, &built, n);

    let path = std::env::temp_dir()
        .join(format!("ompinano-async-trace-{}-{tag}.json", std::process::id()));
    built.runner.write_trace(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = obs::json::parse(&text).expect("trace must be valid JSON");
    let arr = parsed.as_array().expect("Chrome trace array form").to_vec();
    (m, obs.metrics.counters_for(0), arr)
}

fn counter(counters: &[(String, u64)], key: &str) -> u64 {
    counters.iter().find(|(k, _)| k == key).map_or(0, |(_, v)| *v)
}

fn num(e: &obs::Json, key: &str) -> f64 {
    e.get(key).and_then(|v| v.as_f64()).unwrap_or_else(|| panic!("event missing `{key}`"))
}

fn name_of(e: &obs::Json) -> &str {
    e.get("name").and_then(|v| v.as_str()).unwrap_or("")
}

/// Complete (ph="X") events on device 0's stream tracks.
fn stream_events(arr: &[obs::Json]) -> Vec<&obs::Json> {
    arr.iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && num(e, "pid") as u64 == 0
                && num(e, "tid") as u64 >= STREAM_TRACK_BASE
        })
        .collect()
}

/// Whether two complete events on *different* stream tracks overlap in time.
fn overlapping_pair<'a>(
    xs: &'a [&'a obs::Json],
    ys: &'a [&'a obs::Json],
) -> Option<(&'a obs::Json, &'a obs::Json)> {
    for x in xs {
        let (xs0, xs1) = (num(x, "ts"), num(x, "ts") + num(x, "dur"));
        for y in ys {
            if num(x, "tid") == num(y, "tid") {
                continue;
            }
            let (ys0, ys1) = (num(y, "ts"), num(y, "ts") + num(y, "dur"));
            if xs0 < ys1 - 1e-9 && ys0 < xs1 - 1e-9 {
                return Some((x, y));
            }
        }
    }
    None
}

/// The tentpole acceptance criterion: with the arena capped so atax tiles,
/// the async run double-buffers the tile pipeline, hides transfer time
/// under compute (lower simulated total, `overlap_s > 0`), and produces
/// bit-identical output to the synchronous run.
#[test]
fn async_tiled_atax_is_bit_identical_and_faster() {
    let (sync, sync_counters, _) = run_atax(false, "sync-meas");
    let (asy, async_counters, _) = run_atax(true, "async-meas");

    assert_eq!(sync.checksum, asy.checksum, "async scheduling must not change a single output bit");
    assert_eq!(sync.overlap_s, 0.0, "synchronous runs cannot overlap anything");
    assert!(asy.overlap_s > 0.0, "the double-buffered pipeline must hide some transfer time");
    assert!(
        asy.time_s < sync.time_s,
        "async simulated total {} must beat sync {}",
        asy.time_s,
        sync.time_s
    );
    // Busy time rises slightly in async mode (double-buffering halves the
    // tile size, so there are more per-op overheads), yet the pipeline
    // still wins: the elapsed total is what the hidden time pays back.
    assert!(asy.time_s + asy.overlap_s >= sync.time_s - 1e-9);

    assert_eq!(counter(&sync_counters, "tile_double_buffered"), 0);
    assert!(
        counter(&async_counters, "tile_double_buffered") >= 1,
        "the tile rung must report double-buffering, counters: {async_counters:?}"
    );
    assert!(counter(&async_counters, "tile_launches") >= 2, "still a multi-tile run");
}

/// Stream tracks are an async-mode artifact: the synchronous trace draws
/// copies as B/E spans on the driver track and nothing at tid >= 100,
/// while the async trace schedules copies and kernels as complete events
/// on per-stream tracks — with a copy overlapping a kernel on another
/// stream (the pipeline the trace exists to show).
#[test]
fn trace_shows_stream_tracks_only_in_async_mode() {
    let (_, _, sync_arr) = run_atax(false, "sync-trace");
    let (_, _, async_arr) = run_atax(true, "async-trace");

    assert!(stream_events(&sync_arr).is_empty(), "sync traces must not draw stream tracks");
    let streamed = stream_events(&async_arr);
    assert!(!streamed.is_empty(), "async traces must draw ops on stream tracks");

    let copies: Vec<_> =
        streamed.iter().copied().filter(|e| matches!(name_of(e), "h2d" | "d2h")).collect();
    let kernels: Vec<_> =
        streamed.iter().copied().filter(|e| name_of(e).starts_with("kernel ")).collect();
    assert!(!copies.is_empty() && !kernels.is_empty());
    let (c, k) = overlapping_pair(&copies, &kernels)
        .expect("a memcpy must overlap a kernel on a different stream track");
    assert_ne!(num(c, "tid") as u64, num(k, "tid") as u64);
}

/// Two independent loops, both `nowait`, then a `taskwait` barrier. Under
/// async streams each region gets its own stream; the second region's
/// transfers schedule under the first region's kernel on the simulated
/// clock. Results are exact either way (execution is eager — only the
/// virtual timestamps defer).
const NOWAIT_TWO_REGIONS: &str = r#"
int main() {
    int n = 4096;
    float a[4096]; float b[4096];
    for (int i = 0; i < n; i++) { a[i] = 1.0f; b[i] = 2.0f; }
    #pragma omp target teams distribute parallel for nowait map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = 2.0f * a[i] + 1.0f;
    #pragma omp target teams distribute parallel for nowait map(tofrom: b[0:n])
    for (int i = 0; i < n; i++)
        b[i] = 2.0f * b[i] + 1.0f;
    #pragma omp taskwait
    for (int i = 0; i < n; i++) {
        if (a[i] != 3.0f) return 1;
        if (b[i] != 5.0f) return 2;
    }
    return 0;
}
"#;

fn compile_nowait(tag: &str) -> ompi_nano::CompiledApp {
    let dir = std::env::temp_dir().join(format!("ompinano-nowait-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ompicc::new(&dir).compile(NOWAIT_TWO_REGIONS).unwrap()
}

/// The `nowait` acceptance criterion: the async trace of the two-region
/// program shows device spans from different streams overlapping, and the
/// aggregate clock reports the hidden time. `taskwait` drains the queues,
/// so reading the clock after the run needs no extra sync.
#[test]
fn nowait_regions_overlap_on_separate_streams() {
    let app = compile_nowait("async");
    let obs = obs::Obs::enabled();
    let cfg =
        RunnerConfig { async_streams: Some(true), obs: Some(obs.clone()), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0), "nowait must not change results");

    let clk = runner.dev_clock();
    assert!(clk.overlap_s > 0.0, "the second region must schedule under the first");

    let path =
        std::env::temp_dir().join(format!("ompinano-nowait-trace-{}.json", std::process::id()));
    runner.write_trace(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = obs::json::parse(&text).expect("trace must be valid JSON");
    let arr = parsed.as_array().expect("Chrome trace array form");

    let streamed = stream_events(arr);
    let tracks: std::collections::BTreeSet<u64> =
        streamed.iter().map(|e| num(e, "tid") as u64).collect();
    assert!(tracks.len() >= 2, "each nowait region gets its own stream track, got {tracks:?}");
    let (x, y) = overlapping_pair(&streamed, &streamed)
        .expect("spans from the two regions must overlap in simulated time");
    assert_ne!(num(x, "tid") as u64, num(y, "tid") as u64);
}

/// The same program in synchronous mode: `nowait` and `taskwait` are
/// accepted and results are identical — the clauses only matter for the
/// simulated schedule, never for correctness.
#[test]
fn nowait_and_taskwait_are_harmless_without_async_streams() {
    let app = compile_nowait("sync");
    let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert_eq!(runner.dev_clock().overlap_s, 0.0);
}
