//! Regenerate the paper's Fig. 4 (a)–(f): execution time vs problem size
//! for the pure CUDA version and the OMPi/cudadev version of each
//! application.
//!
//! Usage:
//!   fig4 [--app NAME] [--sizes a,b,c] [--full] [--max-blocks N]
//!        [--trace PATH] [--profile] [--mem SIZE] [--async]
//!        [--chaos-seed N]
//!
//! `--chaos-seed N` runs the OMPi variant under the chaos fault plan
//! `chaos:N` (see `gpusim::FaultPlan::chaos`): a seeded random mix of
//! transient faults, hangs and terminal failures that exercises the
//! watchdog / reset-and-replay / circuit-breaker recovery path while
//! keeping results bit-identical. Combine with `--trace` to inspect the
//! `recovery.reset` and `breaker.probe` events on the timeline. The CUDA
//! baseline is left un-faulted — it has no recovery runtime to degrade
//! through.
//!
//! `--mem 32M` caps the OMPi variant's device arena below the working set,
//! driving the memory governor's evict → stage → tile → fallback ladder
//! (the CUDA baseline keeps its full arena: it manages raw device memory
//! itself and has no governor to degrade through).
//!
//! `--async` runs the OMPi variant with async command streams: transfers
//! and launches schedule on per-region streams whose copy and compute
//! engines overlap on the simulated clock. Results are bit-identical to
//! the synchronous run (compare the `# checksum` lines); the hidden time
//! shows up in the `overlap` comment lines and as per-stream trace tracks.
//! Combine with `--mem` to see the governor's double-buffered tiling
//! pipeline transfers under compute within a single region.
//!
//! By default every app runs over its paper sizes in sampled-simulation
//! mode (see DESIGN.md for the sampling substitution). `--full` forces
//! functional simulation (slow; use small sizes). `--trace PATH` writes a
//! Chrome trace-event JSON of every run (load in Perfetto / chrome://tracing)
//! and `--profile` prints the per-device simulated-time profile table after
//! each measurement.

use std::sync::Arc;

use gpusim::ExecMode;
use unibench::{all_apps, app_by_name, build_variant_cfg, measure, runner_config, Variant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app_filter: Option<String> = None;
    let mut sizes_override: Option<Vec<u32>> = None;
    let mut full = false;
    let mut max_blocks = 4u32;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut profile = false;
    let mut mem_cap: Option<u64> = None;
    let mut async_streams = false;
    let mut chaos_seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                app_filter = Some(args[i + 1].clone());
                i += 2;
            }
            "--sizes" => {
                sizes_override =
                    Some(args[i + 1].split(',').map(|s| s.trim().parse().expect("size")).collect());
                i += 2;
            }
            "--full" => {
                full = true;
                i += 1;
            }
            "--max-blocks" => {
                max_blocks = args[i + 1].parse().expect("max-blocks");
                i += 2;
            }
            "--trace" => {
                trace_path = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--mem" => {
                mem_cap = Some(vmcommon::fmt::parse_size(&args[i + 1]).unwrap_or_else(|e| {
                    eprintln!("--mem: {e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--async" => {
                async_streams = true;
                i += 1;
            }
            "--chaos-seed" => {
                chaos_seed = Some(args[i + 1].parse().expect("chaos-seed"));
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let obs =
        if trace_path.is_some() || profile { obs::Obs::enabled() } else { obs::Obs::disabled() };

    let mode = if full { ExecMode::Functional } else { ExecMode::Sampled { max_blocks } };
    let work = std::env::temp_dir().join("ompi-fig4");

    let apps = match &app_filter {
        Some(name) => vec![app_by_name(name).unwrap_or_else(|| {
            eprintln!("unknown app `{name}`; available: 3dconv bicg atax mvt gemm gramschmidt");
            std::process::exit(2);
        })],
        None => all_apps(),
    };

    println!("# Fig. 4 reproduction — simulated Jetson Nano 2GB (sm_53, 128-core Maxwell)");
    println!("# mode: {:?}; times are simulated seconds (kernel + memory operations)\n", mode);
    for app in apps {
        let sizes: Vec<u32> = sizes_override.clone().unwrap_or_else(|| app.paper_sizes.to_vec());
        println!("## {}", app.name);
        println!("{:>8}  {:>14}  {:>14}  {:>8}", "size", "CUDA [s]", "OMPi [s]", "OMPi/CUDA");
        for &n in &sizes {
            let mut row = Vec::new();
            for variant in [Variant::Cuda, Variant::OmpiCudadev] {
                let mut cfg = runner_config((app.footprint)(n), mode, true);
                cfg.obs = Some(obs.clone());
                if variant == Variant::OmpiCudadev {
                    if let Some(cap) = mem_cap {
                        cfg.device_mem = (cap as usize).min(cfg.device_mem);
                    }
                    cfg.async_streams = async_streams;
                    if let Some(seed) = chaos_seed {
                        cfg.fault_spec = Some(format!("chaos:{seed}"));
                    }
                }
                let built = build_variant_cfg(&app, variant, &work, &cfg);
                let m = measure(&app, &built, n);
                println!(
                    "# checksum {} n={n} {} {:#018x}",
                    app.name,
                    variant.label().replace(' ', "-"),
                    m.checksum
                );
                if async_streams && variant == Variant::OmpiCudadev {
                    println!(
                        "# overlap {} n={n}: {:.6}s hidden of {:.6}s busy",
                        app.name,
                        m.overlap_s,
                        m.time_s + m.overlap_s
                    );
                }
                if profile {
                    println!("# {} {} n={n}", app.name, variant.label());
                    for line in built.runner.profile_table().lines() {
                        println!("# {line}");
                    }
                }
                // The aggregate is the registry-level sum; show the
                // per-device split whenever more than one device is live.
                if m.per_device.len() > 1 {
                    for (i, d) in m.per_device.iter().enumerate() {
                        println!(
                            "#   {} dev{i}: total {:.6}s (kernel {:.6}s, memcpy {:.6}s), {} launches",
                            variant.label(),
                            d.total_s(),
                            d.kernel_s,
                            d.memcpy_s(),
                            d.launches
                        );
                    }
                }
                row.push(m.time_s);
            }
            println!(
                "{:>8}  {:>14.6}  {:>14.6}  {:>8.3}",
                n,
                row[0],
                row[1],
                row[1] / row[0].max(1e-12)
            );
        }
        println!();
    }

    if let Some(path) = trace_path {
        match write_trace(&obs, &path) {
            Ok(()) => eprintln!("# trace written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Export the combined trace of every run. Runners named their own device
/// processes as they initialized (first-wins), so only unnamed processes
/// still need labels — fig4 runners are single-device, making pid 0 the
/// offload device and pid 1 the host shim.
fn write_trace(obs: &Arc<obs::Obs>, path: &std::path::Path) -> std::io::Result<()> {
    obs.tracer.set_process_name(0, "dev0");
    obs.tracer.set_process_name(1, "host (initial device)");
    obs.tracer.write_json(path)
}
