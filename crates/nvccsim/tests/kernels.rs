//! End-to-end tests: CUDA C source → SPTX → execution on the simulated
//! Maxwell SMM.

use gpusim::{launch, Device, ExecMode, LaunchConfig, NoLib};
use nvccsim::{compile_source, link_module, BinMode, Nvcc};

/// Compile + link (no lib symbols) + run on the simulator.
fn run_kernel(
    src: &str,
    kernel: &str,
    grid: [u32; 3],
    block: [u32; 3],
    params: Vec<u64>,
    device: &Device,
) -> gpusim::LaunchStats {
    let mut m = compile_source(src, "test").expect("compile");
    link_module(&mut m, &[]).expect("link");
    let cfg = LaunchConfig { grid, block, params };
    launch(device, &m, kernel, &cfg, &NoLib, ExecMode::Functional).expect("launch")
}

#[test]
fn saxpy_kernel_from_c() {
    let src = r#"
__global__ void saxpy(float a, int n, float *x, float *y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        y[i] = a * x[i] + y[i];
}
"#;
    let d = Device::new(1 << 20);
    let n = 500u32;
    let x = d.mem_alloc(4 * n as u64).unwrap();
    let y = d.mem_alloc(4 * n as u64).unwrap();
    let xs: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    d.memcpy_h2d(x, &xs).unwrap();
    d.memset_d8(y, 0, 4 * n as u64).unwrap();
    run_kernel(
        src,
        "saxpy",
        [n.div_ceil(128), 1, 1],
        [128, 1, 1],
        vec![2.0f32.to_bits() as u64, n as u64, x, y],
        &d,
    );
    let mut out = vec![0u8; 4 * n as usize];
    d.memcpy_d2h(&mut out, y).unwrap();
    for i in 0..n as usize {
        let v = f32::from_le_bytes(out[4 * i..4 * i + 4].try_into().unwrap());
        assert_eq!(v, 2.0 * i as f32, "element {i}");
    }
}

#[test]
fn two_d_indexing_and_loops() {
    // Row sums of a matrix, one thread per row with an inner loop.
    let src = r#"
__global__ void rowsum(float *a, float *out, int n, int m) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float s = 0.0f;
        for (int j = 0; j < m; j++)
            s += a[i * m + j];
        out[i] = s;
    }
}
"#;
    let d = Device::new(1 << 20);
    let (n, m) = (37u32, 19u32);
    let a = d.mem_alloc(4 * (n * m) as u64).unwrap();
    let out = d.mem_alloc(4 * n as u64).unwrap();
    let data: Vec<u8> = (0..n * m).flat_map(|k| ((k % 7) as f32).to_le_bytes()).collect();
    d.memcpy_h2d(a, &data).unwrap();
    run_kernel(src, "rowsum", [2, 1, 1], [32, 1, 1], vec![a, out, n as u64, m as u64], &d);
    let mut raw = vec![0u8; 4 * n as usize];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for i in 0..n {
        let expect: f32 = (0..m).map(|j| ((i * m + j) % 7) as f32).sum();
        let got = f32::from_le_bytes(raw[4 * i as usize..4 * i as usize + 4].try_into().unwrap());
        assert_eq!(got, expect, "row {i}");
    }
}

#[test]
fn break_continue_in_kernel_loops() {
    let src = r#"
__global__ void bc(int *out) {
    int t = threadIdx.x;
    int s = 0;
    for (int j = 0; j < 20; j++) {
        if (j == 14) break;
        if (j % 2 == 1) continue;
        s += j;
    }
    out[t] = s;
}
"#;
    let d = Device::new(1 << 20);
    let out = d.mem_alloc(4 * 32).unwrap();
    run_kernel(src, "bc", [1, 1, 1], [32, 1, 1], vec![out], &d);
    let mut raw = vec![0u8; 4 * 32];
    d.memcpy_d2h(&mut raw, out).unwrap();
    let expect: i32 = (0..14).filter(|j| j % 2 == 0).sum();
    for t in 0..32usize {
        assert_eq!(
            i32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap()),
            expect,
            "thread {t}"
        );
    }
}

#[test]
fn device_function_and_math() {
    let src = r#"
__device__ float hypotenuse(float a, float b) {
    return sqrtf(a * a + b * b);
}
__global__ void k(float *out) {
    int t = threadIdx.x;
    out[t] = hypotenuse((float) t, 4.0f);
}
"#;
    let d = Device::new(1 << 20);
    let out = d.mem_alloc(4 * 32).unwrap();
    run_kernel(src, "k", [1, 1, 1], [32, 1, 1], vec![out], &d);
    let mut raw = vec![0u8; 4 * 32];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for t in 0..32usize {
        let got = f32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap());
        let expect = ((t * t) as f32 + 16.0).sqrt();
        assert!((got - expect).abs() < 1e-5, "thread {t}: {got} vs {expect}");
    }
}

#[test]
fn shared_memory_and_syncthreads() {
    let src = r#"
__global__ void rev(int *data) {
    __shared__ int buf[64];
    int t = threadIdx.x;
    buf[t] = data[t];
    __syncthreads();
    data[t] = buf[63 - t];
}
"#;
    let d = Device::new(1 << 20);
    let buf = d.mem_alloc(4 * 64).unwrap();
    let init: Vec<u8> = (0..64i32).flat_map(|i| i.to_le_bytes()).collect();
    d.memcpy_h2d(buf, &init).unwrap();
    run_kernel(src, "rev", [1, 1, 1], [64, 1, 1], vec![buf], &d);
    let mut raw = vec![0u8; 4 * 64];
    d.memcpy_d2h(&mut raw, buf).unwrap();
    for t in 0..64usize {
        assert_eq!(i32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap()), 63 - t as i32);
    }
}

#[test]
fn atomic_add_from_c() {
    let src = r#"
__global__ void hist(int *count) {
    atomicAdd(count, 2);
}
"#;
    let d = Device::new(1 << 20);
    let c = d.mem_alloc(4).unwrap();
    run_kernel(src, "hist", [3, 1, 1], [64, 1, 1], vec![c], &d);
    let mut raw = [0u8; 4];
    d.memcpy_d2h(&mut raw, c).unwrap();
    assert_eq!(i32::from_le_bytes(raw), 3 * 64 * 2);
}

#[test]
fn address_taken_local_spills() {
    let src = r#"
__device__ void bump(int *p) { *p = *p + 7; }
__global__ void k(int *out) {
    int v = threadIdx.x;
    bump(&v);
    out[threadIdx.x] = v;
}
"#;
    let d = Device::new(1 << 20);
    let out = d.mem_alloc(4 * 32).unwrap();
    run_kernel(src, "k", [1, 1, 1], [32, 1, 1], vec![out], &d);
    let mut raw = vec![0u8; 4 * 32];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for t in 0..32usize {
        assert_eq!(i32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap()), t as i32 + 7);
    }
}

#[test]
fn ternary_and_logical_ops() {
    let src = r#"
__global__ void k(int *out, int n) {
    int t = threadIdx.x;
    int v = (t < n && t % 2 == 0) ? t * 100 : -t;
    out[t] = v;
}
"#;
    let d = Device::new(1 << 20);
    let out = d.mem_alloc(4 * 32).unwrap();
    run_kernel(src, "k", [1, 1, 1], [32, 1, 1], vec![out, 10], &d);
    let mut raw = vec![0u8; 4 * 32];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for t in 0..32i32 {
        let expect = if t < 10 && t % 2 == 0 { t * 100 } else { -t };
        assert_eq!(
            i32::from_le_bytes(raw[4 * t as usize..4 * t as usize + 4].try_into().unwrap()),
            expect,
            "thread {t}"
        );
    }
}

#[test]
fn double_precision_math() {
    let src = r#"
__global__ void k(double *out) {
    int t = threadIdx.x;
    double x = (double) t / 8.0;
    out[t] = x * x + 0.5;
}
"#;
    let d = Device::new(1 << 20);
    let out = d.mem_alloc(8 * 32).unwrap();
    run_kernel(src, "k", [1, 1, 1], [32, 1, 1], vec![out], &d);
    let mut raw = vec![0u8; 8 * 32];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for t in 0..32usize {
        let got = f64::from_le_bytes(raw[8 * t..8 * t + 8].try_into().unwrap());
        let x = t as f64 / 8.0;
        assert_eq!(got, x * x + 0.5);
    }
}

#[test]
fn local_array_per_thread() {
    let src = r#"
__global__ void k(int *out) {
    int t = threadIdx.x;
    int tmp[4];
    for (int i = 0; i < 4; i++)
        tmp[i] = t * 10 + i;
    out[t] = tmp[0] + tmp[3];
}
"#;
    let d = Device::new(1 << 20);
    let out = d.mem_alloc(4 * 32).unwrap();
    run_kernel(src, "k", [1, 1, 1], [32, 1, 1], vec![out], &d);
    let mut raw = vec![0u8; 4 * 32];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for t in 0..32i32 {
        assert_eq!(
            i32::from_le_bytes(raw[4 * t as usize..4 * t as usize + 4].try_into().unwrap()),
            (t * 10) + (t * 10 + 3),
            "thread {t}"
        );
    }
}

#[test]
fn ptx_and_cubin_artifacts() {
    let src = "__global__ void k(float *a) { a[threadIdx.x] = 1.0f; }";
    let dir = std::env::temp_dir().join(format!("nvccsim-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ptx = Nvcc::new(BinMode::Ptx, &dir, vec![]);
    let p = ptx.compile_kernel_source("k_ptx", src).unwrap();
    assert!(p.extension().unwrap() == "sptx");
    let text = std::fs::read_to_string(&p).unwrap();
    let parsed = sptx::text::parse_module(&text).unwrap();
    assert!(!parsed.device_lib_linked, "PTX artifacts are unlinked");

    let cub = Nvcc::new(BinMode::Cubin, &dir, vec![]);
    let c = cub.compile_kernel_source("k_cub", src).unwrap();
    assert!(c.extension().unwrap() == "cubin");
    let decoded = sptx::cubin::decode(&std::fs::read(&c).unwrap()).unwrap();
    assert!(decoded.device_lib_linked, "cubin artifacts are pre-linked");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn link_rejects_unknown_symbols() {
    let src = "__global__ void k(void) { cudadev_exit_target(); }";
    let mut m = compile_source(src, "m").unwrap();
    assert!(link_module(&mut m, &[]).is_err());
    link_module(&mut m, &["cudadev_exit_target".to_string()]).unwrap();
    assert!(m.device_lib_linked);
}

#[test]
fn omp_pragma_in_kernel_rejected() {
    let src = "__global__ void k(void) {\n#pragma omp barrier\n}";
    assert!(compile_source(src, "m").is_err());
}

#[test]
fn device_printf_via_compiler() {
    let src = r#"
__global__ void k(void) {
    if (threadIdx.x == 0)
        printf("v=%d f=%f\n", 7, 2.5f);
}
"#;
    let d = Device::new(1 << 20);
    run_kernel(src, "k", [1, 1, 1], [32, 1, 1], vec![], &d);
    assert_eq!(d.take_printf_output(), "v=7 f=2.500000\n");
}

#[test]
fn vla_style_2d_param() {
    // `float a[n][n]` parameter — stride computed at run time.
    let src = r#"
__global__ void diag(int n, float a[n][n], float *out) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        out[i] = a[i][i];
}
"#;
    let d = Device::new(1 << 20);
    let n = 20u32;
    let a = d.mem_alloc(4 * (n * n) as u64).unwrap();
    let out = d.mem_alloc(4 * n as u64).unwrap();
    let data: Vec<u8> = (0..n * n).flat_map(|k| (k as f32).to_le_bytes()).collect();
    d.memcpy_h2d(a, &data).unwrap();
    run_kernel(src, "diag", [1, 1, 1], [32, 1, 1], vec![n as u64, a, out], &d);
    let mut raw = vec![0u8; 4 * n as usize];
    d.memcpy_d2h(&mut raw, out).unwrap();
    for i in 0..n {
        let got = f32::from_le_bytes(raw[4 * i as usize..][..4].try_into().unwrap());
        assert_eq!(got, (i * n + i) as f32, "diag {i}");
    }
}
