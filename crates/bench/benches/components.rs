//! Component microbenches: frontend, kernel compiler, SIMT simulator and
//! scheduling primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::{launch, Device, ExecMode, LaunchConfig, NoLib};

const SAXPY_CU: &str = r#"
__global__ void saxpy(float a, int n, float *x, float *y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        y[i] = a * x[i] + y[i];
}
"#;

fn bench_frontend(c: &mut Criterion) {
    let omp_src = unibench::app_by_name("gemm").unwrap().omp_src;
    c.bench_function("frontend/parse_gemm", |b| {
        b.iter(|| minic::parse(std::hint::black_box(omp_src)).unwrap())
    });
    c.bench_function("frontend/parse_analyze_gemm", |b| {
        b.iter(|| {
            let mut p = minic::parse(std::hint::black_box(omp_src)).unwrap();
            minic::analyze(&mut p).unwrap()
        })
    });
}

fn bench_nvcc(c: &mut Criterion) {
    c.bench_function("nvcc/compile_saxpy", |b| {
        b.iter(|| nvccsim::compile_source(std::hint::black_box(SAXPY_CU), "saxpy").unwrap())
    });
    let m = nvccsim::compile_source(SAXPY_CU, "saxpy").unwrap();
    let text = sptx::text::print_module(&m);
    c.bench_function("sptx/assemble_saxpy", |b| {
        b.iter(|| sptx::text::parse_module(std::hint::black_box(&text)).unwrap())
    });
    let bin = sptx::cubin::encode(&m);
    c.bench_function("sptx/cubin_decode_saxpy", |b| {
        b.iter(|| sptx::cubin::decode(std::hint::black_box(&bin)).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut m = nvccsim::compile_source(SAXPY_CU, "saxpy").unwrap();
    nvccsim::link_module(&mut m, &[]).unwrap();
    let d = Device::new(8 << 20);
    let n = 32 * 1024u32;
    let x = d.mem_alloc(4 * n as u64).unwrap();
    let y = d.mem_alloc(4 * n as u64).unwrap();
    let cfg = LaunchConfig {
        grid: [n.div_ceil(256), 1, 1],
        block: [256, 1, 1],
        params: vec![2.0f32.to_bits() as u64, n as u64, x, y],
    };
    c.bench_function("gpusim/saxpy_32k_functional", |b| {
        b.iter(|| launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional).unwrap())
    });
    c.bench_function("gpusim/saxpy_32k_sampled8", |b| {
        b.iter(|| {
            launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Sampled { max_blocks: 8 }).unwrap()
        })
    });
}

fn bench_sched(c: &mut Criterion) {
    c.bench_function("sched/static_block_1M", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for tid in 0..128u64 {
                let (s, e) = vmcommon::sched::static_block(std::hint::black_box(1 << 20), 128, tid);
                acc += e - s;
            }
            acc
        })
    });
    c.bench_function("sched/dynamic_drain_10k", |b| {
        b.iter(|| {
            let st = vmcommon::sched::DynamicState::new();
            let mut n = 0u64;
            while let Some((s, e)) = st.next_chunk(10_000, 64) {
                n += e - s;
            }
            n
        })
    });
}

criterion_group!(benches, bench_frontend, bench_nvcc, bench_simulator, bench_sched);
criterion_main!(benches);
