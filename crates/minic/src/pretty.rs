//! Pretty-printer: AST → C source text.
//!
//! Used to emit the generated CUDA C kernel files (the OMPi compilation
//! chain keeps kernels as *separate, human-readable `.cu` sources*, §3.3 of
//! the paper) and for golden tests against the paper's Fig. 3 codegen shape.

use crate::ast::*;
use crate::omp::*;
use crate::types::{ArrayLen, Ty};

/// Render a full program.
pub fn program(p: &Program) -> String {
    let mut w = Printer::new();
    for item in &p.items {
        w.item(item);
        w.out.push('\n');
    }
    w.out
}

/// Render a single statement (top-level indentation).
pub fn stmt(s: &Stmt) -> String {
    let mut w = Printer::new();
    w.stmt(s);
    w.out
}

/// Render an expression.
pub fn expr(e: &Expr) -> String {
    let mut w = Printer::new();
    w.expr(e);
    w.out
}

/// Render a declaration of `name` with type `ty` (C declarator syntax).
pub fn declarator(name: &str, ty: &Ty) -> String {
    render_declarator(name, ty)
}

struct Printer {
    out: String,
    indent: usize,
}

/// Build the C declarator string for `name: ty` ("declaration mirrors use").
fn render_declarator(name: &str, ty: &Ty) -> String {
    // Recursive inside-out construction.
    fn inner(ty: &Ty, acc: String) -> (String, String) {
        match ty {
            Ty::Ptr(t) => {
                let needs_paren = matches!(**t, Ty::Array(..));
                let acc = if needs_paren { format!("(*{acc})") } else { format!("*{acc}") };
                inner(t, acc)
            }
            Ty::Array(t, len) => {
                let dim = match len {
                    ArrayLen::Const(n) => n.to_string(),
                    ArrayLen::Expr(e) => {
                        let mut q = Printer::new();
                        q.expr(e);
                        q.out
                    }
                    ArrayLen::Unspec => String::new(),
                };
                inner(t, format!("{acc}[{dim}]"))
            }
            base => (base_name(base).to_string(), acc),
        }
    }
    let (base, decl) = inner(ty, name.to_string());
    if decl.is_empty() {
        base
    } else {
        format!("{base} {decl}")
    }
}

fn base_name(ty: &Ty) -> &'static str {
    match ty {
        Ty::Void => "void",
        Ty::Char => "char",
        Ty::Int => "int",
        Ty::Long => "long",
        Ty::Float => "float",
        Ty::Double => "double",
        Ty::Dim3 => "dim3",
        Ty::Unknown => "/*unknown*/int",
        Ty::Ptr(_) | Ty::Array(..) => unreachable!("handled by declarator"),
    }
}

impl Printer {
    fn new() -> Printer {
        Printer { out: String::new(), indent: 0 }
    }

    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Func(f) => {
                self.signature(&f.sig);
                self.nl();
                self.block(&f.body);
                self.out.push('\n');
            }
            Item::Proto(sig) => {
                self.signature(sig);
                self.out.push(';');
                self.out.push('\n');
            }
            Item::Global(v) => {
                self.var_decl(v);
                self.out.push('\n');
            }
            Item::DeclareTarget(true) => self.out.push_str("#pragma omp declare target\n"),
            Item::DeclareTarget(false) => self.out.push_str("#pragma omp end declare target\n"),
        }
    }

    fn signature(&mut self, sig: &FuncSig) {
        if sig.quals.global {
            self.out.push_str("__global__ ");
        }
        if sig.quals.device {
            self.out.push_str("__device__ ");
        }
        let d = render_declarator(&sig.name, &sig.ret);
        self.out.push_str(&d);
        self.out.push('(');
        if sig.params.is_empty() {
            self.out.push_str("void");
        }
        for (i, p) in sig.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let d = render_declarator(&p.name, &p.ty);
            self.out.push_str(&d);
        }
        self.out.push(')');
    }

    fn block(&mut self, b: &Block) {
        self.out.push('{');
        self.indent += 1;
        for s in &b.stmts {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn var_decl(&mut self, v: &VarDecl) {
        if v.shared {
            self.out.push_str("__shared__ ");
        }
        let d = render_declarator(&v.name, &v.ty);
        self.out.push_str(&d);
        if let Some(init) = &v.init {
            if v.ty == Ty::Dim3 {
                // dim3 constructor form.
                if let Init::Expr(e) = init {
                    if let ExprKind::Dim3 { x, y, z } = &e.kind {
                        self.out.push('(');
                        self.expr(x);
                        if let Some(y) = y {
                            self.out.push_str(", ");
                            self.expr(y);
                        }
                        if let Some(z) = z {
                            self.out.push_str(", ");
                            self.expr(z);
                        }
                        self.out.push_str(");");
                        return;
                    }
                }
            }
            self.out.push_str(" = ");
            self.init(init);
        }
        self.out.push(';');
    }

    fn init(&mut self, i: &Init) {
        match i {
            Init::Expr(e) => self.expr(e),
            Init::List(list) => {
                self.out.push_str("{ ");
                for (i, it) in list.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.init(it);
                }
                self.out.push_str(" }");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(b) => self.block(b),
            Stmt::Decl(d) => self.var_decl(d),
            Stmt::Expr(e) => {
                self.expr(e);
                self.out.push(';');
            }
            Stmt::If { cond, then_s, else_s } => {
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push_str(") ");
                self.substmt(then_s);
                if let Some(e) = else_s {
                    self.out.push_str(" else ");
                    self.substmt(e);
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.out.push_str("for (");
                match init.as_deref() {
                    Some(Stmt::Decl(d)) => self.var_decl(d),
                    Some(Stmt::Expr(e)) => {
                        self.expr(e);
                        self.out.push(';');
                    }
                    Some(other) => {
                        // Synthetic multi-decl init blocks print flattened.
                        if let Stmt::Block(b) = other {
                            for st in &b.stmts {
                                if let Stmt::Decl(d) = st {
                                    self.var_decl(d);
                                }
                            }
                        }
                    }
                    None => self.out.push(';'),
                }
                self.out.push(' ');
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st);
                }
                self.out.push_str(") ");
                self.substmt(body);
            }
            Stmt::While { cond, body } => {
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(") ");
                self.substmt(body);
            }
            Stmt::DoWhile { body, cond } => {
                self.out.push_str("do ");
                self.substmt(body);
                self.out.push_str(" while (");
                self.expr(cond);
                self.out.push_str(");");
            }
            Stmt::Return(None) => self.out.push_str("return;"),
            Stmt::Return(Some(e)) => {
                self.out.push_str("return ");
                self.expr(e);
                self.out.push(';');
            }
            Stmt::Break => self.out.push_str("break;"),
            Stmt::Continue => self.out.push_str("continue;"),
            Stmt::Empty => self.out.push(';'),
            Stmt::Omp(o) => {
                self.out.push_str("#pragma omp ");
                self.out.push_str(o.dir.kind.spelling());
                for c in &o.dir.clauses {
                    self.out.push(' ');
                    self.clause(c);
                }
                if let Some(body) = &o.body {
                    self.nl();
                    self.substmt(body);
                }
            }
        }
    }

    fn substmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(b) => self.block(b),
            other => {
                self.indent += 1;
                self.nl();
                self.stmt(other);
                self.indent -= 1;
            }
        }
    }

    fn clause(&mut self, c: &Clause) {
        match c {
            Clause::Map { kind, items } => {
                self.out.push_str("map(");
                self.out.push_str(kind.spelling());
                self.out.push_str(": ");
                self.map_items(items);
                self.out.push(')');
            }
            Clause::NumTeams(e) => {
                self.out.push_str("num_teams(");
                self.expr(e);
                self.out.push(')');
            }
            Clause::NumThreads(e) => {
                self.out.push_str("num_threads(");
                self.expr(e);
                self.out.push(')');
            }
            Clause::ThreadLimit(e) => {
                self.out.push_str("thread_limit(");
                self.expr(e);
                self.out.push(')');
            }
            Clause::Collapse(n) => {
                self.out.push_str(&format!("collapse({n})"));
            }
            Clause::Schedule { kind, chunk } => {
                self.out.push_str("schedule(");
                self.out.push_str(kind.spelling());
                if let Some(c) = chunk {
                    self.out.push_str(", ");
                    self.expr(c);
                }
                self.out.push(')');
            }
            Clause::Private(v) => self.name_list("private", v),
            Clause::FirstPrivate(v) => self.name_list("firstprivate", v),
            Clause::Shared(v) => self.name_list("shared", v),
            Clause::Default(DefaultKind::Shared) => self.out.push_str("default(shared)"),
            Clause::Default(DefaultKind::None) => self.out.push_str("default(none)"),
            Clause::Reduction { op, vars } => {
                self.out.push_str("reduction(");
                self.out.push_str(op.spelling());
                self.out.push_str(": ");
                self.out.push_str(&vars.join(", "));
                self.out.push(')');
            }
            Clause::If(e) => {
                self.out.push_str("if(");
                self.expr(e);
                self.out.push(')');
            }
            Clause::Device(e) => {
                self.out.push_str("device(");
                self.expr(e);
                self.out.push(')');
            }
            Clause::Nowait => self.out.push_str("nowait"),
            Clause::UpdateTo(items) => {
                self.out.push_str("to(");
                self.map_items(items);
                self.out.push(')');
            }
            Clause::UpdateFrom(items) => {
                self.out.push_str("from(");
                self.map_items(items);
                self.out.push(')');
            }
            Clause::Name(n) => {
                self.out.push('(');
                self.out.push_str(n);
                self.out.push(')');
            }
        }
    }

    fn name_list(&mut self, clause: &str, names: &[String]) {
        self.out.push_str(clause);
        self.out.push('(');
        self.out.push_str(&names.join(", "));
        self.out.push(')');
    }

    fn map_items(&mut self, items: &[MapItem]) {
        for (i, it) in items.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&it.name);
            for sec in &it.sections {
                self.out.push('[');
                if let Some(l) = &sec.lower {
                    self.expr(l);
                }
                if sec.length.is_some() || sec.lower.is_none() {
                    self.out.push(':');
                }
                if let Some(l) = &sec.length {
                    self.expr(l);
                }
                self.out.push(']');
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        self.expr_prec(e, 0);
    }

    /// Print with minimal parentheses: wrap when the node's precedence is
    /// below the context's.
    fn expr_prec(&mut self, e: &Expr, min: u8) {
        let prec = expr_precedence(e);
        let need = prec < min;
        if need {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => self.out.push_str(&v.to_string()),
            ExprKind::FloatLit(v, f32s) => {
                let mut s = format!("{v}");
                if !s.contains('.') && !s.contains('e') {
                    s.push_str(".0");
                }
                if *f32s {
                    s.push('f');
                }
                self.out.push_str(&s);
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Ident(name, _) => self.out.push_str(name),
            ExprKind::Call { callee, args } => {
                self.out.push_str(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr_prec(a, 2);
                }
                self.out.push(')');
            }
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                self.out.push_str(callee);
                self.out.push_str("<<<");
                self.expr(grid);
                self.out.push_str(", ");
                self.expr(block);
                self.out.push_str(">>>(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr_prec(a, 2);
                }
                self.out.push(')');
            }
            ExprKind::Dim3 { x, y, z } => {
                self.out.push_str("dim3(");
                self.expr(x);
                if let Some(y) = y {
                    self.out.push_str(", ");
                    self.expr(y);
                }
                if let Some(z) = z {
                    self.out.push_str(", ");
                    self.expr(z);
                }
                self.out.push(')');
            }
            ExprKind::Member { base, field } => {
                self.expr_prec(base, 15);
                self.out.push('.');
                self.out.push_str(field);
            }
            ExprKind::Index { base, index } => {
                self.expr_prec(base, 15);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Unary { op, expr } => {
                let op_s = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                    UnOp::Deref => "*",
                    UnOp::Addr => "&",
                };
                self.out.push_str(op_s);
                self.expr_prec(expr, 14);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let (s, p) = binop_str_prec(*op);
                self.expr_prec(lhs, p);
                self.out.push(' ');
                self.out.push_str(s);
                self.out.push(' ');
                self.expr_prec(rhs, p + 1);
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr_prec(lhs, 14);
                self.out.push(' ');
                if let Some(op) = op {
                    self.out.push_str(binop_str_prec(*op).0);
                }
                self.out.push_str("= ");
                self.expr_prec(rhs, 2);
            }
            ExprKind::IncDec { pre, inc, expr } => {
                let tok = if *inc { "++" } else { "--" };
                if *pre {
                    self.out.push_str(tok);
                    self.expr_prec(expr, 14);
                } else {
                    self.expr_prec(expr, 15);
                    self.out.push_str(tok);
                }
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                self.expr_prec(cond, 4);
                self.out.push_str(" ? ");
                self.expr(then_e);
                self.out.push_str(" : ");
                self.expr_prec(else_e, 3);
            }
            ExprKind::Cast { ty, expr } => {
                self.out.push('(');
                let d = render_declarator("", ty);
                self.out.push_str(d.trim_end());
                self.out.push_str(") ");
                self.expr_prec(expr, 14);
            }
            ExprKind::SizeofTy(ty) => {
                self.out.push_str("sizeof(");
                let d = render_declarator("", ty);
                self.out.push_str(d.trim_end());
                self.out.push(')');
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof(");
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::Comma(a, b) => {
                self.expr_prec(a, 1);
                self.out.push_str(", ");
                self.expr_prec(b, 2);
            }
        }
        if need {
            self.out.push(')');
        }
    }
}

fn expr_precedence(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Comma(..) => 1,
        ExprKind::Assign { .. } => 2,
        ExprKind::Ternary { .. } => 3,
        ExprKind::Binary { op, .. } => binop_str_prec(*op).1,
        ExprKind::Unary { .. } | ExprKind::Cast { .. } | ExprKind::IncDec { pre: true, .. } => 14,
        _ => 15,
    }
}

fn binop_str_prec(op: BinOp) -> (&'static str, u8) {
    match op {
        BinOp::LogOr => ("||", 4),
        BinOp::LogAnd => ("&&", 5),
        BinOp::BitOr => ("|", 6),
        BinOp::BitXor => ("^", 7),
        BinOp::BitAnd => ("&", 8),
        BinOp::Eq => ("==", 9),
        BinOp::Ne => ("!=", 9),
        BinOp::Lt => ("<", 10),
        BinOp::Gt => (">", 10),
        BinOp::Le => ("<=", 10),
        BinOp::Ge => (">=", 10),
        BinOp::Shl => ("<<", 11),
        BinOp::Shr => (">>", 11),
        BinOp::Add => ("+", 12),
        BinOp::Sub => ("-", 12),
        BinOp::Mul => ("*", 13),
        BinOp::Div => ("/", 13),
        BinOp::Rem => ("%", 13),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr_str};

    #[test]
    fn declarators_roundtrip() {
        assert_eq!(declarator("x", &Ty::Int), "int x");
        assert_eq!(declarator("p", &Ty::Ptr(Box::new(Ty::Float))), "float *p");
        assert_eq!(
            declarator("x", &Ty::Ptr(Box::new(Ty::Array(Box::new(Ty::Int), ArrayLen::Const(96))))),
            "int (*x)[96]"
        );
        assert_eq!(
            declarator("a", &Ty::Array(Box::new(Ty::Ptr(Box::new(Ty::Int))), ArrayLen::Const(10))),
            "int *a[10]"
        );
    }

    #[test]
    fn exprs_reparse_equal_shape() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a = b = c + 1",
            "x[i * n + j]",
            "-a[i]",
            "f(a, b + 1)",
            "a < b ? a : b",
            "*p + 1",
            "&x",
            "(float) i / (float) n",
            "i++",
            "++i",
            "a && b || c",
        ] {
            let e1 = parse_expr_str(src).unwrap();
            let printed = expr(&e1);
            let e2 = parse_expr_str(&printed).unwrap();
            assert_eq!(
                expr(&e2),
                printed,
                "print(parse(print)) unstable for `{src}` -> `{printed}`"
            );
        }
    }

    #[test]
    fn program_roundtrip_parses() {
        let src = r#"
__global__ void k(float *a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) a[i] = a[i] * 2.0f;
}
void host(float *a, int n) {
    #pragma omp target map(tofrom: a[0:n]) num_teams(4)
    {
        int i;
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; i++)
            a[i] = a[i] + 1.0f;
    }
}
"#;
        let p1 = parse(src).unwrap();
        let printed = program(&p1);
        let p2 = parse(&printed).expect("printed program must reparse");
        // Idempotence: printing the reparse gives identical text.
        assert_eq!(program(&p2), printed);
    }

    #[test]
    fn pragma_printing() {
        let src = "void f(int n, float *y){\n#pragma omp target teams distribute parallel for map(tofrom: y[0:n]) collapse(2) reduction(+: s) nowait\nfor(int i=0;i<n;i++) for(int j=0;j<n;j++) y[i*n+j]=0;\n}";
        // Needs `s` defined for sema, but pretty-printing works pre-sema.
        let p = parse(src).unwrap();
        let text = program(&p);
        assert!(text.contains("#pragma omp target teams distribute parallel for"));
        assert!(text.contains("map(tofrom: y[0:n])"));
        assert!(text.contains("collapse(2)"));
        assert!(text.contains("reduction(+: s)"));
        assert!(text.contains("nowait"));
    }
}
