//! The tree-walking interpreter, retained as the differential-test
//! oracle for the bytecode VM.
//!
//! This was the original production executor; all production paths now
//! run [`crate::vm::Vm`] through the [`crate::interp::Interp`] façade.
//! The walker survives because its semantics are the executable
//! specification: differential tests run both engines over the same
//! programs and assert bit-identical results (`OMPI_ENGINE=walker`
//! switches production paths back for A/B measurement).

use std::sync::Arc;

use vmcommon::addr::{self, Space};
use vmcommon::{MemArena, MemError, Value};

use crate::ast::*;
use crate::interp::{HookCtx, Hooks, IResult, InterpError, Machine, STACK_SIZE};
use crate::limits::{GuestLimitError, FUEL_CHECK_INTERVAL};
use crate::rt::{self, convert};
use crate::types::{ArrayLen, Ty};

pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An execution context: one per OS thread, with its own guest stack.
pub struct TreeWalker {
    machine: Arc<Machine>,
    hooks: Arc<dyn Hooks>,
    stack_block: u64,
    sp: u64,
    /// Base address of the current frame.
    frame_base: u64,
    /// Slot offsets of the current function's frame.
    frame: *const crate::sema::FrameInfo,
    depth: u32,
    /// Walker steps (statements + expressions) since the last
    /// fuel/deadline checkpoint. The step granularity differs from the
    /// VM's, so fuel traps are compared as "both terminated", never
    /// byte-for-byte (see [`crate::limits`]).
    unbilled: u64,
}

// SAFETY: `frame` points into `machine.prog`, which is kept alive by the
// `Arc<Machine>` held alongside it and is never mutated after construction.
unsafe impl Send for TreeWalker {}

impl TreeWalker {
    /// Create a walker with a fresh guest stack. Runs global initializers
    /// on first creation per machine.
    pub fn new(machine: Arc<Machine>, hooks: Arc<dyn Hooks>) -> IResult<TreeWalker> {
        let stack_block = machine.heap.lock().alloc(STACK_SIZE)?;
        let mut it = TreeWalker {
            machine,
            hooks,
            stack_block,
            sp: stack_block,
            frame_base: stack_block,
            frame: std::ptr::null(),
            depth: 0,
            unbilled: 0,
        };
        it.init_globals_once()?;
        Ok(it)
    }

    fn init_globals_once(&mut self) -> IResult<()> {
        if self.machine.globals_ready.swap(true, std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        // Evaluate global initializers in a synthetic frame.
        let globals: Vec<(usize, Ty, Init)> = self
            .machine
            .info
            .globals
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.init.clone().map(|init| (i, g.ty.clone(), init)))
            .collect();
        for (i, ty, init) in globals {
            let base = self.machine.global_addrs[i];
            self.store_init(base, &ty, &init)?;
        }
        Ok(())
    }

    fn store_init(&mut self, base: u64, ty: &Ty, init: &Init) -> IResult<()> {
        match (ty, init) {
            (Ty::Array(elem, _), Init::List(list)) => {
                let esz = self.sizeof_rt(elem)?;
                for (i, it) in list.iter().enumerate() {
                    self.store_init(base + i as u64 * esz, elem, it)?;
                }
                Ok(())
            }
            (_, Init::Expr(e)) => {
                let v = self.eval(e)?;
                self.store_typed(base, ty, v)
            }
            (_, Init::List(_)) => Err(InterpError::Trap("brace initializer on scalar".into())),
        }
    }

    /// Run `main` (or any entry) with no arguments.
    pub fn run_main(&mut self) -> IResult<Value> {
        self.call("main", &[])
    }

    /// Call a guest function by name.
    pub fn call(&mut self, name: &str, args: &[Value]) -> IResult<Value> {
        let fd = self
            .machine
            .func(name)
            .ok_or_else(|| InterpError::Trap(format!("undefined function `{name}`")))?;
        // SAFETY: see `TreeWalker::frame` field comment — borrows from the
        // Arc'd immutable program.
        let fd: &'static FuncDef = unsafe { std::mem::transmute::<&FuncDef, &FuncDef>(fd) };
        let r = self.call_def(fd, args);
        // Bill the partial fuel interval (mirrors the VM's counter flush) —
        // but only at the true top-level boundary. `eval_call` re-enters
        // here for guest→guest calls, and draining there would reset the
        // interval on every call, letting call-heavy loops dodge the
        // checkpoint forever.
        if self.depth == 0 {
            self.machine.limits.drain_fuel(self.unbilled);
            self.unbilled = 0;
        }
        r
    }

    /// Fuel + deadline accounting, charged once per statement executed and
    /// once per expression evaluated.
    #[inline]
    fn tick(&mut self) -> IResult<()> {
        self.unbilled += 1;
        if self.unbilled >= FUEL_CHECK_INTERVAL {
            self.machine.limits.checkpoint(self.unbilled)?;
            self.unbilled = 0;
        }
        Ok(())
    }

    fn call_def(&mut self, fd: &FuncDef, args: &[Value]) -> IResult<Value> {
        // Same order as the VM's `new_frame`: depth first, then argc, then
        // the hard stack block, then the governor's byte ceiling.
        let stack_limit = self.machine.limits.stack_limit();
        if self.depth > stack_limit {
            return Err(GuestLimitError::StackOverflow { limit: stack_limit }.into());
        }
        if args.len() != fd.sig.params.len() {
            return Err(InterpError::Trap(format!(
                "call to `{}` with {} args (expected {})",
                fd.sig.name,
                args.len(),
                fd.sig.params.len()
            )));
        }
        let saved_sp = self.sp;
        let saved_base = self.frame_base;
        let saved_frame = self.frame;
        let base = self.sp.next_multiple_of(16);
        if base + fd.frame.size > self.stack_block + STACK_SIZE {
            return Err(InterpError::Trap("guest stack exhausted".into()));
        }
        // Stack usage derives from `sp`, so unwinding needs no credits;
        // identical frame layouts keep this check engine-agnostic.
        self.machine.limits.check_footprint(base + fd.frame.size - self.stack_block)?;
        self.frame_base = base;
        self.sp = base + fd.frame.size;
        self.frame = &fd.frame;
        self.depth += 1;

        let r = (|| {
            for (p, v) in fd.sig.params.iter().zip(args) {
                let slot = &fd.frame.slots[p.slot as usize];
                let a = addr::offset(self.frame_base) + slot.offset;
                let a = addr::make(Space::Host, a);
                self.store_typed(a, &slot.ty, *v)?;
            }
            self.exec_block_stmts(&fd.body.stmts)
        })();
        // Restore the frame whether the body returned or trapped, so an
        // aborted call (e.g. a limit trap) unwinds the guest stack level
        // by level — mirroring the VM's wholesale restore in `call_chunk`.
        self.depth -= 1;
        self.sp = saved_sp;
        self.frame_base = saved_base;
        self.frame = saved_frame;
        let mut ret = Value::I32(0);
        match r? {
            Flow::Return(v) => ret = v,
            Flow::Normal => {}
            Flow::Break | Flow::Continue => {
                return Err(InterpError::Trap("break/continue escaped function body".into()))
            }
        }
        // Convert the return value to the declared type.
        Ok(convert(ret, &fd.sig.ret))
    }

    fn frame_info(&self) -> &crate::sema::FrameInfo {
        // SAFETY: set in call_def; valid for the duration of the call.
        unsafe { &*self.frame }
    }

    fn slot_addr(&self, slot: u32) -> u64 {
        let s = &self.frame_info().slots[slot as usize];
        addr::make(Space::Host, addr::offset(self.frame_base) + s.offset)
    }

    // ------------------------------------------------------- statements

    fn exec_block_stmts(&mut self, stmts: &[Stmt]) -> IResult<Flow> {
        for s in stmts {
            match self.exec(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &Stmt) -> IResult<Flow> {
        self.tick()?;
        match s {
            Stmt::Block(b) => self.exec_block_stmts(&b.stmts),
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Decl(d) => {
                if let Some(init) = &d.init {
                    let a = self.slot_addr(d.slot);
                    let ty = self.frame_info().slots[d.slot as usize].ty.clone();
                    match (&ty, init) {
                        (Ty::Dim3, Init::Expr(e)) => {
                            let dims = self.eval_dim3(e)?;
                            self.machine.mem.store_u32(addr::offset(a), dims[0])?;
                            self.machine.mem.store_u32(addr::offset(a) + 4, dims[1])?;
                            self.machine.mem.store_u32(addr::offset(a) + 8, dims[2])?;
                        }
                        _ => self.store_init(a, &ty, init)?,
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_s, else_s } => {
                if self.eval(cond)?.is_truthy() {
                    self.exec(then_s)
                } else if let Some(e) = else_s {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.is_truthy() {
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if !self.eval(cond)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.exec(i)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c)?.is_truthy() {
                            break;
                        }
                    }
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(st)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::I32(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Omp(o) => {
                // Directives reaching the interpreter execute their body
                // sequentially (a valid 1-thread OpenMP execution). This is
                // the untranslated / host-fallback path.
                if let Some(b) = &o.body {
                    if o.dir.kind == crate::omp::DirKind::Sections {
                        // All sections run in order.
                        return self.exec(b);
                    }
                    self.exec(b)
                } else {
                    Ok(Flow::Normal)
                }
            }
        }
    }

    // ------------------------------------------------------ expressions

    fn eval(&mut self, e: &Expr) -> IResult<Value> {
        self.tick()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::I32(*v as i32)),
            ExprKind::FloatLit(v, true) => Ok(Value::F32(*v as f32)),
            ExprKind::FloatLit(v, false) => Ok(Value::F64(*v)),
            ExprKind::StrLit(s) => Ok(Value::Ptr(
                self.machine
                    .rodata_addr(s)
                    .ok_or_else(|| InterpError::Trap("unregistered string literal".into()))?,
            )),
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    let a = self.slot_addr(*slot);
                    let ty = self.frame_info().slots[*slot as usize].ty.clone();
                    if ty.is_array() {
                        Ok(Value::Ptr(a))
                    } else {
                        self.load_typed(a, &ty)
                    }
                }
                Resolved::Global(i) => {
                    let a = self.machine.global_addrs[*i as usize];
                    let ty = self.machine.info.globals[*i as usize].ty.clone();
                    if ty.is_array() {
                        Ok(Value::Ptr(a))
                    } else {
                        self.load_typed(a, &ty)
                    }
                }
                Resolved::Func => {
                    // Function designators evaluate to an opaque id; the
                    // runtime resolves them by name at registration time.
                    Err(InterpError::Trap(format!("function `{name}` used as a value on the host")))
                }
                Resolved::CudaBuiltin(_) => {
                    Err(InterpError::Trap(format!("CUDA builtin `{name}` referenced in host code")))
                }
                Resolved::Unresolved => Err(InterpError::Trap(format!(
                    "unresolved identifier `{name}` (sema not run?)"
                ))),
            },
            ExprKind::Call { callee, args } => self.eval_call(callee, args),
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                let g = self.eval_dim3(grid)?;
                let b = self.eval_dim3(block)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let hooks = self.hooks.clone();
                let ctx = HookCtx { machine: &self.machine, hooks: &self.hooks };
                hooks.kernel_launch(callee, g, b, &vals, &ctx)?;
                Ok(Value::I32(0))
            }
            ExprKind::Dim3 { .. } => {
                let d = self.eval_dim3(e)?;
                // A dim3 rvalue only appears in launch config position;
                // encode x for the rare scalar context.
                Ok(Value::I32(d[0] as i32))
            }
            ExprKind::Member { .. } => {
                let (a, ty) = self.lvalue(e)?;
                self.load_typed(a, &ty)
            }
            ExprKind::Index { .. } => {
                let (a, ty) = self.lvalue(e)?;
                if ty.is_array() {
                    Ok(Value::Ptr(a))
                } else {
                    self.load_typed(a, &ty)
                }
            }
            ExprKind::Unary { op, expr } => match op {
                UnOp::Neg => Ok(match self.eval(expr)? {
                    Value::I32(v) => Value::I32(v.wrapping_neg()),
                    Value::I64(v) => Value::I64(v.wrapping_neg()),
                    Value::F32(v) => Value::F32(-v),
                    Value::F64(v) => Value::F64(-v),
                    Value::Ptr(v) => Value::I64(-(v as i64)),
                }),
                UnOp::Not => Ok(Value::I32(!self.eval(expr)?.is_truthy() as i32)),
                UnOp::BitNot => Ok(match self.eval(expr)? {
                    Value::I64(v) => Value::I64(!v),
                    v => Value::I32(!v.as_i32()),
                }),
                UnOp::Deref => {
                    let (a, ty) = self.lvalue(e)?;
                    if ty.is_array() {
                        Ok(Value::Ptr(a))
                    } else {
                        self.load_typed(a, &ty)
                    }
                }
                UnOp::Addr => {
                    let (a, _) = self.lvalue(expr)?;
                    Ok(Value::Ptr(a))
                }
            },
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            ExprKind::Assign { op, lhs, rhs } => {
                let (a, ty) = self.lvalue(lhs)?;
                let v = match op {
                    None => self.eval(rhs)?,
                    Some(op) => {
                        let cur = self.load_typed(a, &ty)?;
                        let stride = self.ptr_stride(lhs)?;
                        let rval = self.eval(rhs)?;
                        rt::apply_binop(*op, cur, stride, rval)?
                    }
                };
                let v = convert(v, &ty);
                self.store_typed(a, &ty, v)?;
                Ok(v)
            }
            ExprKind::IncDec { pre, inc, expr } => {
                let (a, ty) = self.lvalue(expr)?;
                let old = self.load_typed(a, &ty)?;
                let stride = self.ptr_stride(expr)?;
                let delta = Value::I64(if *inc { 1 } else { -1 });
                let new = rt::apply_binop(BinOp::Add, old, stride, delta)?;
                let new = convert(new, &ty);
                self.store_typed(a, &ty, new)?;
                Ok(if *pre { new } else { old })
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                if self.eval(cond)?.is_truthy() {
                    self.eval(then_e)
                } else {
                    self.eval(else_e)
                }
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(expr)?;
                Ok(convert(v, ty))
            }
            ExprKind::SizeofTy(ty) => Ok(Value::I64(self.sizeof_rt(ty)? as i64)),
            ExprKind::SizeofExpr(inner) => Ok(Value::I64(self.sizeof_rt(&inner.ty)? as i64)),
            ExprKind::Comma(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
        }
    }

    /// Evaluate a grid/block configuration expression: a `dim3` value, a
    /// `dim3` variable, or a bare integer.
    pub fn eval_dim3(&mut self, e: &Expr) -> IResult<[u32; 3]> {
        match &e.kind {
            ExprKind::Dim3 { x, y, z } => {
                let xv = self.eval(x)?.as_i64().max(1) as u32;
                let yv = match y {
                    Some(y) => self.eval(y)?.as_i64().max(1) as u32,
                    None => 1,
                };
                let zv = match z {
                    Some(z) => self.eval(z)?.as_i64().max(1) as u32,
                    None => 1,
                };
                Ok([xv, yv, zv])
            }
            ExprKind::Ident(_, Resolved::Local(slot))
                if self.frame_info().slots[*slot as usize].ty == Ty::Dim3 =>
            {
                let a = addr::offset(self.slot_addr(*slot));
                Ok([
                    self.machine.mem.load_u32(a)?,
                    self.machine.mem.load_u32(a + 4)?,
                    self.machine.mem.load_u32(a + 8)?,
                ])
            }
            _ => {
                let v = self.eval(e)?.as_i64().max(1) as u32;
                Ok([v, 1, 1])
            }
        }
    }

    /// Stride for pointer arithmetic on `e` (1 for non-pointers).
    fn ptr_stride(&mut self, e: &Expr) -> IResult<u64> {
        match e.ty.decayed() {
            Ty::Ptr(inner) => self.sizeof_rt(&inner),
            _ => Ok(1),
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> IResult<Value> {
        // Short-circuit logicals.
        if op == BinOp::LogAnd {
            return Ok(Value::I32(
                (self.eval(lhs)?.is_truthy() && self.eval(rhs)?.is_truthy()) as i32,
            ));
        }
        if op == BinOp::LogOr {
            return Ok(Value::I32(
                (self.eval(lhs)?.is_truthy() || self.eval(rhs)?.is_truthy()) as i32,
            ));
        }
        let lv = self.eval(lhs)?;
        let rv = self.eval(rhs)?;
        // Pointer arithmetic uses the pointer operand's stride.
        let lt = lhs.ty.decayed();
        let rt_ = rhs.ty.decayed();
        if lt.is_ptr() && rt_.is_ptr() && op == BinOp::Sub {
            let stride = self.ptr_stride(lhs)?.max(1);
            return Ok(Value::I64((lv.as_ptr() as i64 - rv.as_ptr() as i64) / stride as i64));
        }
        let stride = if lt.is_ptr() {
            self.ptr_stride(lhs)?
        } else if rt_.is_ptr() {
            self.ptr_stride(rhs)?
        } else {
            1
        };
        rt::apply_binop(op, lv, stride, rv)
    }

    // ---------------------------------------------------------- lvalues

    fn lvalue(&mut self, e: &Expr) -> IResult<(u64, Ty)> {
        match &e.kind {
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    Ok((self.slot_addr(*slot), self.frame_info().slots[*slot as usize].ty.clone()))
                }
                Resolved::Global(i) => Ok((
                    self.machine.global_addrs[*i as usize],
                    self.machine.info.globals[*i as usize].ty.clone(),
                )),
                _ => Err(InterpError::Trap(format!("`{name}` is not an lvalue"))),
            },
            ExprKind::Unary { op: UnOp::Deref, expr } => {
                let p = self.eval(expr)?.as_ptr();
                if p == 0 {
                    return Err(InterpError::Mem(MemError::Null));
                }
                let ty = match expr.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => {
                        return Err(InterpError::Trap(format!("deref of non-pointer {other}")))
                    }
                };
                Ok((p, ty))
            }
            ExprKind::Index { base, index } => {
                let bv = self.eval(base)?;
                let p = bv.as_ptr();
                if p == 0 {
                    return Err(InterpError::Mem(MemError::Null));
                }
                let elem = match base.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => {
                        return Err(InterpError::Trap(format!("index of non-pointer {other}")))
                    }
                };
                let stride = self.sizeof_rt(&elem)?;
                let i = self.eval(index)?.as_i64();
                Ok(((p as i64 + i * stride as i64) as u64, elem))
            }
            ExprKind::Member { base, field } => {
                let (a, ty) = self.lvalue(base)?;
                if ty != Ty::Dim3 {
                    return Err(InterpError::Trap(format!("member access on {ty}")));
                }
                let off = match field.as_str() {
                    "x" => 0,
                    "y" => 4,
                    "z" => 8,
                    _ => return Err(InterpError::Trap(format!("dim3 has no member {field}"))),
                };
                Ok((a + off, Ty::Int))
            }
            ExprKind::Cast { expr, .. } => self.lvalue(expr),
            _ => Err(InterpError::Trap("expression is not an lvalue".into())),
        }
    }

    /// Runtime sizeof, evaluating VLA extents in the current frame.
    fn sizeof_rt(&mut self, ty: &Ty) -> IResult<u64> {
        match ty {
            Ty::Array(elem, len) => {
                let n = match len {
                    ArrayLen::Const(n) => *n,
                    ArrayLen::Expr(e) => {
                        let v = self.eval(e)?.as_i64();
                        if v < 0 {
                            return Err(InterpError::Trap("negative VLA extent".into()));
                        }
                        v as u64
                    }
                    ArrayLen::Unspec => {
                        return Err(InterpError::Trap("sizeof of unsized array".into()))
                    }
                };
                Ok(self.sizeof_rt(elem)? * n)
            }
            other => other
                .size()
                .ok_or_else(|| InterpError::Trap(format!("sizeof of unsized type {other}"))),
        }
    }

    // ------------------------------------------------------ typed memory

    pub fn load_typed(&self, a: u64, ty: &Ty) -> IResult<Value> {
        let mem = self.resolve_space(a)?;
        let off = addr::offset(a);
        Ok(match ty {
            Ty::Char => Value::I32(mem.load_u8(off)? as i8 as i32),
            Ty::Int => Value::I32(mem.load_u32(off)? as i32),
            Ty::Long => Value::I64(mem.load_u64(off)? as i64),
            Ty::Float => Value::F32(f32::from_bits(mem.load_u32(off)?)),
            Ty::Double => Value::F64(f64::from_bits(mem.load_u64(off)?)),
            Ty::Ptr(_) => Value::Ptr(mem.load_u64(off)?),
            other => return Err(InterpError::Trap(format!("cannot load value of type {other}"))),
        })
    }

    pub fn store_typed(&self, a: u64, ty: &Ty, v: Value) -> IResult<()> {
        let mem = self.resolve_space(a)?;
        let off = addr::offset(a);
        match ty {
            Ty::Char => mem.store_u8(off, v.as_i64() as u8)?,
            Ty::Int => mem.store_u32(off, v.as_i32() as u32)?,
            Ty::Long => mem.store_u64(off, v.as_i64() as u64)?,
            Ty::Float => mem.store_u32(off, v.as_f32().to_bits())?,
            Ty::Double => mem.store_u64(off, v.as_f64().to_bits())?,
            Ty::Ptr(_) => mem.store_u64(off, v.as_ptr())?,
            Ty::Dim3 => {
                // Stored elementwise via eval_dim3 paths; scalar store sets x.
                mem.store_u32(off, v.as_i64() as u32)?;
            }
            other => return Err(InterpError::Trap(format!("cannot store value of type {other}"))),
        }
        Ok(())
    }

    fn resolve_space(&self, a: u64) -> IResult<&MemArena> {
        match addr::space(a) {
            Some(Space::Host) => Ok(&self.machine.mem),
            _ => Err(InterpError::Mem(MemError::BadSpace { addr: a })),
        }
    }

    // ----------------------------------------------------------- calls

    fn eval_call(&mut self, callee: &str, args: &[Expr]) -> IResult<Value> {
        // Guest-defined function?
        if self.machine.func(callee).is_some() {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(a)?);
            }
            return self.call(callee, &vals);
        }
        // printf needs raw format access.
        if callee == "printf" {
            return self.do_printf(args);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a)?);
        }
        if let Some(which) = rt::builtin_index(callee) {
            return rt::call_builtin(&self.machine, which, &vals);
        }
        let hooks = self.hooks.clone();
        let ctx = HookCtx { machine: &self.machine, hooks: &self.hooks };
        if let Some(v) = hooks.call(callee, &vals, &ctx)? {
            return Ok(v);
        }
        Err(InterpError::Trap(format!("unknown function `{callee}`")))
    }

    fn do_printf(&mut self, args: &[Expr]) -> IResult<Value> {
        if args.is_empty() {
            return Err(InterpError::Trap("printf needs a format".into()));
        }
        let fmt = match &args[0].kind {
            ExprKind::StrLit(s) => s.clone(),
            _ => {
                let p = self.eval(&args[0])?.as_ptr();
                self.machine.mem.read_cstr(addr::offset(p))?
            }
        };
        // Arguments are evaluated lazily against the conversion list, so
        // surplus arguments are never evaluated (mirrored by the compiler
        // for static formats).
        let mut vals = Vec::new();
        for (a, _) in args[1..].iter().zip(rt::printf_arg_kinds(&fmt)) {
            vals.push(self.eval(a)?);
        }
        rt::do_printf(&self.machine, &fmt, &vals)
    }
}

impl Drop for TreeWalker {
    fn drop(&mut self) {
        let _ = self.machine.heap.lock().free(self.stack_block);
    }
}
