//! The **host part** of the cudadev module (§4.2.1).
//!
//! Responsible for device discovery and *lazy* initialization, memory
//! allocation and transfers via the (simulated) CUDA driver API, the device
//! data environment (`map` clauses with reference counting, `target data`,
//! `enter`/`exit data`, `update`), and the three-phase kernel launch:
//!
//! 1. **loading** — locate the kernel binary on disk; `.cubin` files
//!    deserialize directly, `.sptx` files are JIT-assembled and linked
//!    against the device library, with a content-hash disk cache;
//! 2. **parameter preparation** — translate host addresses of mapped
//!    variables to their device counterparts;
//! 3. **launch** — set grid/block dimensions and enter the simulator
//!    (`cuLaunchKernel`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gpusim::fault::{FaultPlan, FaultSite};
use gpusim::{Device, ExecError, ExecMode, LaunchConfig, LaunchStats};
use vmcommon::sync::Mutex;
use vmcommon::MemArena;

use crate::devlib::{exports, CudaDeviceLib, NUM_LOCKS};
use crate::error::CudadevError;
use crate::jit;

/// Mapping direction of one map clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    To,
    From,
    ToFrom,
    Alloc,
    Release,
    Delete,
}

/// One live mapping in the device data environment.
#[derive(Clone, Debug)]
struct MapEntry {
    dev_ptr: u64,
    len: u64,
    refcount: u32,
    /// Copy back to host when the last reference is removed.
    copy_out: bool,
}

/// Accumulated virtual device time (the quantity the paper reports:
/// "kernel execution time, plus any required memory operations").
#[derive(Clone, Copy, Debug, Default)]
pub struct DevClock {
    pub kernel_s: f64,
    pub memcpy_s: f64,
    pub launches: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub jit_compiles: u64,
    pub jit_cache_hits: u64,
    /// Corrupt JIT-cache entries detected and recompiled.
    pub jit_invalidations: u64,
    /// Driver operations retried after a transient fault.
    pub retries: u64,
}

impl DevClock {
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.memcpy_s
    }

    /// Fold another clock into this one (registry-level aggregation over
    /// multiple devices).
    pub fn merge(&mut self, other: &DevClock) {
        self.kernel_s += other.kernel_s;
        self.memcpy_s += other.memcpy_s;
        self.launches += other.launches;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.jit_compiles += other.jit_compiles;
        self.jit_cache_hits += other.jit_cache_hits;
        self.jit_invalidations += other.jit_invalidations;
        self.retries += other.retries;
    }
}

/// Bounded exponential backoff for transient driver faults.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How many times a transiently failing operation is retried before
    /// the error is surfaced.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based) is `base_delay_ms << (k-1)`,
    /// capped at `max_delay_ms`.
    pub base_delay_ms: u64,
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_delay_ms: 1, max_delay_ms: 20 }
    }
}

impl RetryPolicy {
    /// Backoff delay before the `attempt`-th retry (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let ms = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.max_delay_ms);
        Duration::from_millis(ms)
    }
}

/// Configuration of a CudaDev instance.
#[derive(Clone, Debug)]
pub struct CudaDevConfig {
    /// Logical device number in the registry; selects which `devN:`-scoped
    /// rules of the `OMPI_FAULT_PLAN` environment variable apply when no
    /// explicit `fault_plan` is given.
    pub device_id: u32,
    /// Device DRAM size (bytes).
    pub global_mem: usize,
    /// Directory where kernel binaries live.
    pub kernel_dir: PathBuf,
    /// JIT disk-cache directory (PTX mode).
    pub jit_cache_dir: PathBuf,
    /// How much of each grid to simulate.
    pub exec_mode: ExecMode,
    /// Launch-level sampling: after a warm-up, repeated launches of the
    /// same kernel are *estimated* from recent measured launches (scaled by
    /// total thread count) instead of simulated. Used by the Fig. 4 harness
    /// for gramschmidt-style apps that launch thousands of kernels inside a
    /// host loop. Documented substitution — see DESIGN.md.
    pub launch_sampling: bool,
    /// Deterministic fault-injection plan. `None` falls back to the
    /// `OMPI_FAULT_PLAN` environment variable (see `gpusim::fault`).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Retry policy for transient driver faults.
    pub retry: RetryPolicy,
}

impl Default for CudaDevConfig {
    fn default() -> Self {
        let base = std::env::temp_dir().join("ompi-cudadev");
        CudaDevConfig {
            device_id: 0,
            global_mem: 1 << 30,
            kernel_dir: base.join("kernels"),
            jit_cache_dir: base.join("jitcache"),
            exec_mode: ExecMode::Functional,
            launch_sampling: false,
            fault_plan: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// The cudadev host module.
pub struct CudaDev {
    cfg: CudaDevConfig,
    /// Lazily created on first use (the paper's lazy initialization).
    device: Mutex<Option<Arc<Device>>>,
    initialized: AtomicBool,
    lib: Mutex<Option<Arc<CudaDeviceLib>>>,
    modules: Mutex<HashMap<String, Arc<sptx::Module>>>,
    maps: Mutex<HashMap<u64, MapEntry>>,
    pub clock: Mutex<DevClock>,
    /// Per-kernel launch history for launch-level sampling:
    /// (launch count, recent cycles-per-thread estimate).
    launch_hist: Mutex<HashMap<String, (u64, f64)>>,
    /// Latched by the first terminal device failure: every subsequent
    /// operation fails fast with [`CudadevError::Broken`] so the runtime
    /// skips the dead device and runs on the host instead.
    broken: AtomicBool,
}

impl CudaDev {
    pub fn new(cfg: CudaDevConfig) -> CudaDev {
        CudaDev {
            cfg,
            device: Mutex::new(None),
            initialized: AtomicBool::new(false),
            lib: Mutex::new(None),
            modules: Mutex::new(HashMap::new()),
            maps: Mutex::new(HashMap::new()),
            clock: Mutex::new(DevClock::default()),
            launch_hist: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
        }
    }

    /// Whether the device has been fully initialized yet (it only happens
    /// when the first kernel is about to be offloaded — §4.2.1).
    pub fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::Acquire)
    }

    /// Has a terminal failure latched the device broken?
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    /// Latch the device broken; all further operations fail fast.
    pub fn mark_broken(&self) {
        self.broken.store(true, Ordering::Release);
    }

    /// The device, initializing on first use; fails instead of panicking
    /// when the (possibly fault-injected) driver cannot come up.
    pub fn try_device(&self) -> Result<Arc<Device>, CudadevError> {
        if self.is_broken() {
            return Err(CudadevError::Broken);
        }
        let mut slot = self.device.lock();
        if let Some(d) = slot.as_ref() {
            return Ok(d.clone());
        }
        let plan = self
            .cfg
            .fault_plan
            .clone()
            .or_else(|| FaultPlan::from_env_for_device(self.cfg.device_id).map(Arc::new));
        if let Some(p) = &plan {
            if let Err(e) = p.check(FaultSite::Init) {
                if !e.is_transient() {
                    self.mark_broken();
                }
                return Err(CudadevError::Init(e));
            }
        }
        let d = Arc::new(Device::new(self.cfg.global_mem));
        d.set_fault_plan(plan);
        // Reserve the device runtime control block (critical-section lock
        // words).
        let lock_area = match self.retrying(|| d.mem_alloc(NUM_LOCKS * 4)) {
            Ok(a) => a,
            Err(e) => {
                if matches!(e, ExecError::DeviceLost(_)) {
                    self.mark_broken();
                }
                return Err(CudadevError::Init(e));
            }
        };
        *self.lib.lock() = Some(Arc::new(CudaDeviceLib::new(lock_area)));
        *slot = Some(d.clone());
        self.initialized.store(true, Ordering::Release);
        Ok(d)
    }

    /// The device, initializing on first use. Panics on initialization
    /// failure — a convenience for tests and examples; runtime code goes
    /// through [`CudaDev::try_device`].
    pub fn device(&self) -> Arc<Device> {
        self.try_device().expect("device initialization failed")
    }

    fn devlib(&self) -> Result<Arc<CudaDeviceLib>, CudadevError> {
        self.try_device()?;
        self.lib
            .lock()
            .as_ref()
            .cloned()
            .ok_or_else(|| CudadevError::Init(ExecError::Trap("device library missing".into())))
    }

    /// Run a driver operation, retrying transient faults with bounded
    /// exponential backoff.
    fn retrying<T>(&self, mut f: impl FnMut() -> Result<T, ExecError>) -> Result<T, ExecError> {
        let mut attempt = 0u32;
        loop {
            match f() {
                Err(e) if e.is_transient() && attempt < self.cfg.retry.max_retries => {
                    attempt += 1;
                    self.clock.lock().retries += 1;
                    std::thread::sleep(self.cfg.retry.delay(attempt));
                }
                other => return other,
            }
        }
    }

    /// Post-process a driver result: terminal failures latch the device
    /// broken.
    fn latch(&self, e: ExecError) -> ExecError {
        if matches!(e, ExecError::DeviceLost(_)) {
            self.mark_broken();
        }
        e
    }

    // ------------------------------------------------- data environment

    /// Enter a mapping for `[host_addr, host_addr+len)`.
    pub fn map(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        kind: MapKind,
    ) -> Result<u64, CudadevError> {
        let device = self.try_device()?;
        let mut maps = self.maps.lock();
        if let Some(entry) = maps.get_mut(&host_addr) {
            entry.refcount += 1;
            if matches!(kind, MapKind::From | MapKind::ToFrom) {
                entry.copy_out = true;
            }
            return Ok(entry.dev_ptr);
        }
        let dev_ptr = self.retrying(|| device.mem_alloc(len)).map_err(|e| self.latch(e))?;
        if matches!(kind, MapKind::To | MapKind::ToFrom) {
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(host_addr), &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            let t =
                self.retrying(|| device.memcpy_h2d(dev_ptr, &buf)).map_err(|e| self.latch(e))?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.h2d_bytes += len;
        }
        maps.insert(
            host_addr,
            MapEntry {
                dev_ptr,
                len,
                refcount: 1,
                copy_out: matches!(kind, MapKind::From | MapKind::ToFrom),
            },
        );
        Ok(dev_ptr)
    }

    /// Exit a mapping; copies back and frees when the refcount drops to 0.
    pub fn unmap(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        kind: MapKind,
    ) -> Result<(), CudadevError> {
        let device = self.try_device()?;
        let mut maps = self.maps.lock();
        let entry = maps.get_mut(&host_addr).ok_or_else(|| {
            CudadevError::Data(ExecError::Trap(format!(
                "unmap of unmapped host address {host_addr:#x}"
            )))
        })?;
        entry.refcount = entry.refcount.saturating_sub(1);
        let delete_now = kind == MapKind::Delete || entry.refcount == 0;
        if !delete_now {
            return Ok(());
        }
        let entry = maps.remove(&host_addr).unwrap();
        let want_out = entry.copy_out || matches!(kind, MapKind::From | MapKind::ToFrom);
        if want_out && kind != MapKind::Delete && kind != MapKind::Release {
            let mut buf = vec![0u8; entry.len as usize];
            let t = self
                .retrying(|| device.memcpy_d2h(&mut buf, entry.dev_ptr))
                .map_err(|e| self.latch(e))?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host_addr), &buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.d2h_bytes += entry.len;
        }
        device.mem_free(entry.dev_ptr).map_err(|e| self.latch(e))?;
        Ok(())
    }

    /// `target update to(...)` / `from(...)`: refresh one side.
    pub fn update(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        to_device: bool,
    ) -> Result<(), CudadevError> {
        let device = self.try_device()?;
        let maps = self.maps.lock();
        let entry = maps.get(&host_addr).ok_or_else(|| {
            CudadevError::Data(ExecError::Trap(format!(
                "target update of unmapped host address {host_addr:#x}"
            )))
        })?;
        let len = len.min(entry.len);
        if to_device {
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(host_addr), &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            let t = self
                .retrying(|| device.memcpy_h2d(entry.dev_ptr, &buf))
                .map_err(|e| self.latch(e))?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.h2d_bytes += len;
        } else {
            let mut buf = vec![0u8; len as usize];
            let t = self
                .retrying(|| device.memcpy_d2h(&mut buf, entry.dev_ptr))
                .map_err(|e| self.latch(e))?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host_addr), &buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.d2h_bytes += len;
        }
        Ok(())
    }

    /// Parameter preparation: the device address for a mapped host address.
    pub fn dev_addr(&self, host_addr: u64) -> Option<u64> {
        self.maps.lock().get(&host_addr).map(|e| e.dev_ptr)
    }

    /// Is anything mapped? (test/diagnostic helper)
    pub fn live_mappings(&self) -> usize {
        self.maps.lock().len()
    }

    // ------------------------------------------------------ kernel launch

    /// Loading phase: find and load the kernel module `name` (file stem) in
    /// the kernel directory.
    pub fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, CudadevError> {
        if let Some(m) = self.modules.lock().get(name) {
            return Ok(m.clone());
        }
        let load_err =
            |reason: String| CudadevError::ModuleLoad { module: name.to_string(), reason };
        let device = self.try_device()?;
        self.retrying(|| device.fault_check(FaultSite::ModuleLoad))
            .map_err(|e| self.latch(e))
            .map_err(|e| load_err(e.to_string()))?;
        let cubin_path = self.cfg.kernel_dir.join(format!("{name}.cubin"));
        let sptx_path = self.cfg.kernel_dir.join(format!("{name}.sptx"));
        let module: Arc<sptx::Module> = if cubin_path.exists() {
            let bytes = std::fs::read(&cubin_path)
                .map_err(|e| load_err(format!("reading {cubin_path:?}: {e}")))?;
            Arc::new(sptx::cubin::decode(&bytes).map_err(|e| load_err(e.to_string()))?)
        } else if sptx_path.exists() {
            // JIT path with disk cache.
            let text = std::fs::read_to_string(&sptx_path)
                .map_err(|e| load_err(format!("reading {sptx_path:?}: {e}")))?;
            if device.fault_check(FaultSite::JitCache).is_err() {
                // Injected cache corruption: scribble over the cached
                // artifact so the loader must detect the damage, invalidate
                // the entry and recompile.
                let cached = jit::cache_path(&text, &self.cfg.jit_cache_dir);
                if cached.exists() {
                    let _ = std::fs::write(&cached, b"\xffcorrupted-cache-entry");
                    self.clock.lock().jit_invalidations += 1;
                }
            }
            let (m, cache_hit) = jit::jit_load(&text, &self.cfg.jit_cache_dir, &exports())
                .map_err(|reason| CudadevError::Jit { module: name.to_string(), reason })?;
            let mut clk = self.clock.lock();
            if cache_hit {
                clk.jit_cache_hits += 1;
            } else {
                clk.jit_compiles += 1;
            }
            m
        } else {
            return Err(load_err(format!(
                "kernel binary not found in {:?} (looked for .cubin and .sptx)",
                self.cfg.kernel_dir
            )));
        };
        sptx::verify_module(&module).map_err(|e| load_err(e.to_string()))?;
        self.modules.lock().insert(name.to_string(), module.clone());
        Ok(module)
    }

    /// Register an in-memory module (used by tests and the quickstart
    /// example; normal operation loads from disk).
    pub fn register_module(&self, module: sptx::Module) {
        self.modules.lock().insert(module.name.clone(), Arc::new(module));
    }

    /// Launch phase (`cuLaunchKernel`): run `kernel` from module `module`
    /// with raw parameter bits.
    pub fn launch(
        &self,
        module: &str,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        params: Vec<u64>,
    ) -> Result<LaunchStats, CudadevError> {
        let device = self.try_device()?;
        let lib = self.devlib()?;
        let m = self.load_module(module)?;
        let launch_err =
            |error: ExecError| CudadevError::Launch { kernel: kernel.to_string(), error };
        let total_threads = grid[0] as u64
            * grid[1] as u64
            * grid[2] as u64
            * block[0] as u64
            * block[1] as u64
            * block[2] as u64;

        // Launch-level sampling: estimate repeated launches of the same
        // kernel from the measured cycles-per-thread of earlier ones.
        if self.cfg.launch_sampling {
            let key = format!("{module}:{kernel}");
            let (count, cpt) = {
                let h = self.launch_hist.lock();
                h.get(&key).copied().unwrap_or((0, 0.0))
            };
            let measure = count < 8 || count % 128 == 0;
            if !measure && cpt > 0.0 {
                let cycles = cpt * total_threads as f64;
                let time_s = gpusim::timing::LAUNCH_OVERHEAD_S + cycles / device.props.clock_hz;
                self.launch_hist.lock().insert(key, (count + 1, cpt));
                let mut clk = self.clock.lock();
                clk.kernel_s += time_s;
                clk.launches += 1;
                return Ok(LaunchStats {
                    blocks_total: (grid[0] as u64) * (grid[1] as u64) * (grid[2] as u64),
                    blocks_executed: 0,
                    kernel_cycles: cycles as u64,
                    time_s,
                    ..Default::default()
                });
            }
            let cfg = LaunchConfig { grid, block, params };
            let stats = self
                .retrying(|| {
                    gpusim::launch(&device, &m, kernel, &cfg, lib.as_ref(), self.cfg.exec_mode)
                })
                .map_err(|e| launch_err(self.latch(e)))?;
            let this_cpt = stats.kernel_cycles as f64 / total_threads.max(1) as f64;
            let new_cpt = if cpt > 0.0 { 0.7 * cpt + 0.3 * this_cpt } else { this_cpt };
            self.launch_hist.lock().insert(key, (count + 1, new_cpt));
            let mut clk = self.clock.lock();
            clk.kernel_s += stats.time_s;
            clk.launches += 1;
            return Ok(stats);
        }

        let cfg = LaunchConfig { grid, block, params };
        let stats = self
            .retrying(|| {
                gpusim::launch(&device, &m, kernel, &cfg, lib.as_ref(), self.cfg.exec_mode)
            })
            .map_err(|e| launch_err(self.latch(e)))?;
        let mut clk = self.clock.lock();
        clk.kernel_s += stats.time_s;
        clk.launches += 1;
        Ok(stats)
    }

    /// Reset the virtual clock (per-measurement runs).
    pub fn reset_clock(&self) {
        *self.clock.lock() = DevClock::default();
    }

    pub fn kernel_dir(&self) -> &PathBuf {
        &self.cfg.kernel_dir
    }

    pub fn exec_mode(&self) -> ExecMode {
        self.cfg.exec_mode
    }

    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.cfg.exec_mode = mode;
    }
}
