//! Device discovery: what the cudadev host module sees when it (lazily)
//! initializes the simulated Jetson Nano GPU.
//!
//!     cargo run --release --example device_query

use ompi_nano::cudadev::{CudaDev, CudaDevConfig};

fn main() {
    let dev = CudaDev::new(CudaDevConfig::default());
    println!("initialized before first use? {}", dev.is_initialized());
    let d = dev.device(); // first use triggers initialization (§4.2.1)
    println!("initialized after first use?  {}", dev.is_initialized());
    let p = &d.props;
    println!("\ndevice: {}", p.name);
    println!("  compute capability : sm_{}{}", p.compute_capability.0, p.compute_capability.1);
    println!("  multiprocessors    : {} ({} cores each)", p.multiprocessors, p.cores_per_mp);
    println!("  warp size          : {}", p.warp_size);
    println!("  clock              : {:.1} MHz", p.clock_hz / 1e6);
    println!("  max threads/block  : {}", p.max_threads_per_block);
    println!("  shared mem/block   : {} KiB", p.shared_mem_per_block / 1024);
    println!("  global memory      : {} MiB", p.total_global_mem >> 20);
}
