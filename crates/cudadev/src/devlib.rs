//! The **device part** of the cudadev module: the device runtime library
//! that gets linked with every kernel (§4.2.2).
//!
//! It implements the OpenMP functionality available inside offloaded
//! kernels:
//!
//! * the master/worker scheme for stand-alone `parallel` regions (§3.2):
//!   `cudadev_register_parallel`, `cudadev_workerfunc`,
//!   `cudadev_exit_target`, the shared-memory stack
//!   (`cudadev_push_shmem`/`cudadev_pop_shmem`) and the B1/B2 named-barrier
//!   protocol;
//! * iteration distribution for combined constructs (§3.1):
//!   `cudadev_get_distribute_chunk` and `cudadev_get_{static,dynamic,
//!   guided}_chunk`;
//! * worksharing (`sections` assigned across warps, `single` via
//!   if-master), `critical` via busy-spin CAS locks, barriers with the
//!   W⌈N/W⌉ rounding rule;
//! * the device-side `omp_*` query API.

use std::sync::atomic::Ordering;

use gpusim::{iter_lanes, DeviceLib, ExecError, LaneVec, Warp};
use vmcommon::sched::static_block;

/// Block `ext` slot assignments (slot 0 is gpusim's shared-memory stack
/// pointer).
pub mod slots {
    /// Dynamic/guided schedule: iterations already claimed.
    pub const DYN_COUNTER: usize = 1;
    /// Master/worker: registered parallel-region function index.
    pub const MW_FN: usize = 2;
    /// Master/worker: shared-variable struct pointer.
    pub const MW_VARS: usize = 3;
    /// Master/worker: number of participating threads.
    pub const MW_NTHR: usize = 4;
    /// Master/worker: target-region exit flag.
    pub const MW_EXIT: usize = 5;
    /// 1 while a master/worker parallel region is executing.
    pub const MW_MODE: usize = 6;
    /// `sections` dispenser.
    pub const SECTIONS: usize = 7;
    /// `single` winner flag.
    pub const SINGLE: usize = 8;
}

/// Named barrier ids used by the master/worker protocol (§3.2).
pub const B1: u32 = 1;
pub const B2: u32 = 2;

/// Threads per master/worker kernel: one master warp + 3 worker warps — the
/// Nano's SMM has 128 cores.
pub const MW_BLOCK_THREADS: u32 = 128;

/// Worker threads available to parallel regions (3 warps).
pub const MW_WORKERS: u32 = 96;

/// Warp size.
const W: u32 = 32;

/// Round `n` up to a multiple of the warp size (the paper's X = W⌈N/W⌉).
pub fn round_barrier_count(n: u32) -> u32 {
    n.div_ceil(W).max(1) * W
}

/// The exported symbol list (used to link kernels).
pub fn exports() -> Vec<String> {
    [
        "cudadev_in_masterwarp",
        "cudadev_is_masterthr",
        "cudadev_register_parallel",
        "cudadev_workerfunc",
        "cudadev_exit_target",
        "cudadev_push_shmem",
        "cudadev_pop_shmem",
        "cudadev_getaddr",
        "cudadev_get_distribute_chunk",
        "cudadev_get_static_chunk",
        "cudadev_get_dynamic_chunk",
        "cudadev_get_guided_chunk",
        "cudadev_sched_reset",
        "cudadev_red_f32",
        "cudadev_red_f64",
        "cudadev_red_i32",
        "cudadev_barrier",
        "cudadev_critical_enter",
        "cudadev_critical_exit",
        "cudadev_sections_next",
        "cudadev_sections_reset",
        "cudadev_single_enter",
        "cudadev_single_reset",
        "omp_get_thread_num",
        "omp_get_num_threads",
        "omp_get_team_num",
        "omp_get_num_teams",
        "omp_is_initial_device",
        "powf",
        "pow",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The device library. One instance per CudaDev module; `lock_area` is a
/// small global-memory region reserved at initialization for `critical`
/// lock words.
pub struct CudaDeviceLib {
    /// Device global-memory address of the lock area (16 × u32 lock words).
    pub lock_area: u64,
}

/// Number of lock words in the lock area.
pub const NUM_LOCKS: u64 = 16;

impl CudaDeviceLib {
    pub fn new(lock_area: u64) -> CudaDeviceLib {
        CudaDeviceLib { lock_area }
    }

    /// Thread id *within the current parallel region* for a lane.
    fn region_tid(&self, warp: &Warp<'_>, lane: u32) -> i64 {
        let lin = warp.lin_tid(lane) as i64;
        if self.mw_active(warp) {
            lin - W as i64
        } else {
            lin
        }
    }

    fn region_nthr(&self, warp: &Warp<'_>) -> u32 {
        if self.mw_active(warp) {
            warp.env.ctx.ext[slots::MW_NTHR].load(Ordering::Acquire) as u32
        } else {
            warp.env.nthreads
        }
    }

    fn mw_active(&self, warp: &Warp<'_>) -> bool {
        warp.env.ctx.ext[slots::MW_MODE].load(Ordering::Acquire) != 0
    }
}

/// Resolve a tagged address to the arena it lives in (global or shared).
fn resolve_arena<'w>(warp: &'w Warp<'_>, addr: u64) -> Result<&'w vmcommon::MemArena, ExecError> {
    match vmcommon::addr::space(addr) {
        Some(vmcommon::addr::Space::Global) => Ok(&warp.env.device.global),
        Some(vmcommon::addr::Space::Shared) => Ok(&warp.env.ctx.shared),
        _ => Err(ExecError::Trap(format!("reduction accumulator in invalid space: {addr:#x}"))),
    }
}

fn fold_f32(a: f32, b: f32, op: u64) -> Result<f32, ExecError> {
    Ok(match op {
        0 => a + b,
        1 => a * b,
        2 => a.max(b),
        3 => a.min(b),
        _ => return Err(ExecError::Trap(format!("bad reduction opcode {op}"))),
    })
}

fn fold_f64(a: f64, b: f64, op: u64) -> Result<f64, ExecError> {
    Ok(match op {
        0 => a + b,
        1 => a * b,
        2 => a.max(b),
        3 => a.min(b),
        _ => return Err(ExecError::Trap(format!("bad reduction opcode {op}"))),
    })
}

fn fold_i32(a: i32, b: i32, op: u64) -> Result<i32, ExecError> {
    Ok(match op {
        0 => a.wrapping_add(b),
        1 => a.wrapping_mul(b),
        2 => a.max(b),
        3 => a.min(b),
        _ => return Err(ExecError::Trap(format!("bad reduction opcode {op}"))),
    })
}

/// Per-lane uniform helper.
fn first(mask: u32, args: &LaneVec) -> u64 {
    args[mask.trailing_zeros().min(31) as usize]
}

/// `bar_sync` with a trace event: records the simulated cycles this warp
/// spent parked at the barrier as a complete event on the warp's track
/// (tid = 1 + warp_id; tid 0 is the driver stream).
fn bar_sync_traced(
    warp: &mut Warp<'_>,
    id: u32,
    expected: u32,
    label: &'static str,
) -> Result<(), ExecError> {
    let trace = warp.env.device.trace();
    let before = warp.clock;
    let r = warp.bar_sync(id, expected);
    if let Some(t) = trace {
        let hz = warp.env.device.props.clock_hz;
        t.obs.tracer.complete(
            t.pid,
            1 + warp.warp_id as u64,
            label,
            "barrier",
            t.base_s + before as f64 / hz,
            warp.clock.saturating_sub(before) as f64 / hz,
            vec![("warp", (warp.warp_id as u64).into())],
        );
    }
    r
}

/// Emit an instant event on the calling warp's track at its current
/// simulated time.
fn warp_instant(
    warp: &Warp<'_>,
    name: &str,
    cat: &'static str,
    args: Vec<(&'static str, obs::ArgValue)>,
) {
    if let Some(t) = warp.env.device.trace() {
        let hz = warp.env.device.props.clock_hz;
        t.obs.tracer.instant(
            t.pid,
            1 + warp.warp_id as u64,
            name,
            cat,
            t.base_s + warp.clock as f64 / hz,
            args,
        );
    }
}

fn uniform_ret(v: u64) -> Option<LaneVec> {
    Some([v; 32])
}

impl DeviceLib for CudaDeviceLib {
    fn call(
        &self,
        name: &str,
        warp: &mut Warp<'_>,
        mask: u32,
        args: &[LaneVec],
        _sargs: &[String],
    ) -> Result<Option<LaneVec>, ExecError> {
        match name {
            // ------------------------------------------------ identity-ish
            "cudadev_in_masterwarp" => {
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    out[lane as usize] = ((args[0][lane as usize] as i64) < W as i64) as u64;
                }
                Ok(Some(out))
            }
            "cudadev_is_masterthr" => {
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    out[lane as usize] = (args[0][lane as usize] as i64 == 0) as u64;
                }
                Ok(Some(out))
            }
            "cudadev_getaddr" => Ok(Some(args[0])),

            // --------------------------------------------------- omp_* API
            "omp_get_thread_num" => {
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    out[lane as usize] = self.region_tid(warp, lane).max(0) as u64;
                }
                Ok(Some(out))
            }
            "omp_get_num_threads" => Ok(uniform_ret(self.region_nthr(warp) as u64)),
            "omp_get_team_num" => {
                let [gx, gy, _] = warp.env.grid_dim;
                let [cx, cy, cz] = warp.env.ctaid;
                Ok(uniform_ret(
                    (cx as u64) + (cy as u64) * gx as u64 + (cz as u64) * (gx as u64 * gy as u64),
                ))
            }
            "omp_get_num_teams" => {
                let [gx, gy, gz] = warp.env.grid_dim;
                Ok(uniform_ret(gx as u64 * gy as u64 * gz as u64))
            }
            "omp_is_initial_device" => Ok(uniform_ret(0)),

            // ---------------------------------------------- shared-mem stack
            "cudadev_push_shmem" => {
                // (src_ptr, size) → shared address of the pushed copy.
                // Master-thread only (sequential region).
                let src = first(mask, &args[0]);
                let size = first(mask, &args[1]);
                let sp = &warp.env.ctx.ext[gpusim::SHMEM_SP_SLOT];
                let off = sp.load(Ordering::Acquire);
                let aligned = off.next_multiple_of(8);
                let dst = vmcommon::addr::make(vmcommon::addr::Space::Shared, aligned);
                warp.copy_bytes(dst, src, size)?;
                let depth = aligned + size.next_multiple_of(8);
                sp.store(depth, Ordering::Release);
                warp_instant(
                    warp,
                    "shmem push",
                    "shmem",
                    vec![("bytes", size.into()), ("depth", depth.into())],
                );
                Ok(uniform_ret(dst))
            }
            "cudadev_pop_shmem" => {
                // (dst_ptr, size): copy the top entry back and deallocate.
                let dst = first(mask, &args[0]);
                let size = first(mask, &args[1]);
                let sp = &warp.env.ctx.ext[gpusim::SHMEM_SP_SLOT];
                let top = sp.load(Ordering::Acquire);
                let entry = top
                    .checked_sub(size.next_multiple_of(8))
                    .ok_or_else(|| ExecError::Trap("shared-memory stack underflow".into()))?;
                let src = vmcommon::addr::make(vmcommon::addr::Space::Shared, entry);
                warp.copy_bytes(dst, src, size)?;
                sp.store(entry, Ordering::Release);
                warp_instant(
                    warp,
                    "shmem pop",
                    "shmem",
                    vec![("bytes", size.into()), ("depth", entry.into())],
                );
                Ok(uniform_ret(0))
            }

            // ------------------------------------------------ master/worker
            "cudadev_register_parallel" => {
                // (fn_index, vars_ptr, nthr) — master thread only.
                let fnidx = first(mask, &args[0]);
                let vars = first(mask, &args[1]);
                let nthr = (first(mask, &args[2]) as u32).clamp(1, MW_WORKERS);
                let region_start = warp.clock;
                let ext = &warp.env.ctx.ext;
                ext[slots::MW_FN].store(fnidx, Ordering::Release);
                ext[slots::MW_VARS].store(vars, Ordering::Release);
                ext[slots::MW_NTHR].store(nthr as u64, Ordering::Release);
                ext[slots::MW_MODE].store(1, Ordering::Release);
                // Wake the workers (region start)…
                bar_sync_traced(warp, B1, MW_BLOCK_THREADS, "B1 wake")?;
                // …and wait for region completion.
                bar_sync_traced(warp, B1, MW_BLOCK_THREADS, "B1 wait")?;
                warp.env.ctx.ext[slots::MW_MODE].store(0, Ordering::Release);
                if let Some(t) = warp.env.device.trace() {
                    let hz = warp.env.device.props.clock_hz;
                    t.obs.tracer.complete(
                        t.pid,
                        1 + warp.warp_id as u64,
                        "parallel region",
                        "parallel",
                        t.base_s + region_start as f64 / hz,
                        warp.clock.saturating_sub(region_start) as f64 / hz,
                        vec![("nthreads", (nthr as u64).into()), ("fn", fnidx.into())],
                    );
                }
                Ok(uniform_ret(0))
            }
            "cudadev_workerfunc" => {
                // Worker warps: serve parallel regions until exit. Runs with
                // the warp's full live mask.
                loop {
                    bar_sync_traced(warp, B1, MW_BLOCK_THREADS, "B1 park")?;
                    let ext = &warp.env.ctx.ext;
                    if ext[slots::MW_EXIT].load(Ordering::Acquire) != 0 {
                        return Ok(uniform_ret(0));
                    }
                    let fnidx = ext[slots::MW_FN].load(Ordering::Acquire) as u32;
                    let vars = ext[slots::MW_VARS].load(Ordering::Acquire);
                    let nthr = ext[slots::MW_NTHR].load(Ordering::Acquire) as u32;
                    // Lanes participating in this region.
                    let mut pmask = 0u32;
                    for lane in iter_lanes(mask) {
                        let rtid = warp.lin_tid(lane) as i64 - W as i64;
                        if rtid >= 0 && (rtid as u32) < nthr {
                            pmask |= 1 << lane;
                        }
                    }
                    if pmask != 0 {
                        warp.call_device_fn(fnidx, &[[vars; 32]], pmask)?;
                        // Participants synchronize on B2 (rounded count).
                        bar_sync_traced(warp, B2, round_barrier_count(nthr), "B2 wait")?;
                    }
                    // Region end: every warp rejoins the master on B1.
                    bar_sync_traced(warp, B1, MW_BLOCK_THREADS, "B1 rejoin")?;
                }
            }
            "cudadev_exit_target" => {
                let ext = &warp.env.ctx.ext;
                ext[slots::MW_EXIT].store(1, Ordering::Release);
                // Release the workers so they observe the exit flag.
                bar_sync_traced(warp, B1, MW_BLOCK_THREADS, "B1 exit")?;
                Ok(uniform_ret(0))
            }

            // ------------------------------------------- chunk distribution
            "cudadev_get_distribute_chunk" => {
                // (total, &lb, &ub): the team-master chunk of 0..total.
                let total = first(mask, &args[0]);
                let [gx, gy, gz] = warp.env.grid_dim;
                let nteams = gx as u64 * gy as u64 * gz as u64;
                let [cx, cy, cz] = warp.env.ctaid;
                let team = cx as u64 + cy as u64 * gx as u64 + cz as u64 * (gx as u64 * gy as u64);
                let (lb, ub) = static_block(total, nteams, team);
                for lane in iter_lanes(mask) {
                    warp.mem_write_u64(args[1][lane as usize], lb)?;
                    warp.mem_write_u64(args[2][lane as usize], ub)?;
                }
                Ok(uniform_ret(0))
            }
            "cudadev_get_static_chunk" => {
                // (lb, ub, chunk, &mylb, &myub): blocked (chunk==0) or the
                // first cyclic chunk of the calling thread.
                let nthr = self.region_nthr(warp) as u64;
                let chunk = first(mask, &args[2]);
                for lane in iter_lanes(mask) {
                    let lb = args[0][lane as usize];
                    let ub = args[1][lane as usize];
                    let tid = self.region_tid(warp, lane).max(0) as u64;
                    let total = ub.saturating_sub(lb);
                    let (s, e) = if chunk == 0 {
                        static_block(total, nthr, tid)
                    } else {
                        vmcommon::sched::static_cyclic(total, nthr, tid, chunk, 0).unwrap_or((0, 0))
                    };
                    warp.mem_write_u64(args[3][lane as usize], lb + s)?;
                    warp.mem_write_u64(args[4][lane as usize], lb + e)?;
                }
                Ok(uniform_ret(0))
            }
            "cudadev_sched_reset" => {
                // Called by region thread 0 before a dynamic/guided loop
                // (followed by a region barrier emitted by the compiler).
                warp.env.ctx.ext[slots::DYN_COUNTER].store(0, Ordering::Release);
                Ok(uniform_ret(0))
            }
            "cudadev_get_dynamic_chunk" => {
                // (lb, ub, chunk, &mylb, &myub) → 1 if a chunk was claimed.
                let chunk = first(mask, &args[2]).max(1);
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    let lb = args[0][lane as usize];
                    let ub = args[1][lane as usize];
                    let total = ub.saturating_sub(lb);
                    let start =
                        warp.env.ctx.ext[slots::DYN_COUNTER].fetch_add(chunk, Ordering::AcqRel);
                    if start < total {
                        let end = (start + chunk).min(total);
                        warp.mem_write_u64(args[3][lane as usize], lb + start)?;
                        warp.mem_write_u64(args[4][lane as usize], lb + end)?;
                        out[lane as usize] = 1;
                    }
                }
                Ok(Some(out))
            }
            "cudadev_get_guided_chunk" => {
                let minc = first(mask, &args[2]).max(1);
                let nthr = self.region_nthr(warp) as u64;
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    let lb = args[0][lane as usize];
                    let ub = args[1][lane as usize];
                    let total = ub.saturating_sub(lb);
                    let ctr = &warp.env.ctx.ext[slots::DYN_COUNTER];
                    let mut claimed = None;
                    loop {
                        let taken = ctr.load(Ordering::Acquire);
                        if taken >= total {
                            break;
                        }
                        let remaining = total - taken;
                        let size = remaining.div_ceil(nthr).max(minc).min(remaining);
                        if ctr
                            .compare_exchange_weak(
                                taken,
                                taken + size,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            claimed = Some((taken, taken + size));
                            break;
                        }
                    }
                    if let Some((s, e)) = claimed {
                        warp.mem_write_u64(args[3][lane as usize], lb + s)?;
                        warp.mem_write_u64(args[4][lane as usize], lb + e)?;
                        out[lane as usize] = 1;
                    }
                }
                Ok(Some(out))
            }

            // ------------------------------------------------ synchronization
            "cudadev_barrier" => {
                if self.mw_active(warp) {
                    let nthr = self.region_nthr(warp);
                    bar_sync_traced(warp, B2, round_barrier_count(nthr), "B2 wait")?;
                } else {
                    let all = warp.env.nthreads.next_multiple_of(W);
                    bar_sync_traced(warp, 0, all, "barrier")?;
                }
                Ok(uniform_ret(0))
            }
            "cudadev_critical_enter" => {
                // Busy-spin CAS on a global lock word (§4.2.2). Whole-warp:
                // lanes of the same warp enter one at a time would deadlock
                // in lockstep; acquire once per warp (the region body runs
                // with the warp's active mask, which is how the paper's
                // lockstep warps behave).
                let id = first(mask, &args[0]) % NUM_LOCKS;
                let addr = self.lock_area + id * 4;
                let off = vmcommon::addr::offset(addr);
                let mut spins = 0u64;
                loop {
                    if warp.env.device.global.cas_u32(off, 0, 1)? == 0 {
                        break;
                    }
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                    if spins > 50_000_000 {
                        return Err(ExecError::Trap("critical-section livelock".into()));
                    }
                }
                // Contention cost: a handful of cycles per retry.
                warp.add_cost(2, 4 + 2 * spins.min(1000));
                Ok(uniform_ret(0))
            }
            "cudadev_critical_exit" => {
                let id = first(mask, &args[0]) % NUM_LOCKS;
                let addr = self.lock_area + id * 4;
                let off = vmcommon::addr::offset(addr);
                warp.env.device.global.store_u32(off, 0)?;
                warp.add_cost(2, 4);
                Ok(uniform_ret(0))
            }

            // ------------------------------------------------- worksharing
            "cudadev_sections_reset" => {
                warp.env.ctx.ext[slots::SECTIONS].store(0, Ordering::Release);
                Ok(uniform_ret(0))
            }
            "cudadev_sections_next" => {
                // (nsections) → section index or -1. One claim per *warp*
                // per call (first active lane), so consecutive sections land
                // on different warps — the paper's divergence-avoidance rule.
                let nsec = first(mask, &args[0]);
                let mut out = [(-1i64) as u64; 32];
                let leader = mask.trailing_zeros().min(31);
                let i = warp.env.ctx.ext[slots::SECTIONS].fetch_add(1, Ordering::AcqRel);
                if i < nsec {
                    out[leader as usize] = i;
                }
                Ok(Some(out))
            }
            "cudadev_single_reset" => {
                warp.env.ctx.ext[slots::SINGLE].store(0, Ordering::Release);
                Ok(uniform_ret(0))
            }
            "cudadev_single_enter" => {
                // If-master logic: thread 0 of the region executes.
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    out[lane as usize] = (self.region_tid(warp, lane) == 0) as u64;
                }
                Ok(Some(out))
            }

            // -------------------------------------------------- reductions
            // cudadev_red_*(accum_ptr, value, opcode): atomically fold
            // `value` into the accumulator. opcode: 0 add, 1 mul, 2 max,
            // 3 min. Used by reduction clauses on combined constructs.
            "cudadev_red_f32" => {
                for lane in iter_lanes(mask) {
                    let addr = args[0][lane as usize];
                    let val = f32::from_bits(args[1][lane as usize] as u32);
                    let op = args[2][lane as usize];
                    let mem = resolve_arena(warp, addr)?;
                    let off = vmcommon::addr::offset(addr);
                    loop {
                        let cur = mem.load_u32(off)?;
                        let next = fold_f32(f32::from_bits(cur), val, op)?.to_bits();
                        if mem.cas_u32(off, cur, next)? == cur {
                            break;
                        }
                    }
                }
                warp.add_cost(4, 40);
                Ok(uniform_ret(0))
            }
            "cudadev_red_f64" => {
                for lane in iter_lanes(mask) {
                    let addr = args[0][lane as usize];
                    let val = f64::from_bits(args[1][lane as usize]);
                    let op = args[2][lane as usize];
                    let mem = resolve_arena(warp, addr)?;
                    let off = vmcommon::addr::offset(addr);
                    loop {
                        let cur = mem.load_u64(off)?;
                        let next = fold_f64(f64::from_bits(cur), val, op)?.to_bits();
                        if mem.cas_u64(off, cur, next)? == cur {
                            break;
                        }
                    }
                }
                warp.add_cost(4, 40);
                Ok(uniform_ret(0))
            }
            "cudadev_red_i32" => {
                for lane in iter_lanes(mask) {
                    let addr = args[0][lane as usize];
                    let val = args[1][lane as usize] as u32 as i32;
                    let op = args[2][lane as usize];
                    let mem = resolve_arena(warp, addr)?;
                    let off = vmcommon::addr::offset(addr);
                    loop {
                        let cur = mem.load_u32(off)? as i32;
                        let next = fold_i32(cur, val, op)? as u32;
                        if mem.cas_u32(off, cur as u32, next)? == cur as u32 {
                            break;
                        }
                    }
                }
                warp.add_cost(4, 40);
                Ok(uniform_ret(0))
            }

            // ------------------------------------------------------- math
            "powf" => {
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    let a = f32::from_bits(args[0][lane as usize] as u32);
                    let b = f32::from_bits(args[1][lane as usize] as u32);
                    out[lane as usize] = a.powf(b).to_bits() as u64;
                }
                Ok(Some(out))
            }
            "pow" => {
                let mut out = [0u64; 32];
                for lane in iter_lanes(mask) {
                    let a = f64::from_bits(args[0][lane as usize]);
                    let b = f64::from_bits(args[1][lane as usize]);
                    out[lane as usize] = a.powf(b).to_bits();
                }
                Ok(Some(out))
            }

            other => Err(ExecError::UnknownIntrinsic(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_rounding_rule() {
        // X = W⌈N/W⌉ (§4.2.2).
        assert_eq!(round_barrier_count(96), 96);
        assert_eq!(round_barrier_count(40), 64);
        assert_eq!(round_barrier_count(1), 32);
        assert_eq!(round_barrier_count(33), 64);
        assert_eq!(round_barrier_count(0), 32);
    }

    #[test]
    fn exports_cover_protocol() {
        let e = exports();
        for sym in [
            "cudadev_register_parallel",
            "cudadev_workerfunc",
            "cudadev_exit_target",
            "cudadev_push_shmem",
            "cudadev_pop_shmem",
            "cudadev_get_distribute_chunk",
            "cudadev_get_static_chunk",
            "omp_get_thread_num",
        ] {
            assert!(e.iter().any(|s| s == sym), "missing {sym}");
        }
    }
}
