//! Differential test: the bytecode VM against the tree-walker oracle.
//!
//! Every UniBench app is executed by both engines and the outputs are
//! asserted **bit-identical** — not within tolerance. The two engines run
//! the same guest source on separately constructed machines, so any
//! divergence in arithmetic order, conversion, or memory layout shows up
//! as a checksum mismatch.
//!
//! One offloaded case additionally runs the full OMPi pipeline (translate,
//! JIT, simulated device) under each engine and compares results plus the
//! simulated device clock, which must not depend on host execution speed.

use minic::interp::Engine;
use ompi_nano::unibench::{
    all_apps, app_by_name, compile_omp, host_machine, output_checksum, run_host_once, run_once,
    runner_config, App,
};
use ompi_nano::{ExecMode, Runner};

/// Host-sequential outputs of `app` at size `n` under `engine`.
fn host_outputs(app: &App, engine: Engine, n: u32) -> Vec<f32> {
    let m = host_machine(app, n).unwrap();
    m.set_engine(engine);
    run_host_once(app, &m, n).unwrap_or_else(|e| panic!("{} under {engine:?}: {e}", app.name))
}

#[test]
fn all_apps_bit_identical_on_host() {
    for app in all_apps() {
        let n = app.test_size;
        let vm = host_outputs(&app, Engine::Vm, n);
        let walker = host_outputs(&app, Engine::Walker, n);
        assert_eq!(vm.len(), walker.len(), "{}: output length differs", app.name);
        let (cv, cw) = (output_checksum(&vm), output_checksum(&walker));
        assert_eq!(cv, cw, "{}: vm 0x{cv:016x} != walker 0x{cw:016x}", app.name);
        for (i, (a, b)) in vm.iter().zip(&walker).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: output[{i}] differs: vm {a} walker {b}",
                app.name
            );
        }
    }
}

#[test]
fn offloaded_run_bit_identical_between_engines() {
    let app = app_by_name("gemm").unwrap();
    let n = app.test_size;
    let dir = std::env::temp_dir().join(format!("ompinano-vmdiff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let compiled = compile_omp(&app, &dir);
    let cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);

    let mut results = Vec::new();
    for engine in [Engine::Vm, Engine::Walker] {
        let runner = Runner::new(&compiled, &cfg).unwrap();
        runner.machine.set_engine(engine);
        let out = run_once(&app, &runner, n).unwrap();
        results.push((engine, output_checksum(&out), runner.dev_clock().total_s()));
    }
    let (_, vm_sum, vm_clock) = results[0];
    let (_, wk_sum, wk_clock) = results[1];
    assert_eq!(vm_sum, wk_sum, "offloaded gemm checksum differs between engines");
    assert_eq!(vm_clock, wk_clock, "simulated device clock differs between engines");
    let _ = std::fs::remove_dir_all(&dir);
}
