/* 3dconv — CUDA baseline (3D blocks, the paper's 2x4x32-thread shape). */
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;

__global__ void conv3d_kernel(int n, float *a, float *b)
{
    int k = blockIdx.x * blockDim.x + threadIdx.x + 1;
    int j = blockIdx.y * blockDim.y + threadIdx.y + 1;
    int i = blockIdx.z * blockDim.z + threadIdx.z + 1;
    if (i < n - 1 && j < n - 1 && k < n - 1) {
        b[i * n * n + j * n + k] =
              2.0f  * a[(i - 1) * n * n + (j - 1) * n + (k - 1)]
            + 0.5f  * a[(i + 1) * n * n + (j - 1) * n + (k - 1)]
            - 8.0f  * a[(i - 1) * n * n + (j - 1) * n + k]
            - 3.0f  * a[(i + 1) * n * n + (j - 1) * n + k]
            + 4.0f  * a[(i - 1) * n * n + (j - 1) * n + (k + 1)]
            - 1.0f  * a[(i + 1) * n * n + (j - 1) * n + (k + 1)]
            + 6.0f  * a[i * n * n + j * n + k]
            - 9.0f  * a[(i - 1) * n * n + (j + 1) * n + (k - 1)]
            + 2.0f  * a[(i + 1) * n * n + (j + 1) * n + (k - 1)]
            + 7.0f  * a[(i - 1) * n * n + (j + 1) * n + (k + 1)]
            + 10.0f * a[(i + 1) * n * n + (j + 1) * n + (k + 1)];
    }
}

void run(int n, float *a, float *b)
{
    float *da;
    float *db;
    long bytes = (long) n * n * n * sizeof(float);
    cudaMalloc(&da, bytes);
    cudaMalloc(&db, bytes);
    cudaMemcpy(da, a, bytes, cudaMemcpyHostToDevice);
    dim3 block(32, 4, 2);
    dim3 grid((n - 2 + 31) / 32, (n - 2 + 3) / 4, (n - 2 + 1) / 2);
    conv3d_kernel<<<grid, block>>>(n, da, db);
    cudaMemcpy(b, db, bytes, cudaMemcpyDeviceToHost);
    cudaFree(da);
    cudaFree(db);
}
