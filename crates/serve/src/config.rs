//! Server and tenant configuration.

use std::path::PathBuf;

use nvccsim::BinMode;
use ompi_core::RunnerConfig;

/// Per-tenant scheduling and admission knobs.
#[derive(Clone, Copy, Debug)]
pub struct TenantConfig {
    /// Stride-scheduling weight: a weight-2 tenant is picked twice as
    /// often as a weight-1 tenant when both have work queued.
    pub weight: u32,
    /// Maximum jobs this tenant may have executing at once.
    pub max_inflight: usize,
    /// Maximum pending jobs (queued + in flight); submissions past this
    /// are rejected `Overloaded { reason: "tenant_queue_full" }`.
    pub queue_cap: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig { weight: 1, max_inflight: 2, queue_cap: 256 }
    }
}

/// Server-wide configuration. Environment variables are read exactly once,
/// at [`crate::Server::new`], through [`ompi_core::ResolvedConfig`] — the
/// precedence contract (explicit field > well-formed env > default) is the
/// runner's, applied to `runner` here.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Working directory for compiled kernels and the shared JIT cache.
    pub work_dir: PathBuf,
    /// Kernel binary flavor for tenant programs. `Ptx` (the default)
    /// exercises the shared JIT disk cache across the fleet.
    pub mode: BinMode,
    /// Runner knobs (device memory, exec mode, fault plans, obs, …).
    /// `runner.num_devices` sizes the fleet the scheduler owns.
    pub runner: RunnerConfig,
    /// Worker threads. `0` means one per fleet device (minimum 1).
    pub workers: usize,
    /// Total queued jobs across all tenants; submissions past this are
    /// rejected `Overloaded { reason: "global_queue_full" }`.
    pub global_queue_cap: usize,
    /// Config applied to tenants that were never explicitly registered.
    pub default_tenant: TenantConfig,
}

impl ServeConfig {
    pub fn new(work_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            work_dir: work_dir.into(),
            mode: BinMode::Ptx,
            runner: RunnerConfig::default(),
            workers: 0,
            global_queue_cap: 1024,
            default_tenant: TenantConfig::default(),
        }
    }
}
