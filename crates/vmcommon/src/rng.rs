//! A small deterministic PRNG for tests and randomized data generation.
//!
//! The property tests and benchmark harnesses need reproducible random
//! streams without an external dependency; this is the xorshift64* engine
//! (Vigna 2016) seeded through a splitmix64 scramble so that consecutive
//! seeds give uncorrelated streams.

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator; any seed (including 0) is valid.
    pub fn new(seed: u64) -> XorShift64 {
        // splitmix64 scramble: avoids the all-zero state and decorrelates
        // small consecutive seeds.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        XorShift64 { state: (z ^ (z >> 31)) | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for test-sized bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A finite f32 from a bounded decimal grid (roundtrips text formats).
    pub fn small_f32(&mut self) -> f32 {
        self.range_i64(-1_000_000, 1_000_000) as f32 / 64.0
    }

    /// Pick a random element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelated() {
        let (mut a, mut b) = (XorShift64::new(0), XorShift64::new(1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn bools_mix() {
        let mut r = XorShift64::new(3);
        let trues = (0..1000).filter(|_| r.bool()).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
