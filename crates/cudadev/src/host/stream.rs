//! Async command streams of the cudadev host driver.
//!
//! When [`super::CudaDevConfig::async_streams`] is set, every target
//! region gets its own stream; the h2d copies, kernel launch and d2h
//! copies issued inside the region are *executed eagerly* (so results are
//! bit-identical to synchronous mode) but *scheduled virtually* on a
//! [`gpusim::StreamEngine`] — a copy engine and a compute engine that
//! overlap on the simulated clock. Regions marked `nowait` leave their
//! work queued past region end, so consecutive regions overlap; a
//! `taskwait` (or an aggregate clock report) drains the queues.
//!
//! Clock accounting happens at **flush** time: while operations are
//! queued, their busy time accumulates in per-phase pending sums and the
//! engine tracks the schedule's horizon. A flush charges the pending sums
//! to the clock's phase buckets and books the hidden share —
//! `busy − (horizon − before)` — as [`super::DevClock::overlap_s`], so
//! `total_s()` lands exactly on `max(horizon, before)`: elapsed simulated
//! time, with per-phase attribution preserved.

use gpusim::{EngineKind, LaunchStats, StreamEngine};
use vmcommon::sync::Mutex;

use super::{CudaDev, DevClock};

/// First trace track (`tid`) used for per-stream operations. Stream `s`
/// of a device draws its async copies and kernels on track
/// `STREAM_TRACK_BASE + s` — above the driver stream (tid 0) and the
/// per-block kernel tracks (64..96).
pub const STREAM_TRACK_BASE: u64 = 100;

/// Per-device async command-stream state.
#[derive(Default)]
pub(super) struct AsyncState {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    engine: StreamEngine,
    /// Busy time queued since the last flush, by clock phase.
    pending_h2d: f64,
    pending_d2h: f64,
    pending_kernel: f64,
    /// Stream of the target region currently executing on the host
    /// thread; `None` = operations run synchronously.
    region: Option<usize>,
    /// Scoped override (the governor routes tile operations onto
    /// alternating streams for double buffering).
    overridden: Option<usize>,
    /// The current region carried `nowait`: leave its work queued at
    /// region end.
    nowait: bool,
}

impl Inner {
    fn flush(&mut self, clock: &Mutex<DevClock>) {
        let busy = self.pending_h2d + self.pending_d2h + self.pending_kernel;
        if busy <= 0.0 {
            return;
        }
        let mut clk = clock.lock();
        let before = clk.total_s();
        clk.h2d_s += self.pending_h2d;
        clk.d2h_s += self.pending_d2h;
        clk.kernel_s += self.pending_kernel;
        // The schedule's critical path never exceeds the summed busy time
        // (every op was issued at or before `before`), so the hidden share
        // is non-negative; clamp only against float noise.
        let advance = (self.engine.horizon() - before).clamp(0.0, busy);
        clk.overlap_s += busy - advance;
        self.pending_h2d = 0.0;
        self.pending_d2h = 0.0;
        self.pending_kernel = 0.0;
    }
}

impl AsyncState {
    /// The stream async operations should be queued on right now.
    pub(super) fn current(&self) -> Option<usize> {
        let inner = self.inner.lock();
        inner.overridden.or(inner.region)
    }

    pub(super) fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }

    /// Quiesce the streams before a device reset or a broken-latch: charge
    /// all queued busy time to the clock, then drop the open region, any
    /// stream override and a pending `nowait` marker. Queued work was
    /// executed eagerly, so draining loses no results — but a host
    /// fallback (or a replayed launch) must not find half a region still
    /// scheduled on the engines.
    pub(super) fn drain_and_clear(&self, clock: &Mutex<DevClock>) {
        let mut inner = self.inner.lock();
        inner.flush(clock);
        inner.region = None;
        inner.overridden = None;
        inner.nowait = false;
    }
}

/// Scoped stream override: restores the previous routing on drop, so
/// error paths inside the governor cannot leak a tile's stream into
/// later operations.
pub(crate) struct StreamOverride<'a> {
    dev: &'a CudaDev,
    prev: Option<usize>,
}

impl Drop for StreamOverride<'_> {
    fn drop(&mut self) {
        self.dev.streams.inner.lock().overridden = self.prev;
    }
}

impl CudaDev {
    /// Is async submission active (an async-mode region is open)?
    pub(crate) fn async_stream(&self) -> Option<usize> {
        self.streams.current()
    }

    /// A target region begins: give it a stream (async mode only).
    pub fn stream_region_begin(&self) {
        if !self.cfg.async_streams {
            return;
        }
        let mut inner = self.streams.inner.lock();
        let sid = inner.engine.create_stream();
        inner.region = Some(sid);
        inner.nowait = false;
        drop(inner);
        self.cfg.obs.tracer.set_thread_name(
            self.pid(),
            STREAM_TRACK_BASE + sid as u64,
            &format!("stream {sid}"),
        );
    }

    /// The current region carries `nowait`: defer synchronization.
    pub fn stream_mark_nowait(&self) {
        self.streams.inner.lock().nowait = true;
    }

    /// A target region ends. Without `nowait` this is a synchronization
    /// point: queued work drains into the clock. With `nowait` the queue
    /// survives, so the next region's operations overlap it.
    pub fn stream_region_end(&self) {
        let mut inner = self.streams.inner.lock();
        inner.region = None;
        if !inner.nowait {
            inner.flush(&self.clock);
        }
        inner.nowait = false;
    }

    /// Drain all queued async work into the clock (`taskwait`, or any
    /// external clock read).
    pub fn stream_sync(&self) {
        self.streams.inner.lock().flush(&self.clock);
    }

    /// The clock with all queued async work drained — the only correct
    /// way to *read* the clock from outside the driver in async mode.
    pub fn clock_snapshot(&self) -> DevClock {
        self.stream_sync();
        *self.clock.lock()
    }

    /// An extra stream for the governor's double-buffered tiling.
    pub(crate) fn new_stream(&self) -> usize {
        let mut inner = self.streams.inner.lock();
        let sid = inner.engine.create_stream();
        drop(inner);
        self.cfg.obs.tracer.set_thread_name(
            self.pid(),
            STREAM_TRACK_BASE + sid as u64,
            &format!("stream {sid}"),
        );
        sid
    }

    /// Route subsequent async operations onto `sid` until the guard drops.
    pub(crate) fn override_stream(&self, sid: usize) -> StreamOverride<'_> {
        let mut inner = self.streams.inner.lock();
        let prev = inner.overridden.replace(sid);
        drop(inner);
        StreamOverride { dev: self, prev }
    }

    /// Queue an eagerly-executed transfer of `dur_s` simulated seconds on
    /// `stream` and draw it on the stream's trace track.
    pub(crate) fn async_copy(&self, stream: usize, h2d: bool, dur_s: f64, bytes: u64) {
        let mut inner = self.streams.inner.lock();
        let not_before = self.clock.lock().total_s();
        let op = inner.engine.submit(stream, EngineKind::Copy, dur_s, not_before);
        if h2d {
            inner.pending_h2d += dur_s;
        } else {
            inner.pending_d2h += dur_s;
        }
        drop(inner);
        self.cfg.obs.tracer.complete(
            self.pid(),
            STREAM_TRACK_BASE + stream as u64,
            if h2d { "h2d" } else { "d2h" },
            "memcpy",
            op.start_s,
            dur_s,
            vec![("bytes", bytes.into()), ("stream", (stream as u64).into())],
        );
    }

    /// Where a kernel queued on `stream` right now would start — the
    /// trace base for the eager simulation, so in-kernel block events
    /// line up with the scheduled kernel span. With single-threaded host
    /// submission, the subsequent [`CudaDev::async_finish_launch`] lands
    /// on exactly this timestamp.
    pub(crate) fn async_kernel_base(&self, stream: usize) -> f64 {
        let inner = self.streams.inner.lock();
        let not_before = self.clock.lock().total_s();
        inner.engine.peek_start(stream, EngineKind::Compute, not_before)
    }

    /// Queue a completed (eagerly-simulated) launch on `stream`: schedule
    /// its measured duration on the compute engine, draw the kernel span
    /// on the stream track, and bump the launch counters.
    pub(crate) fn async_finish_launch(&self, stream: usize, kernel: &str, stats: &LaunchStats) {
        let mut inner = self.streams.inner.lock();
        let not_before = self.clock.lock().total_s();
        let op = inner.engine.submit(stream, EngineKind::Compute, stats.time_s, not_before);
        inner.pending_kernel += stats.time_s;
        drop(inner);
        self.clock.lock().launches += 1;
        let pid = self.pid();
        let obs = &self.cfg.obs;
        obs.tracer.complete(
            pid,
            STREAM_TRACK_BASE + stream as u64,
            &format!("kernel {kernel}"),
            "kernel",
            op.start_s,
            stats.time_s,
            vec![
                ("cycles", stats.kernel_cycles.into()),
                ("blocks", stats.blocks_total.into()),
                ("stream", (stream as u64).into()),
            ],
        );
        obs.metrics.incr(pid, "launches", 1);
        obs.metrics.observe(pid, "kernel_cycles", stats.kernel_cycles);
    }
}
