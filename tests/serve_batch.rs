//! Batch-server integration tests: the multi-tenant soak (outputs
//! bit-identical to standalone runners), typed admission rejections,
//! deterministic weighted-fair and priority scheduling, and mid-soak
//! device failure rerouting.

use ompi_nano::nvccsim::BinMode;
use ompi_nano::serve::{JobSpec, Priority, ServeConfig, ServeError, Server, TenantConfig};
use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};

/// One parameterized guest program per tenant: `job(k)` offloads an
/// elementwise kernel over data seeded by `k`, reduces on the host, and
/// prints the sum — so both the return value and the captured output are
/// data-dependent and comparable bit-for-bit against a standalone run.
fn tenant_source(c: u32) -> String {
    format!(
        r#"
int job(int k) {{
    int n = 64;
    float x[64];
    for (int i = 0; i < n; i++) x[i] = (float) (i + k);
    #pragma omp target teams distribute parallel for map(tofrom: x[0:n])
    for (int i = 0; i < n; i++)
        x[i] = 2.0f * x[i] + {c}.0f;
    float s = 0.0f;
    for (int i = 0; i < n; i++) s = s + x[i];
    printf("job %d sum %f\n", k, s);
    return k;
}}
int main() {{ return job(0); }}
"#
    )
}

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn serve_config(tag: &str, devices: usize, workers: usize) -> ServeConfig {
    let dir = work(tag);
    let mut cfg = ServeConfig::new(&dir);
    cfg.mode = BinMode::Ptx;
    cfg.runner.num_devices = devices;
    cfg.runner.jit_cache_dir = dir.join("jit");
    cfg.runner.obs = Some(obs::Obs::disabled());
    cfg.workers = workers;
    cfg
}

/// The reference: the same source through the one-shot path — its own
/// `Ompicc`, its own `Runner`, its own registry — at the same arg.
fn reference(tag: &str, c: u32, ks: &[i32]) -> Vec<(Value, String)> {
    let dir = work(&format!("ref-{tag}-{c}"));
    let app = Ompicc::new(&dir).with_mode(BinMode::Ptx).compile(&tenant_source(c)).unwrap();
    let cfg = RunnerConfig { jit_cache_dir: dir.join("jit"), ..Default::default() };
    ks.iter()
        .map(|&k| {
            let runner = Runner::new(&app, &cfg).unwrap();
            let v = runner.call("job", &[Value::I32(k)]).unwrap();
            let mut out = runner.take_output();
            out.push_str(&runner.take_device_output());
            (v, out)
        })
        .collect()
}

/// The acceptance-criteria soak: 3 tenants × 2 devices, ≥1000 jobs with
/// per-job argument variation, every output bit-identical to a standalone
/// runner, at least one admission rejection and one affinity-driven
/// module-cache hit in the metrics, and per-tenant latency percentiles.
#[test]
fn soak_three_tenants_two_devices_bit_identical() {
    let cfg = serve_config("soak", 2, 2);
    let obs = cfg.runner.obs.clone().unwrap();
    let server = Server::new(&cfg).unwrap();

    let tenants = ["t0", "t1", "t2"];
    let consts = [1u32, 3, 7];
    let mut programs = Vec::new();
    for (t, c) in tenants.iter().zip(consts) {
        server.register_tenant(t, TenantConfig { weight: 1, max_inflight: 2, queue_cap: 2048 });
        programs.push(server.register_program(t, &tenant_source(c)).unwrap());
    }
    // Per-tenant references for every arg value the soak uses.
    let ks: Vec<i32> = (0..8).collect();
    let refs: Vec<Vec<(Value, String)>> =
        consts.iter().map(|&c| reference("soak", c, &ks)).collect();

    server.start();
    let per_tenant = 334; // 3 × 334 = 1002 jobs
    let mut handles = Vec::new();
    for j in 0..per_tenant {
        for (ti, t) in tenants.iter().enumerate() {
            let k = j % 8;
            let mut spec = JobSpec::new(programs[ti]);
            spec.entry = "job".to_string();
            spec.args = vec![Value::I32(k)];
            let id = loop {
                match server.submit(t, spec.clone()) {
                    Ok(id) => break id,
                    // Back off when the tenant's pending cap trips — the
                    // soak intentionally outpaces 2 devices.
                    Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("submit failed: {e}"),
                }
            };
            handles.push((ti, k, id));
        }
    }
    // One deliberately impossible job proves the memory admission gate.
    let mut hog = JobSpec::new(programs[0]);
    hog.entry = "job".to_string();
    hog.args = vec![Value::I32(0)];
    hog.mem_hint = 1 << 50;
    match server.submit("t0", hog) {
        Err(ServeError::Overloaded { reason: "mem_pressure" }) => {}
        other => panic!("expected mem_pressure rejection, got {other:?}"),
    }

    for (ti, k, id) in &handles {
        let r = server.wait(*id);
        let (ref_v, ref_out) = &refs[*ti][*k as usize];
        let v = r.value.as_ref().unwrap_or_else(|e| panic!("job {id:?} failed: {e}"));
        assert_eq!(v, ref_v, "tenant {ti} job k={k}: return value");
        assert_eq!(&r.output, ref_out, "tenant {ti} job k={k}: output must be bit-identical");
    }
    server.shutdown();

    let pid = server.serve_pid();
    let m = &obs.metrics;
    assert_eq!(m.counter(pid, "serve.jobs_completed"), 1002);
    assert_eq!(m.counter(pid, "serve.jobs_failed"), 0);
    assert!(m.counter(pid, "serve.rejected.overload") >= 1);
    assert!(m.counter(pid, "serve.rejected.overload.mem_pressure") >= 1);
    assert!(
        m.counter(pid, "serve.affinity.hit") >= 1,
        "a 334-job-per-tenant soak must land repeat placements"
    );
    // Affinity pays off as in-memory module-cache hits on the devices.
    let mem_hits = m.counter(0, "modload.mem_hit") + m.counter(1, "modload.mem_hit");
    assert!(mem_hits >= 1, "warm placements must hit the module cache");

    for t in tenants {
        let h = m
            .hist(pid, &format!("job_latency_us.{t}"))
            .unwrap_or_else(|| panic!("missing latency hist for {t}"));
        for p in [50.0, 95.0, 99.0] {
            assert!(h.percentile(p).is_some(), "{t}: p{p} must be defined");
        }
    }
    assert!(m.hist(pid, "job_latency_us").unwrap().percentile(99.0).is_some());
}

/// Deterministic weighted fairness: one worker, one device, everything
/// submitted before `start` — completion order must be the exact stride
/// schedule for weights 2:1.
#[test]
fn stride_fairness_is_exact_with_one_worker() {
    let cfg = serve_config("fair", 1, 1);
    let server = Server::new(&cfg).unwrap();
    server.register_tenant("a", TenantConfig { weight: 2, max_inflight: 1, queue_cap: 64 });
    server.register_tenant("b", TenantConfig { weight: 1, max_inflight: 1, queue_cap: 64 });
    let pa = server.register_program("a", &tenant_source(1)).unwrap();
    let pb = server.register_program("b", &tenant_source(2)).unwrap();

    let mut a_ids = Vec::new();
    let mut b_ids = Vec::new();
    for k in 0..6 {
        let mut s = JobSpec::new(pa);
        s.entry = "job".into();
        s.args = vec![Value::I32(k)];
        a_ids.push(server.submit("a", s).unwrap());
    }
    for k in 0..3 {
        let mut s = JobSpec::new(pb);
        s.entry = "job".into();
        s.args = vec![Value::I32(k)];
        b_ids.push(server.submit("b", s).unwrap());
    }
    server.start();
    for id in a_ids.iter().chain(&b_ids) {
        let r = server.wait(*id);
        assert!(r.value.is_ok());
    }
    server.shutdown();

    let order: Vec<&str> = server
        .completion_order()
        .iter()
        .map(|id| if a_ids.contains(id) { "a" } else { "b" })
        .collect();
    assert_eq!(order, ["a", "b", "a", "a", "b", "a", "a", "b", "a"]);
}

/// A high-priority job submitted last completes first.
#[test]
fn priority_lane_completes_first() {
    let cfg = serve_config("prio", 1, 1);
    let server = Server::new(&cfg).unwrap();
    server.register_tenant("a", TenantConfig { max_inflight: 1, ..Default::default() });
    server.register_tenant("b", TenantConfig { max_inflight: 1, ..Default::default() });
    let pa = server.register_program("a", &tenant_source(1)).unwrap();
    let pb = server.register_program("b", &tenant_source(2)).unwrap();

    for k in 0..3 {
        let mut s = JobSpec::new(pa);
        s.entry = "job".into();
        s.args = vec![Value::I32(k)];
        server.submit("a", s).unwrap();
    }
    let mut urgent = JobSpec::new(pb);
    urgent.entry = "job".into();
    urgent.args = vec![Value::I32(9)];
    urgent.priority = Priority::High;
    let urgent_id = server.submit("b", urgent).unwrap();

    server.start();
    let r = server.wait(urgent_id);
    assert_eq!(r.value.unwrap(), Value::I32(9));
    server.shutdown();
    assert_eq!(server.completion_order()[0], urgent_id, "the high lane must run first");
}

/// Typed overload at the tenant pending cap; the queue admits again once
/// drained, and rejected jobs leave no residue in the counters.
#[test]
fn tenant_cap_rejects_then_recovers() {
    let cfg = serve_config("cap", 1, 1);
    let obs = cfg.runner.obs.clone().unwrap();
    let server = Server::new(&cfg).unwrap();
    server.register_tenant("a", TenantConfig { weight: 1, max_inflight: 1, queue_cap: 2 });
    let pa = server.register_program("a", &tenant_source(1)).unwrap();

    let spec = |k: i32| {
        let mut s = JobSpec::new(pa);
        s.entry = "job".into();
        s.args = vec![Value::I32(k)];
        s
    };
    let id0 = server.submit("a", spec(0)).unwrap();
    let id1 = server.submit("a", spec(1)).unwrap();
    match server.submit("a", spec(2)) {
        Err(ServeError::Overloaded { reason: "tenant_queue_full" }) => {}
        other => panic!("expected tenant_queue_full, got {other:?}"),
    }
    server.start();
    assert!(server.wait(id0).value.is_ok());
    assert!(server.wait(id1).value.is_ok());
    // Drained: the same tenant is admitted again.
    let id2 = server.submit("a", spec(2)).unwrap();
    assert_eq!(server.wait(id2).value.unwrap(), Value::I32(2));
    server.shutdown();

    let pid = server.serve_pid();
    assert_eq!(obs.metrics.counter(pid, "serve.jobs_completed"), 3);
    assert_eq!(obs.metrics.counter(pid, "serve.rejected.overload.tenant_queue_full"), 1);
}

/// Submitting against another tenant's program is refused.
#[test]
fn cross_tenant_program_use_is_refused() {
    let cfg = serve_config("xtenant", 1, 1);
    let server = Server::new(&cfg).unwrap();
    let pa = server.register_program("a", &tenant_source(1)).unwrap();
    server.register_tenant("b", TenantConfig::default());
    match server.submit("b", JobSpec::new(pa)) {
        Err(ServeError::WrongTenant { owner, .. }) => assert_eq!(owner, "a"),
        other => panic!("expected WrongTenant, got {other:?}"),
    }
}

/// A device latching broken mid-soak: the tenant's warm device dies
/// between batches, the scheduler reroutes to the surviving device, and
/// every output is still bit-identical to the standalone reference.
#[test]
fn broken_device_mid_soak_reroutes_with_correct_outputs() {
    let cfg = serve_config("chaos", 2, 2);
    let obs = cfg.runner.obs.clone().unwrap();
    let server = Server::new(&cfg).unwrap();
    server.register_tenant("a", TenantConfig { weight: 1, max_inflight: 1, queue_cap: 64 });
    let pa = server.register_program("a", &tenant_source(5)).unwrap();
    let ks: Vec<i32> = (0..8).collect();
    let refs = reference("chaos", 5, &ks);
    server.start();

    let run_batch = |lo: i32, hi: i32| {
        let ids: Vec<_> = (lo..hi)
            .map(|k| {
                let mut s = JobSpec::new(pa);
                s.entry = "job".into();
                s.args = vec![Value::I32(k % 8)];
                (k % 8, server.submit("a", s).unwrap())
            })
            .collect();
        for (k, id) in ids {
            let r = server.wait(id);
            let (ref_v, ref_out) = &refs[k as usize];
            assert_eq!(r.value.as_ref().unwrap(), ref_v, "k={k}");
            assert_eq!(&r.output, ref_out, "k={k}: output after reroute");
        }
    };

    // Warm batch: with max_inflight 1 every job lands on the same device.
    run_batch(0, 5);
    let pid = server.serve_pid();
    assert!(obs.metrics.counter(pid, "serve.affinity.hit") >= 4);

    // The warm device dies between batches; the next placement reroutes.
    server.device(0).unwrap().mark_broken();
    server.device(1).unwrap(); // both devices exist
    run_batch(5, 10);
    server.shutdown();

    assert!(
        obs.metrics.counter(pid, "serve.affinity.reroute") >= 1,
        "losing the preferred device must show up as a reroute"
    );
    assert_eq!(obs.metrics.counter(pid, "serve.jobs_failed"), 0);
}
