//! The paper's Fig. 3: a `target` region with a stand-alone `parallel`
//! construct. Prints the generated CUDA C kernel (the master/worker
//! transformation) and then runs it.
//!
//!     cargo run --release --example master_worker

use ompi_nano::{Ompicc, Runner, RunnerConfig};

const SRC: &str = r#"
int main() {
    int x[96];
    #pragma omp target map(tofrom: x[0:96])
    {
        int i = 2;
        #pragma omp parallel num_threads(96)
        {
            x[omp_get_thread_num()] = i + 1;
        }
        printf(" x[0] = %d\n", x[0]);
        printf("x[95] = %d\n", x[95]);
    }
    return 0;
}
"#;

fn main() {
    let work = std::env::temp_dir().join("ompi-example-mw");
    let app = Ompicc::new(&work).compile(SRC).expect("ompicc");

    println!("== generated kernel file ({}.cu) ==\n", app.kernels[0].module_name);
    println!("{}", app.kernels[0].c_text);

    println!("== running (128 threads: 1 master warp + 3 worker warps) ==");
    let runner = Runner::new(&app, &RunnerConfig::default()).expect("runner");
    runner.run_main().expect("run");
    // Device-side printf output:
    print!("{}", runner.take_device_output());
    let clk = runner.dev_clock();
    println!("\ndevice time: {:.6}s over {} launch(es)", clk.total_s(), clk.launches);
}
