//! The scheduler: owns the device fleet, admits jobs, and picks which
//! tenant runs next on which device.
//!
//! This is the ownership inversion at the heart of the batch server. The
//! one-shot runner builds a `DeviceRegistry` per process and throws it
//! away; here the scheduler holds the fleet of [`CudaDev`]s for the
//! server's lifetime and hands each picked job a *single-device view*
//! ([`Scheduler::job_registry`]) — device maps are keyed by guest host
//! address, so two jobs sharing a device concurrently would collide, but
//! consecutive jobs on the same device happily reuse its module cache and
//! governor LRU (that reuse is exactly what affinity placement is for).
//!
//! Picking is stride scheduling: each tenant carries a `pass` value that
//! advances by `STRIDE / weight` per pick, and the lowest pass with
//! runnable work wins — weighted-fair without timestamps or randomness,
//! so tests can assert exact pick orders. The high-priority lane is
//! scanned first, same stride accounting, so `Priority::High` jumps the
//! normal lane without starving fairness within high traffic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use cudadev::CudaDev;
use devmod::{DeviceModule, DeviceRegistry};
use vmcommon::sync::{Condvar, Mutex};

use crate::{Priority, ServeError, TenantConfig};

/// Stride numerator: pass advances by `STRIDE / weight` per pick.
const STRIDE: u64 = 1 << 20;

/// How a picked job landed on its device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Affinity {
    /// Tenant's first placement — no preference yet.
    First,
    /// Placed on the preferred device (warm module/JIT/LRU caches).
    Hit,
    /// Preferred device was busy; placed elsewhere.
    Miss,
    /// Preferred device is broken; rerouted to a healthy one.
    Reroute,
    /// Whole fleet broken; the job runs on the host shim.
    Host,
}

/// A job handed to a worker: which queued id, for which tenant, on which
/// fleet device (`None` = host execution).
#[derive(Clone, Debug)]
pub struct Picked {
    pub job: u64,
    pub tenant: String,
    pub device: Option<usize>,
    pub affinity: Affinity,
}

struct Tenant {
    cfg: TenantConfig,
    /// Stride pass value; the runnable tenant with the lowest pass is
    /// picked next (ties break on tenant name for determinism).
    pass: u64,
    inflight: usize,
    high: VecDeque<u64>,
    normal: VecDeque<u64>,
    /// Device that ran this tenant's last job.
    preferred: Option<usize>,
}

impl Tenant {
    fn pending(&self) -> usize {
        self.high.len() + self.normal.len() + self.inflight
    }
}

struct State {
    tenants: BTreeMap<String, Tenant>,
    /// Per-fleet-device "a job is executing here" flag.
    busy: Vec<bool>,
    queued_total: usize,
    shutdown: bool,
}

pub struct Scheduler {
    /// The fleet. Owned here — not by any Runner — for the server's
    /// whole lifetime.
    fleet: Vec<Arc<CudaDev>>,
    global_queue_cap: usize,
    default_tenant: TenantConfig,
    state: Mutex<State>,
    work: Condvar,
}

impl Scheduler {
    pub fn new(
        fleet: Vec<Arc<CudaDev>>,
        global_queue_cap: usize,
        default_tenant: TenantConfig,
    ) -> Scheduler {
        let busy = vec![false; fleet.len()];
        Scheduler {
            fleet,
            global_queue_cap,
            default_tenant,
            state: Mutex::new(State {
                tenants: BTreeMap::new(),
                busy,
                queued_total: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    pub fn fleet(&self) -> &[Arc<CudaDev>] {
        &self.fleet
    }

    /// Register (or reconfigure) a tenant. New tenants join at the
    /// minimum existing pass so they cannot monopolize the fleet by
    /// arriving late with pass 0 — standard stride-scheduling join rule.
    pub fn ensure_tenant(&self, name: &str, cfg: Option<TenantConfig>) {
        let mut st = self.state.lock();
        let join_pass = st.tenants.values().map(|t| t.pass).min().unwrap_or(0);
        match st.tenants.get_mut(name) {
            Some(t) => {
                if let Some(cfg) = cfg {
                    t.cfg = cfg;
                }
            }
            None => {
                st.tenants.insert(
                    name.to_string(),
                    Tenant {
                        cfg: cfg.unwrap_or(self.default_tenant),
                        pass: join_pass,
                        inflight: 0,
                        high: VecDeque::new(),
                        normal: VecDeque::new(),
                        preferred: None,
                    },
                );
            }
        }
    }

    /// Admission + enqueue. All three gates run under the one lock so a
    /// burst of submissions cannot oversubscribe between check and insert.
    pub fn enqueue(
        &self,
        tenant: &str,
        job: u64,
        priority: Priority,
        mem_hint: u64,
    ) -> Result<(), ServeError> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(ServeError::Shutdown);
        }
        if st.queued_total >= self.global_queue_cap {
            return Err(ServeError::Overloaded { reason: "global_queue_full" });
        }
        {
            let t = st
                .tenants
                .get(tenant)
                .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
            if t.pending() >= t.cfg.queue_cap {
                return Err(ServeError::Overloaded { reason: "tenant_queue_full" });
            }
        }
        if mem_hint > 0 && !self.mem_admissible(mem_hint) {
            return Err(ServeError::Overloaded { reason: "mem_pressure" });
        }
        let t = st.tenants.get_mut(tenant).expect("checked above");
        match priority {
            Priority::High => t.high.push_back(job),
            Priority::Normal => t.normal.push_back(job),
        }
        st.queued_total += 1;
        drop(st);
        self.work.notify_all();
        Ok(())
    }

    /// Could any healthy device plausibly host `mem_hint` bytes? The gate
    /// uses the governor's pressure export: free DRAM plus the LRU cache
    /// it could evict. Conservative in the right direction — a job the
    /// gate admits may still tile or fall back, but a job it rejects
    /// could only have fallen straight to the host.
    fn mem_admissible(&self, mem_hint: u64) -> bool {
        let mut any_healthy = false;
        let mut best = 0u64;
        for dev in &self.fleet {
            if CudaDev::is_broken(dev) {
                continue;
            }
            any_healthy = true;
            let p = dev.mem_pressure();
            best = best.max(p.free_bytes + p.cached_bytes);
        }
        // With the whole fleet broken jobs run on the host, where device
        // memory is irrelevant — don't reject what the host can absorb.
        !any_healthy || mem_hint <= best
    }

    /// Block until a job is runnable (returns it) or shutdown has drained
    /// the queues (returns `None`). The 50 ms re-check bounds the window
    /// where a device latches broken without a completion notification.
    pub fn next(&self) -> Option<Picked> {
        let mut st = self.state.lock();
        loop {
            if let Some(p) = self.try_pick(&mut st) {
                return Some(p);
            }
            if st.shutdown && st.queued_total == 0 {
                return None;
            }
            self.work.wait_for(&mut st, Duration::from_millis(50));
        }
    }

    fn try_pick(&self, st: &mut State) -> Option<Picked> {
        if st.queued_total == 0 {
            return None;
        }
        let idle: Vec<usize> = (0..self.fleet.len())
            .filter(|&d| !st.busy[d] && !CudaDev::is_broken(&self.fleet[d]))
            .collect();
        let any_healthy = self.fleet.iter().any(|d| !CudaDev::is_broken(d));
        // Healthy devices exist but all are occupied: wait rather than
        // spill onto the host (host execution is the broken-fleet path,
        // not an overflow path).
        if any_healthy && idle.is_empty() {
            return None;
        }

        // High lane strictly before normal; stride-fair within each lane.
        let name = Self::min_pass_tenant(st, true).or_else(|| Self::min_pass_tenant(st, false))?;

        let (device, affinity) = {
            let t = &st.tenants[&name];
            if !any_healthy {
                (None, Affinity::Host)
            } else {
                match t.preferred {
                    Some(p) if idle.contains(&p) => (Some(p), Affinity::Hit),
                    Some(p) if CudaDev::is_broken(&self.fleet[p]) => {
                        (Some(idle[0]), Affinity::Reroute)
                    }
                    Some(_) => (Some(idle[0]), Affinity::Miss),
                    None => (Some(idle[0]), Affinity::First),
                }
            }
        };

        let t = st.tenants.get_mut(&name).expect("picked tenant exists");
        let job = t
            .high
            .pop_front()
            .or_else(|| t.normal.pop_front())
            .expect("runnable tenant has queued work");
        t.pass += STRIDE / u64::from(t.cfg.weight.max(1));
        t.inflight += 1;
        t.preferred = device.or(t.preferred);
        if let Some(d) = device {
            st.busy[d] = true;
        }
        st.queued_total -= 1;
        Some(Picked { job, tenant: name, device, affinity })
    }

    /// Lowest-pass runnable tenant in one lane (ties break on name).
    fn min_pass_tenant(st: &State, high: bool) -> Option<String> {
        st.tenants
            .iter()
            .filter(|(_, t)| {
                t.inflight < t.cfg.max_inflight
                    && if high { !t.high.is_empty() } else { !t.normal.is_empty() }
            })
            .min_by_key(|(name, t)| (t.pass, name.as_str()))
            .map(|(name, _)| name.clone())
    }

    /// A job finished (either way); free its device and tenant slot.
    pub fn complete(&self, tenant: &str, device: Option<usize>) {
        let mut st = self.state.lock();
        if let Some(d) = device {
            st.busy[d] = false;
        }
        if let Some(t) = st.tenants.get_mut(tenant) {
            t.inflight = t.inflight.saturating_sub(1);
        }
        drop(st);
        self.work.notify_all();
    }

    /// Stop admitting; wake every worker so they drain and exit.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
    }

    /// The single-device registry a worker executes one job against. The
    /// job's device is local number 0; its host shim records metrics
    /// under pid `fleet.len()` so per-job host activity never collides
    /// with another fleet device's pid.
    pub fn job_registry(&self, device: Option<usize>) -> Arc<DeviceRegistry> {
        let host_pid = self.fleet.len() as u64;
        let devs: Vec<Arc<dyn DeviceModule>> = match device {
            Some(d) => vec![self.fleet[d].clone() as Arc<dyn DeviceModule>],
            None => Vec::new(),
        };
        Arc::new(DeviceRegistry::with_host_pid(devs, host_pid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cudadev::CudaDevConfig;

    fn fleet(n: usize) -> Vec<Arc<CudaDev>> {
        (0..n)
            .map(|i| {
                Arc::new(CudaDev::new(CudaDevConfig { device_id: i as u32, ..Default::default() }))
            })
            .collect()
    }

    fn sched(devices: usize) -> Scheduler {
        Scheduler::new(fleet(devices), 64, TenantConfig::default())
    }

    /// Drain the queue single-worker style, recording the tenant order.
    fn drain_order(s: &Scheduler) -> Vec<String> {
        let mut order = Vec::new();
        s.shutdown();
        while let Some(p) = s.next() {
            order.push(p.tenant.clone());
            s.complete(&p.tenant, p.device);
        }
        order
    }

    #[test]
    fn stride_gives_weighted_fair_order() {
        let s = sched(1);
        s.ensure_tenant("a", Some(TenantConfig { weight: 2, ..Default::default() }));
        s.ensure_tenant("b", Some(TenantConfig { weight: 1, ..Default::default() }));
        for j in 0..6 {
            s.enqueue("a", j, Priority::Normal, 0).unwrap();
        }
        for j in 6..9 {
            s.enqueue("b", j, Priority::Normal, 0).unwrap();
        }
        // Weight 2:1 → a runs twice per b, starting with the tied pick
        // broken by name.
        assert_eq!(drain_order(&s), ["a", "b", "a", "a", "b", "a", "a", "b", "a"]);
    }

    #[test]
    fn high_lane_jumps_normal_lane() {
        let s = sched(1);
        s.ensure_tenant("a", None);
        s.ensure_tenant("b", None);
        s.enqueue("a", 0, Priority::Normal, 0).unwrap();
        s.enqueue("a", 1, Priority::Normal, 0).unwrap();
        s.enqueue("b", 2, Priority::High, 0).unwrap();
        s.shutdown();
        let p = s.next().unwrap();
        assert_eq!((p.tenant.as_str(), p.job), ("b", 2));
        s.complete("b", p.device);
    }

    #[test]
    fn tenant_queue_cap_rejects_typed() {
        let s = sched(1);
        s.ensure_tenant("a", Some(TenantConfig { queue_cap: 2, ..Default::default() }));
        s.enqueue("a", 0, Priority::Normal, 0).unwrap();
        s.enqueue("a", 1, Priority::Normal, 0).unwrap();
        match s.enqueue("a", 2, Priority::Normal, 0) {
            Err(ServeError::Overloaded { reason: "tenant_queue_full" }) => {}
            other => panic!("expected tenant_queue_full, got {other:?}"),
        }
    }

    #[test]
    fn global_queue_cap_rejects_typed() {
        let s = Scheduler::new(fleet(1), 1, TenantConfig::default());
        s.ensure_tenant("a", None);
        s.enqueue("a", 0, Priority::Normal, 0).unwrap();
        match s.enqueue("a", 1, Priority::Normal, 0) {
            Err(ServeError::Overloaded { reason: "global_queue_full" }) => {}
            other => panic!("expected global_queue_full, got {other:?}"),
        }
    }

    #[test]
    fn mem_gate_rejects_impossible_hints() {
        let s = sched(1);
        s.ensure_tenant("a", None);
        // Uninitialized device: full DRAM reported free, so a sane hint
        // passes and an impossible one is refused.
        s.enqueue("a", 0, Priority::Normal, 1 << 20).unwrap();
        match s.enqueue("a", 1, Priority::Normal, u64::MAX) {
            Err(ServeError::Overloaded { reason: "mem_pressure" }) => {}
            other => panic!("expected mem_pressure, got {other:?}"),
        }
    }

    #[test]
    fn broken_preferred_device_reroutes() {
        let s = sched(2);
        s.ensure_tenant("a", None);
        s.enqueue("a", 0, Priority::Normal, 0).unwrap();
        let p = s.next().unwrap();
        assert_eq!(p.affinity, Affinity::First);
        let first_dev = p.device.unwrap();
        s.complete("a", p.device);

        // Same tenant again: warm cache hit on the same device.
        s.enqueue("a", 1, Priority::Normal, 0).unwrap();
        let p = s.next().unwrap();
        assert_eq!(p.affinity, Affinity::Hit);
        assert_eq!(p.device, Some(first_dev));
        s.complete("a", p.device);

        // Preferred device latches broken mid-soak → reroute.
        s.fleet()[first_dev].mark_broken();
        s.enqueue("a", 2, Priority::Normal, 0).unwrap();
        let p = s.next().unwrap();
        assert_eq!(p.affinity, Affinity::Reroute);
        assert_ne!(p.device, Some(first_dev));
        s.complete("a", p.device);
    }

    #[test]
    fn whole_fleet_broken_falls_to_host() {
        let s = sched(2);
        for d in s.fleet() {
            d.mark_broken();
        }
        s.ensure_tenant("a", None);
        s.enqueue("a", 0, Priority::Normal, 0).unwrap();
        // Broken fleet: the mem gate must not block host-bound jobs.
        s.enqueue("a", 1, Priority::Normal, u64::MAX).unwrap();
        let p = s.next().unwrap();
        assert_eq!(p.affinity, Affinity::Host);
        assert_eq!(p.device, None);
        let reg = s.job_registry(p.device);
        assert_eq!(reg.num_devices(), 0);
        assert_eq!(reg.host_pid(), 2);
        s.complete("a", p.device);
    }

    #[test]
    fn max_inflight_holds_back_a_tenant() {
        let s = sched(2);
        s.ensure_tenant("a", Some(TenantConfig { max_inflight: 1, ..Default::default() }));
        s.enqueue("a", 0, Priority::Normal, 0).unwrap();
        s.enqueue("a", 1, Priority::Normal, 0).unwrap();
        s.shutdown();
        let p0 = s.next().unwrap();
        // Job 1 is queued and a device is idle, but the tenant is at its
        // in-flight cap — nothing runnable until job 0 completes.
        {
            let mut st = s.state.lock();
            assert!(s.try_pick(&mut st).is_none());
        }
        s.complete("a", p0.device);
        let p1 = s.next().unwrap();
        assert_eq!(p1.job, 1);
        s.complete("a", p1.device);
        assert!(s.next().is_none());
    }
}
