//! The simulated device: one Jetson Nano Maxwell GPU.

use vmcommon::addr::{self, Space};
use vmcommon::sync::Mutex;
use vmcommon::{BlockAllocator, MemArena};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::barrier::BarrierTimeout;
use crate::fault::{FaultPlan, FaultSite};
use crate::timing;

/// Hardware properties, as the cudadev host module would query them via
/// `cuDeviceGetAttribute`.
#[derive(Clone, Debug)]
pub struct DeviceProps {
    pub name: String,
    /// CUDA compute capability.
    pub compute_capability: (u32, u32),
    pub multiprocessors: u32,
    pub cores_per_mp: u32,
    pub warp_size: u32,
    pub clock_hz: f64,
    pub max_threads_per_block: u32,
    pub max_threads_per_sm: u32,
    pub shared_mem_per_block: u64,
    pub total_global_mem: u64,
    pub max_grid_dim: [u32; 3],
    pub max_block_dim: [u32; 3],
}

impl DeviceProps {
    /// The Jetson Nano 2GB: 128-core Maxwell at sm_53.
    pub fn jetson_nano_2gb(global_mem: u64) -> DeviceProps {
        DeviceProps {
            name: "NVIDIA Tegra X1 (Jetson Nano 2GB, simulated)".into(),
            compute_capability: (5, 3),
            multiprocessors: 1,
            cores_per_mp: 128,
            warp_size: timing::WARP_SIZE,
            clock_hz: timing::CLOCK_HZ,
            max_threads_per_block: 1024,
            max_threads_per_sm: timing::MAX_THREADS_PER_SM,
            shared_mem_per_block: timing::SHARED_MEM_PER_BLOCK,
            total_global_mem: global_mem,
            max_grid_dim: [2147483647, 65535, 65535],
            max_block_dim: [1024, 1024, 64],
        }
    }
}

/// Errors from device execution.
#[derive(Clone, Debug)]
pub enum ExecError {
    Mem(vmcommon::MemError),
    Alloc(vmcommon::alloc::AllocError),
    Trap(String),
    BarrierDeadlock(BarrierTimeout),
    UnknownKernel(String),
    UnknownIntrinsic(String),
    BadLaunch(String),
    /// A transient driver fault (injected or modeled): the operation may
    /// succeed if retried.
    Transient(String),
    /// The device is gone for good; retrying is pointless.
    DeviceLost(String),
    /// The operation never completes. In-place retry is pointless; the
    /// host driver's watchdog converts this into a timeout and attempts
    /// reset-and-replay recovery.
    Hang(String),
}

impl ExecError {
    /// Is this error worth retrying?
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::Transient(_))
    }

    /// Does this error mean the device can make no further progress
    /// without intervention (reset-and-replay, or the broken latch)?
    pub fn is_terminal(&self) -> bool {
        matches!(self, ExecError::DeviceLost(_) | ExecError::Hang(_))
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "device memory fault: {e}"),
            ExecError::Alloc(e) => write!(f, "device allocation failure: {e}"),
            ExecError::Trap(m) => write!(f, "device trap: {m}"),
            ExecError::BarrierDeadlock(b) => write!(
                f,
                "barrier {} deadlock: {} of {} threads arrived",
                b.barrier, b.arrived_threads, b.expected_threads
            ),
            ExecError::UnknownKernel(n) => write!(f, "unknown kernel `{n}`"),
            ExecError::UnknownIntrinsic(n) => write!(
                f,
                "unresolved device intrinsic `{n}` (kernel not linked against the device library?)"
            ),
            ExecError::BadLaunch(m) => write!(f, "invalid launch: {m}"),
            ExecError::Transient(m) => write!(f, "transient device fault: {m}"),
            ExecError::DeviceLost(m) => write!(f, "device lost: {m}"),
            ExecError::Hang(m) => write!(f, "device hang: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<vmcommon::MemError> for ExecError {
    fn from(e: vmcommon::MemError) -> Self {
        ExecError::Mem(e)
    }
}

impl From<vmcommon::alloc::AllocError> for ExecError {
    fn from(e: vmcommon::alloc::AllocError) -> Self {
        ExecError::Alloc(e)
    }
}

impl From<BarrierTimeout> for ExecError {
    fn from(e: BarrierTimeout) -> Self {
        ExecError::BarrierDeadlock(e)
    }
}

/// Cumulative device counters (since creation).
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    pub kernels_launched: u64,
    pub blocks_simulated: u64,
    pub blocks_total: u64,
    pub lane_insts: u64,
    pub mem_transactions: u64,
    pub bytes_h2d: u64,
    pub bytes_d2h: u64,
    /// Total simulated busy time (seconds) across launches and copies.
    pub busy_time_s: f64,
}

/// Trace context installed by the driving module (cudadev): where
/// in-kernel events (block completions, barrier parks, shared-memory stack
/// depth) report to. `pid` is the device's trace-process number and
/// `base_s` the simulated start time of the launch in flight, so warp
/// cycle counts translate to absolute trace timestamps.
#[derive(Clone)]
pub struct DevTrace {
    pub obs: Arc<obs::Obs>,
    pub pid: u64,
    pub base_s: f64,
}

/// The simulated GPU.
pub struct Device {
    pub props: DeviceProps,
    /// Device global memory ("DRAM").
    pub global: MemArena,
    alloc: Mutex<BlockAllocator>,
    pub stats: Mutex<DeviceStats>,
    /// Captured device-side printf output.
    pub printf_output: Mutex<String>,
    /// Deterministic fault-injection plan, if any.
    fault: Mutex<Option<Arc<FaultPlan>>>,
    /// Fast gate for [`Device::trace`]: avoids the lock when not tracing.
    trace_on: AtomicBool,
    trace: Mutex<Option<DevTrace>>,
}

impl Device {
    /// Create a device with `global_mem` bytes of DRAM.
    pub fn new(global_mem: usize) -> Device {
        let global = MemArena::new(global_mem);
        // Offset 0 is reserved so that a null device pointer faults.
        let alloc = BlockAllocator::new(256, global.size() as u64 - 256);
        Device {
            props: DeviceProps::jetson_nano_2gb(global_mem as u64),
            global,
            alloc: Mutex::new(alloc),
            stats: Mutex::new(DeviceStats::default()),
            printf_output: Mutex::new(String::new()),
            fault: Mutex::new(None),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
        }
    }

    /// Install (or clear) the trace context in-kernel events report to.
    pub fn set_trace(&self, t: Option<DevTrace>) {
        self.trace_on.store(t.is_some(), Ordering::Release);
        *self.trace.lock() = t;
    }

    /// Move the trace context's launch base time (called by the driver
    /// before each launch so kernel events nest under the launch span).
    pub fn set_trace_base(&self, base_s: f64) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.base_s = base_s;
        }
    }

    /// The current trace context, if tracing is on. One relaxed atomic
    /// load when it is not.
    pub fn trace(&self) -> Option<DevTrace> {
        if !self.trace_on.load(Ordering::Acquire) {
            return None;
        }
        self.trace.lock().clone()
    }

    /// Install (or clear) the fault-injection plan.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.lock() = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.lock().clone()
    }

    /// Consult the fault plan for one call to `site`. No-op without a plan.
    pub fn fault_check(&self, site: FaultSite) -> Result<(), ExecError> {
        let plan = self.fault.lock().clone();
        match plan {
            Some(p) => p.check(site),
            None => Ok(()),
        }
    }

    /// `cuMemAlloc`: allocate device memory, returning a tagged device
    /// pointer.
    pub fn mem_alloc(&self, size: u64) -> Result<u64, ExecError> {
        if self.fault_check(FaultSite::Arena).is_err() {
            // Arena pressure fired: permanently reserve about half of the
            // free memory (in whatever fragmented chunks are available) so
            // this and later allocations run closer to the wall.
            self.reserve_arena_pressure();
        }
        self.fault_check(FaultSite::Alloc)?;
        let off = self.alloc.lock().alloc(size)?;
        Ok(addr::make(Space::Global, off))
    }

    /// Leak allocations totalling ~half the currently-free bytes. The
    /// blocks are never freed, simulating another tenant of the shared
    /// arena (the Jetson board's CPU side) claiming memory mid-run.
    fn reserve_arena_pressure(&self) {
        let mut a = self.alloc.lock();
        let mut want = a.bytes_free() / 2;
        while want >= BlockAllocator::ALIGN {
            let chunk = want.min(a.largest_free());
            if chunk < BlockAllocator::ALIGN || a.alloc(chunk).is_err() {
                break;
            }
            want -= chunk;
        }
    }

    /// Device reset (`cuDevicePrimaryCtxReset`): drop the allocator state
    /// so all device allocations are gone. The fault plan (and its call
    /// counters), cumulative stats and trace context survive — a reset
    /// clears the device, not the experiment. Arena contents are left as
    /// garbage; the recovery manager re-reserves and re-uploads what it
    /// needs via [`Device::reserve_at`].
    pub fn reset(&self) {
        *self.alloc.lock() = BlockAllocator::new(256, self.global.size() as u64 - 256);
    }

    /// Re-reserve `size` bytes at the exact device address `ptr` after a
    /// [`Device::reset`]. Driver-internal bookkeeping reconstruction, not
    /// a guest-visible API call — it does not consult the fault plan, so
    /// replay never perturbs call numbering.
    pub fn reserve_at(&self, ptr: u64, size: u64) -> Result<(), ExecError> {
        if addr::space(ptr) != Some(Space::Global) {
            return Err(ExecError::Trap(format!("reserve of non-device pointer {ptr:#x}")));
        }
        self.alloc.lock().alloc_at(addr::offset(ptr), size)?;
        Ok(())
    }

    /// `cuMemFree`.
    pub fn mem_free(&self, ptr: u64) -> Result<(), ExecError> {
        self.fault_check(FaultSite::Free).map_err(|_| {
            ExecError::Alloc(vmcommon::alloc::AllocError::InvalidFree { offset: addr::offset(ptr) })
        })?;
        if addr::space(ptr) != Some(Space::Global) {
            return Err(ExecError::Trap(format!("cuMemFree of non-device pointer {ptr:#x}")));
        }
        self.alloc.lock().free(addr::offset(ptr))?;
        Ok(())
    }

    /// Bytes currently allocated on the device.
    pub fn mem_in_use(&self) -> u64 {
        self.alloc.lock().bytes_in_use()
    }

    /// Total free bytes in the global arena (possibly fragmented).
    pub fn mem_free_bytes(&self) -> u64 {
        self.alloc.lock().bytes_free()
    }

    /// Largest contiguous free block in the global arena.
    pub fn mem_largest_free(&self) -> u64 {
        self.alloc.lock().largest_free()
    }

    /// Peak bytes allocated since device creation.
    pub fn mem_high_water(&self) -> u64 {
        self.alloc.lock().high_water()
    }

    /// `cuMemcpyHtoD`: copy from a host buffer into device memory.
    /// Returns the simulated copy time in seconds.
    pub fn memcpy_h2d(&self, dst: u64, src: &[u8]) -> Result<f64, ExecError> {
        self.fault_check(FaultSite::H2D)?;
        if addr::space(dst) != Some(Space::Global) {
            return Err(ExecError::Trap(format!("HtoD destination {dst:#x} is not device memory")));
        }
        self.global.write_bytes(addr::offset(dst), src)?;
        let t = timing::MEMCPY_OVERHEAD_S + src.len() as f64 / timing::MEMCPY_BYTES_PER_S;
        let mut st = self.stats.lock();
        st.bytes_h2d += src.len() as u64;
        st.busy_time_s += t;
        Ok(t)
    }

    /// `cuMemcpyDtoH`. Returns the simulated copy time in seconds.
    pub fn memcpy_d2h(&self, dst: &mut [u8], src: u64) -> Result<f64, ExecError> {
        self.fault_check(FaultSite::D2H)?;
        if addr::space(src) != Some(Space::Global) {
            return Err(ExecError::Trap(format!("DtoH source {src:#x} is not device memory")));
        }
        self.global.read_bytes(addr::offset(src), dst)?;
        let t = timing::MEMCPY_OVERHEAD_S + dst.len() as f64 / timing::MEMCPY_BYTES_PER_S;
        let mut st = self.stats.lock();
        st.bytes_d2h += dst.len() as u64;
        st.busy_time_s += t;
        Ok(t)
    }

    /// Device-to-device copy (used by `omp target update` on unified
    /// buffers). Returns the simulated time.
    pub fn memcpy_d2d(&self, dst: u64, src: u64, len: u64) -> Result<f64, ExecError> {
        let mut buf = vec![0u8; len as usize];
        self.global.read_bytes(addr::offset(src), &mut buf)?;
        self.global.write_bytes(addr::offset(dst), &buf)?;
        Ok(timing::MEMCPY_OVERHEAD_S + 2.0 * len as f64 / timing::MEMCPY_BYTES_PER_S)
    }

    /// Fill a device range with a byte value (`cuMemsetD8`).
    pub fn memset_d8(&self, dst: u64, byte: u8, len: u64) -> Result<(), ExecError> {
        if addr::space(dst) != Some(Space::Global) {
            return Err(ExecError::Trap(format!("memset target {dst:#x} is not device memory")));
        }
        let off = addr::offset(dst);
        if byte == 0 {
            self.global.zero(off, len)?;
        } else {
            for i in 0..len {
                self.global.store_u8(off + i, byte)?;
            }
        }
        Ok(())
    }

    pub fn take_printf_output(&self) -> String {
        std::mem::take(&mut *self.printf_output.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_copy_roundtrip() {
        let d = Device::new(1 << 20);
        let p = d.mem_alloc(1024).unwrap();
        assert_eq!(addr::space(p), Some(Space::Global));
        let data: Vec<u8> = (0..=255).collect();
        d.memcpy_h2d(p, &data).unwrap();
        let mut back = vec![0u8; 256];
        d.memcpy_d2h(&mut back, p).unwrap();
        assert_eq!(back, data);
        d.mem_free(p).unwrap();
        assert_eq!(d.mem_in_use(), 0);
    }

    #[test]
    fn copy_times_scale_with_size() {
        let d = Device::new(1 << 22);
        let p = d.mem_alloc(1 << 21).unwrap();
        let small = d.memcpy_h2d(p, &vec![0u8; 1024]).unwrap();
        let large = d.memcpy_h2d(p, &vec![0u8; 1 << 21]).unwrap();
        assert!(large > small * 10.0);
    }

    #[test]
    fn host_pointer_rejected() {
        let d = Device::new(1 << 20);
        assert!(d.memcpy_h2d(addr::make(Space::Host, 64), &[1, 2, 3]).is_err());
        assert!(d.mem_free(addr::make(Space::Shared, 0)).is_err());
    }

    #[test]
    fn oom_reported() {
        let d = Device::new(1 << 16);
        assert!(d.mem_alloc(1 << 20).is_err());
    }

    /// After a reset, every prior allocation is gone and `reserve_at`
    /// brings blocks back at their exact old addresses — the basis of the
    /// recovery manager's mapping replay.
    #[test]
    fn reset_then_reserve_at_restores_addresses() {
        let d = Device::new(1 << 20);
        let a = d.mem_alloc(1000).unwrap();
        let b = d.mem_alloc(4096).unwrap();
        d.mem_free(a).unwrap();
        let in_use = d.mem_in_use();

        d.reset();
        assert_eq!(d.mem_in_use(), 0, "reset clears all allocations");
        d.reserve_at(b, 4096).unwrap();
        assert_eq!(d.mem_in_use(), in_use, "the layout is reconstructible");
        // The reserved block is a real allocation again: readable, and
        // freeable exactly once.
        d.memcpy_h2d(b, &[7u8; 16]).unwrap();
        d.mem_free(b).unwrap();
        assert!(d.mem_free(b).is_err());
        // A hole that was free before the reset is allocatable.
        assert_eq!(d.mem_alloc(1000).unwrap(), a);
    }

    #[test]
    fn props_match_nano() {
        let d = Device::new(1 << 20);
        assert_eq!(d.props.compute_capability, (5, 3));
        assert_eq!(d.props.multiprocessors, 1);
        assert_eq!(d.props.cores_per_mp, 128);
    }
}
