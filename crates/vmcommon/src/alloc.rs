//! First-fit block allocator over a guest arena range.
//!
//! Used by the device runtime for `cuMemAlloc`/`cuMemFree` and by the host
//! interpreter's heap (`malloc`/`free`). Metadata lives host-side, so guest
//! corruption cannot break the allocator.

use std::collections::BTreeMap;

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous space.
    OutOfMemory { requested: u64 },
    /// `free` of a pointer that was never allocated (or double free).
    InvalidFree { offset: u64 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "guest allocator out of memory ({requested} bytes requested)")
            }
            AllocError::InvalidFree { offset } => {
                write!(f, "invalid guest free at offset {offset:#x}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// First-fit allocator managing `[start, start+len)` of an arena.
///
/// All blocks are aligned to [`BlockAllocator::ALIGN`] bytes (256, matching
/// the CUDA driver's allocation granularity, which also guarantees natural
/// alignment for every scalar type the guest languages have).
#[derive(Debug)]
pub struct BlockAllocator {
    start: u64,
    len: u64,
    /// Free blocks: offset -> length. Coalesced on free.
    free: BTreeMap<u64, u64>,
    /// Live blocks: offset -> length.
    live: BTreeMap<u64, u64>,
    high_water: u64,
}

impl BlockAllocator {
    /// Allocation alignment/granularity in bytes.
    pub const ALIGN: u64 = 256;

    /// Manage the byte range `[start, start + len)`.
    pub fn new(start: u64, len: u64) -> BlockAllocator {
        let astart = start.next_multiple_of(Self::ALIGN);
        let len = len.saturating_sub(astart - start);
        let mut free = BTreeMap::new();
        if len >= Self::ALIGN {
            free.insert(astart, len - len % Self::ALIGN);
        }
        BlockAllocator { start: astart, len, free, live: BTreeMap::new(), high_water: 0 }
    }

    /// Allocate `size` bytes (rounded up to the granularity); returns the
    /// arena offset of the block.
    pub fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        let need = size.max(1).next_multiple_of(Self::ALIGN);
        let slot =
            self.free.iter().find(|(_, &flen)| flen >= need).map(|(&off, &flen)| (off, flen));
        let (off, flen) = slot.ok_or(AllocError::OutOfMemory { requested: size })?;
        self.free.remove(&off);
        if flen > need {
            self.free.insert(off + need, flen - need);
        }
        self.live.insert(off, need);
        self.high_water = self.high_water.max(self.bytes_in_use());
        Ok(off)
    }

    /// Reserve `size` bytes at exactly `offset` (rounded up to the
    /// granularity). Used to reconstruct a prior layout — e.g. replaying
    /// device mappings after a reset — where every block must come back at
    /// its original address so outstanding pointers stay valid. Fails with
    /// `OutOfMemory` if the range is not entirely free, and `InvalidFree`
    /// if `offset` is not aligned to the granularity.
    pub fn alloc_at(&mut self, offset: u64, size: u64) -> Result<(), AllocError> {
        if !offset.is_multiple_of(Self::ALIGN) {
            return Err(AllocError::InvalidFree { offset });
        }
        let need = size.max(1).next_multiple_of(Self::ALIGN);
        // The free block containing `offset`, if any.
        let slot = self
            .free
            .range(..=offset)
            .next_back()
            .map(|(&off, &flen)| (off, flen))
            .filter(|&(off, flen)| offset + need <= off + flen);
        let (off, flen) = slot.ok_or(AllocError::OutOfMemory { requested: size })?;
        self.free.remove(&off);
        if offset > off {
            self.free.insert(off, offset - off);
        }
        let tail = (off + flen) - (offset + need);
        if tail > 0 {
            self.free.insert(offset + need, tail);
        }
        self.live.insert(offset, need);
        self.high_water = self.high_water.max(self.bytes_in_use());
        Ok(())
    }

    /// Free a block previously returned by [`BlockAllocator::alloc`].
    pub fn free(&mut self, offset: u64) -> Result<(), AllocError> {
        let len = self.live.remove(&offset).ok_or(AllocError::InvalidFree { offset })?;
        // Insert and coalesce with neighbours.
        let mut off = offset;
        let mut flen = len;
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            if poff + plen == off {
                self.free.remove(&poff);
                off = poff;
                flen += plen;
            }
        }
        if let Some(&nlen) = self.free.get(&(off + flen)) {
            self.free.remove(&(off + flen));
            flen += nlen;
        }
        self.free.insert(off, flen);
        Ok(())
    }

    /// Size of the live block at `offset`, if any.
    pub fn block_size(&self, offset: u64) -> Option<u64> {
        self.live.get(&offset).copied()
    }

    /// Total bytes currently allocated (including granularity padding).
    pub fn bytes_in_use(&self) -> u64 {
        self.live.values().sum()
    }

    /// Peak bytes in use since creation.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Total free bytes (may be fragmented across blocks).
    pub fn bytes_free(&self) -> u64 {
        self.free.values().sum()
    }

    /// Size of the largest contiguous free block.
    pub fn largest_free(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// The managed range start.
    pub fn range_start(&self) -> u64 {
        self.start
    }

    /// The managed range length.
    pub fn range_len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;

    #[test]
    fn alloc_free_reuse() {
        let mut a = BlockAllocator::new(0, 4096);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        assert_ne!(x, y);
        a.free(x).unwrap();
        let z = a.alloc(50).unwrap();
        assert_eq!(z, x, "first-fit reuses the freed block");
    }

    #[test]
    fn oom_when_exhausted() {
        let mut a = BlockAllocator::new(0, 1024);
        a.alloc(512).unwrap();
        a.alloc(256).unwrap();
        assert!(a.alloc(512).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let mut a = BlockAllocator::new(0, 1024);
        let x = a.alloc(10).unwrap();
        a.free(x).unwrap();
        assert_eq!(a.free(x), Err(AllocError::InvalidFree { offset: x }));
    }

    #[test]
    fn coalescing_allows_big_realloc() {
        let mut a = BlockAllocator::new(0, 4 * BlockAllocator::ALIGN);
        let x = a.alloc(1).unwrap();
        let y = a.alloc(1).unwrap();
        let z = a.alloc(1).unwrap();
        a.free(y).unwrap();
        a.free(x).unwrap();
        a.free(z).unwrap();
        // Full range must be whole again.
        let w = a.alloc(4 * BlockAllocator::ALIGN).unwrap();
        assert_eq!(w, 0);
    }

    #[test]
    fn start_is_aligned() {
        let a = BlockAllocator::new(17, 4096);
        assert_eq!(a.range_start() % BlockAllocator::ALIGN, 0);
    }

    /// `alloc_at` reconstructs an arbitrary prior layout on a fresh
    /// allocator: every block comes back at its original offset and the
    /// allocator behaves identically afterwards.
    #[test]
    fn alloc_at_replays_a_layout() {
        let mut a = BlockAllocator::new(0, 64 * 1024);
        let x = a.alloc(300).unwrap();
        let y = a.alloc(1000).unwrap();
        let z = a.alloc(1).unwrap();
        a.free(y).unwrap();
        let live: Vec<(u64, u64)> = [(x, 300), (z, 1)].into();

        let mut b = BlockAllocator::new(0, 64 * 1024);
        for &(off, len) in &live {
            b.alloc_at(off, len).unwrap();
        }
        assert_eq!(b.block_size(x), a.block_size(x));
        assert_eq!(b.block_size(z), a.block_size(z));
        assert_eq!(b.bytes_in_use(), a.bytes_in_use());
        // The hole left by `y` is allocatable again, first-fit as before.
        assert_eq!(b.alloc(1000).unwrap(), y);
    }

    #[test]
    fn alloc_at_rejects_overlap_and_misalignment() {
        let mut a = BlockAllocator::new(0, 4096);
        let x = a.alloc(512).unwrap();
        assert_eq!(
            a.alloc_at(x, 256),
            Err(AllocError::OutOfMemory { requested: 256 }),
            "range already live"
        );
        assert_eq!(
            a.alloc_at(x + 256, 256),
            Err(AllocError::OutOfMemory { requested: 256 }),
            "tail of a live block"
        );
        assert!(a.alloc_at(13, 10).is_err(), "unaligned offset");
        assert!(a.alloc_at(4096, 256).is_err(), "past the end");
        a.alloc_at(1024, 256).unwrap();
        assert!(a.free(1024).is_ok());
    }

    /// Random alloc/free sequences never hand out overlapping blocks and
    /// always stay inside the managed range.
    #[test]
    fn no_overlap() {
        for seed in 0..128u64 {
            let mut rng = XorShift64::new(seed);
            let nops = rng.range_u64(1, 60);
            let mut a = BlockAllocator::new(0, 64 * 1024);
            let mut blocks: Vec<(u64, u64)> = Vec::new();
            for _ in 0..nops {
                let (size, do_free) = (rng.below(2048), rng.bool());
                if do_free && !blocks.is_empty() {
                    let (off, _) = blocks.swap_remove(0);
                    a.free(off).unwrap();
                } else if let Ok(off) = a.alloc(size) {
                    let len = size.max(1).next_multiple_of(BlockAllocator::ALIGN);
                    assert!(off + len <= 64 * 1024, "seed {seed}: out of range");
                    for &(o, l) in &blocks {
                        assert!(off + len <= o || o + l <= off, "seed {seed}: overlap");
                    }
                    blocks.push((off, len));
                }
            }
        }
    }
}
