//! Observability substrate: span tracing, per-device metrics, and profile
//! reports for the offload stack.
//!
//! Everything in this crate is driven by the *simulated* clocks — the
//! `DevClock` accumulators the runtime already keeps — never by wall time,
//! so traces are deterministic and comparable across machines. The two
//! recorders are:
//!
//! * [`Tracer`] — a lock-cheap span/event recorder covering the offload
//!   lifecycle (init, module load, H2D/D2H, launch, retries, faults, host
//!   fallback) plus in-kernel master/worker events. Exports Chrome
//!   trace-event JSON ([`Tracer::to_chrome_json`]), loadable in Perfetto,
//!   with one trace "process" per device.
//! * [`Metrics`] — per-device counters and log2-bucket histograms
//!   (launches, bytes moved, retries by site, fallbacks, occupancy-limited
//!   blocks).
//!
//! Both live behind an [`Obs`] handle that the runner threads through every
//! layer. A disabled handle is a single relaxed atomic load per event, so
//! instrumentation can stay unconditional in hot paths.
//!
//! Runtime control is environment-driven, parallel to `OMPI_FAULT_PLAN`:
//! `OMPI_TRACE=path.json` enables the tracer and writes the trace when the
//! runner is dropped; `OMPI_PROFILE=1` prints the per-device profile table
//! (see [`profile::render_profile`]) to stderr; `OMPI_HOTSPOTS=1` prints
//! the guest-source hotspot table (see [`hotspots::render_hotspots`]);
//! and `OMPI_FLIGHT_DUMP=path.jsonl` arms the always-on [`FlightRecorder`]
//! ring's post-mortem dump.

pub mod flight;
pub mod hotspots;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

pub use flight::{FlightEvent, FlightRecorder, FLIGHT_CAPACITY};
pub use hotspots::{render_hotspots, HotLine};
pub use json::Json;
pub use metrics::{Hist, Metrics};
pub use profile::{render_profile, ProfileRow};
pub use trace::{ArgValue, Phase, SpanId, TraceEvent, Tracer};

/// The bundle of recorders threaded through the stack.
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: Metrics,
    /// Always-on post-mortem ring, shared with (and fed by) both
    /// recorders above. Its dump path comes from `OMPI_FLIGHT_DUMP`,
    /// read once here at construction.
    pub flight: Arc<FlightRecorder>,
}

impl Obs {
    /// A no-op handle: events are dropped at an atomic-load gate, metrics
    /// still count (they are cheap and power the profile table), and the
    /// flight ring keeps the most recent events for post-mortems.
    pub fn disabled() -> Arc<Obs> {
        Obs::with_tracing(false)
    }

    /// A recording handle.
    pub fn enabled() -> Arc<Obs> {
        Obs::with_tracing(true)
    }

    fn with_tracing(tracing: bool) -> Arc<Obs> {
        let flight = Arc::new(FlightRecorder::from_env());
        Arc::new(Obs {
            tracer: Tracer::with_flight(tracing, flight.clone()),
            metrics: Metrics::with_flight(flight.clone()),
            flight,
        })
    }
}

/// Strict boolean parsing for `OMPI_*` env vars: `1/true/on/yes` and
/// `0/false/off/no` (case-insensitive, whitespace-trimmed) are the only
/// recognized spellings; anything else is `None` so callers can reject it
/// with a typed error instead of guessing. The historical "non-empty and
/// not `0` means true" rule silently read `OMPI_ASYNC=off` as *enabled*.
pub fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.tracer.is_enabled())
            .field("events", &self.tracer.len())
            .finish()
    }
}

/// Environment-variable controls, read once per runner.
#[derive(Clone, Debug, Default)]
pub struct ObsEnv {
    /// `OMPI_TRACE=path.json`: write a Chrome trace here on runner drop.
    pub trace_path: Option<PathBuf>,
    /// `OMPI_PROFILE=1`: print the per-device profile table on runner drop.
    pub profile: bool,
    /// `OMPI_HOTSPOTS=1`: print the guest-source hotspot table on runner
    /// drop (the VM collects attribution when the machine sees the same
    /// variable).
    pub hotspots: bool,
}

impl ObsEnv {
    /// Read `OMPI_TRACE` / `OMPI_PROFILE` / `OMPI_HOTSPOTS` from the
    /// process environment.
    pub fn from_env() -> ObsEnv {
        // Display flags stay forgiving (an unrecognized value is just
        // "off"), but route through the one strict vocabulary so
        // `OMPI_PROFILE=off` can never mean "on".
        let flag =
            |name: &str| std::env::var(name).ok().and_then(|v| parse_bool(&v)).unwrap_or(false);
        let trace_path =
            std::env::var("OMPI_TRACE").ok().filter(|s| !s.trim().is_empty()).map(PathBuf::from);
        ObsEnv { trace_path, profile: flag("OMPI_PROFILE"), hotspots: flag("OMPI_HOTSPOTS") }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_bool;

    #[test]
    fn parse_bool_recognizes_both_vocabularies() {
        for v in ["1", "true", "TRUE", " on ", "Yes"] {
            assert_eq!(parse_bool(v), Some(true), "{v:?}");
        }
        for v in ["0", "false", "False", "off", " NO "] {
            assert_eq!(parse_bool(v), Some(false), "{v:?}");
        }
    }

    #[test]
    fn parse_bool_rejects_everything_else() {
        for v in ["", "2", "enable", "y", "n", "tru"] {
            assert_eq!(parse_bool(v), None, "{v:?}");
        }
    }
}
