//! `cudadev` — the OMPi device module for CUDA GPUs (§4.2 of the paper).
//!
//! OMPi organizes device support as modules with a **host part** (loaded as
//! a plugin by the host runtime: device discovery, lazy initialization,
//! memory mapping and the three-phase kernel launch) and a **device part**
//! (the runtime library linked into every kernel, providing OpenMP
//! semantics inside offloaded code). Both live here; the GPU itself is the
//! simulated Maxwell SMM from `gpusim`.

pub mod devlib;
pub mod error;
pub mod host;
pub mod jit;

pub use devlib::{
    exports, round_barrier_count, CudaDeviceLib, B1, B2, MW_BLOCK_THREADS, MW_WORKERS,
};
pub use error::CudadevError;
pub use host::{
    BreakerState, CudaDev, CudaDevConfig, DevClock, MapKind, MemPressure, PressureOutcome,
    RetryPolicy, TileParam,
};
