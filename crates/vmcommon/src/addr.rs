//! Tagged guest addresses.
//!
//! A guest pointer is a `u64` whose top byte identifies the address space it
//! points into. This mirrors the *generic addressing* of PTX: a single load
//! instruction can dereference a pointer into global, shared or local memory
//! and the hardware dispatches on the address. Host-program pointers use
//! space 0 so that an accidental host-pointer dereference on the device is
//! caught as an invalid-space trap instead of silently reading wrong data.

/// Number of bits reserved for the in-space offset.
pub const OFFSET_BITS: u32 = 56;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// Address spaces understood by the interpreters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Space {
    /// Host program memory (the `minic` interpreter arena).
    Host = 0,
    /// Device global memory (the simulated GPU DRAM).
    Global = 1,
    /// Per-block shared memory.
    Shared = 2,
    /// Per-thread local memory (spilled locals whose address is taken).
    Local = 3,
}

impl Space {
    /// Decode a space tag; `None` for unknown tags (a wild guest pointer).
    pub fn from_tag(tag: u8) -> Option<Space> {
        match tag {
            0 => Some(Space::Host),
            1 => Some(Space::Global),
            2 => Some(Space::Shared),
            3 => Some(Space::Local),
            _ => None,
        }
    }
}

/// Build a tagged guest address from a space and an offset.
#[inline]
pub fn make(space: Space, offset: u64) -> u64 {
    debug_assert!(offset <= OFFSET_MASK, "guest offset overflows tag space");
    ((space as u64) << OFFSET_BITS) | (offset & OFFSET_MASK)
}

/// The space tag byte of a guest address.
#[inline]
pub fn tag(addr: u64) -> u8 {
    (addr >> OFFSET_BITS) as u8
}

/// The space of a guest address, if the tag is valid.
#[inline]
pub fn space(addr: u64) -> Option<Space> {
    Space::from_tag(tag(addr))
}

/// The in-space byte offset of a guest address.
#[inline]
pub fn offset(addr: u64) -> u64 {
    addr & OFFSET_MASK
}

/// Null guest pointer (host space, offset 0 — the arenas never hand out
/// offset 0, it is reserved precisely so that `NULL` traps).
pub const NULL: u64 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_spaces() {
        for s in [Space::Host, Space::Global, Space::Shared, Space::Local] {
            let a = make(s, 0xdead_beef);
            assert_eq!(space(a), Some(s));
            assert_eq!(offset(a), 0xdead_beef);
        }
    }

    #[test]
    fn wild_tag_is_rejected() {
        let a = (7u64 << OFFSET_BITS) | 16;
        assert_eq!(space(a), None);
    }

    #[test]
    fn null_is_host_zero() {
        assert_eq!(space(NULL), Some(Space::Host));
        assert_eq!(offset(NULL), 0);
    }

    #[test]
    fn pointer_arithmetic_stays_in_space() {
        let a = make(Space::Global, 100);
        let b = a + 28; // guest code does byte arithmetic on pointers
        assert_eq!(space(b), Some(Space::Global));
        assert_eq!(offset(b), 128);
    }
}
