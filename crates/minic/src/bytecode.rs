//! Register bytecode for the mini-C host VM.
//!
//! [`crate::compile`] lowers an analyzed [`crate::ast::Program`] into one
//! [`Chunk`] per function; [`crate::vm::Vm`] executes them. The design
//! goals, in order: bit-identical results with the tree-walking oracle
//! ([`crate::walker`]), then dispatch economy for the array-index / FMA
//! shapes that dominate the UniBench loop nests.
//!
//! Key decisions:
//!
//! * **Registers, not a stack.** Operands are `Value` registers in a frame
//!   window; scalar locals whose address is never taken live directly in
//!   registers (slot resolution happens at compile time from
//!   `sema::FrameInfo`), so the gemm inner loop touches guest memory only
//!   for the actual array elements.
//! * **Fused addressing.** `LoadIdx`/`StoreIdx` compute
//!   `base + idx * stride`, null-check the base and access memory in one
//!   dispatch — the walker needs three visits and two typed-memory calls
//!   for the same shape. `FmaAssign` fuses `acc op= a * b` on a
//!   register-resident accumulator.
//! * **Everything slow stays a single op.** Calls, printf, kernel
//!   launches and traps carry pool indices; the pools live in
//!   [`CompiledProgram`].

use crate::ast::BinOp;
use vmcommon::Value;

/// Register index within a chunk's frame window.
pub type R = u16;

/// Compact scalar type kind for typed memory access and conversions.
/// `Dim3X` stores the x component only (the walker's scalar-store
/// behaviour for whole-`dim3` assignment); loads of `dim3` are compiled
/// to traps instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TyK {
    Char,
    Int,
    Long,
    Float,
    Double,
    Ptr,
    Dim3X,
}

/// One bytecode instruction.
///
/// `off` fields are byte offsets added to a base address; `stride` fields
/// are element strides for scaled indexing (the `D` variants read the
/// stride from a register for VLA-typed pointers). Jump targets are
/// absolute instruction indices.
#[derive(Clone, Debug)]
pub enum Op {
    /// `regs[dst] = consts[idx]`.
    Const {
        dst: R,
        idx: u32,
    },
    Mov {
        dst: R,
        src: R,
    },
    /// `regs[dst] = convert(regs[src], ty)` (C cast semantics).
    Conv {
        dst: R,
        src: R,
        ty: TyK,
    },
    /// Address of a frame slot: `regs[dst] = Ptr(frame_base + off)`.
    FrameAddr {
        dst: R,
        off: u32,
    },
    /// Typed load/store of a frame slot at a static offset.
    LoadSlot {
        dst: R,
        off: u32,
        ty: TyK,
    },
    StoreSlot {
        off: u32,
        src: R,
        ty: TyK,
    },
    /// Typed load/store at a static absolute address (`consts[at]` is a
    /// `Ptr`): globals.
    LoadAbs {
        dst: R,
        at: u32,
        ty: TyK,
    },
    StoreAbs {
        at: u32,
        src: R,
        ty: TyK,
    },
    /// Typed load/store through a pointer register (+ static byte offset).
    /// Null base traps like the walker's lvalue path.
    Load {
        dst: R,
        addr: R,
        off: u32,
        ty: TyK,
    },
    Store {
        addr: R,
        off: u32,
        src: R,
        ty: TyK,
    },
    /// Fused `base[idx]` element access: address `base + idx * stride`,
    /// base null-checked.
    LoadIdx {
        dst: R,
        base: R,
        idx: R,
        stride: u32,
        ty: TyK,
    },
    StoreIdx {
        base: R,
        idx: R,
        stride: u32,
        src: R,
        ty: TyK,
    },
    /// Fused element *address* (nested arrays, `&a[i]`).
    AddrIdx {
        dst: R,
        base: R,
        idx: R,
        stride: u32,
    },
    LoadIdxD {
        dst: R,
        base: R,
        idx: R,
        stride: R,
        ty: TyK,
    },
    StoreIdxD {
        base: R,
        idx: R,
        stride: R,
        src: R,
        ty: TyK,
    },
    AddrIdxD {
        dst: R,
        base: R,
        idx: R,
        stride: R,
    },
    /// Explicit null check (kept when the index expression is impure so
    /// the walker's check-before-index evaluation order is preserved).
    ChkNull {
        src: R,
    },
    /// VLA stride step: trap on negative extent, then
    /// `regs[dst] = I64(extent * elem)`.
    Stride {
        dst: R,
        extent: R,
        elem: u32,
    },
    StrideD {
        dst: R,
        extent: R,
        elem: R,
    },
    /// `regs[dst] = apply_binop(op, regs[a], stride, regs[b])` — the full
    /// C semantics of the walker (pointer±int with stride, f32-preserving
    /// float ops, wrapping integer ops, div/rem-by-zero traps).
    Bin {
        op: BinOp,
        dst: R,
        a: R,
        b: R,
        stride: u32,
    },
    BinD {
        op: BinOp,
        dst: R,
        a: R,
        b: R,
        stride: R,
    },
    /// Pointer difference `(a - b) / stride`.
    PtrDiff {
        dst: R,
        a: R,
        b: R,
        stride: u32,
    },
    PtrDiffD {
        dst: R,
        a: R,
        b: R,
        stride: R,
    },
    /// Fused `regs[dst] = convert(regs[dst] + regs[a] * regs[b], ty)`
    /// with exactly the walker's two-step `apply_binop` rounding.
    FmaAssign {
        dst: R,
        a: R,
        b: R,
        ty: TyK,
    },
    Neg {
        dst: R,
        src: R,
    },
    /// Logical not: `I32(!truthy)`.
    NotL {
        dst: R,
        src: R,
    },
    BitNot {
        dst: R,
        src: R,
    },
    /// `I32(is_truthy)` — materializes `&&`/`||` results.
    Truth {
        dst: R,
        src: R,
    },
    Jmp {
        to: u32,
    },
    /// Jump if falsy / truthy.
    Jz {
        cond: R,
        to: u32,
    },
    Jnz {
        cond: R,
        to: u32,
    },
    /// Return `regs[src]` (already converted to the declared return type).
    Ret {
        src: R,
    },
    /// Call chunk `func` with `nargs` consecutive registers from `abase`.
    Call {
        dst: R,
        func: u32,
        abase: R,
        nargs: u8,
    },
    /// Call builtin `rt::BUILTINS[which]`.
    CallBuiltin {
        dst: R,
        which: u16,
        abase: R,
        nargs: u8,
    },
    /// Call through [`crate::interp::Hooks`]; `name` indexes the string
    /// pool. Traps "unknown function" if the hook declines.
    CallHook {
        dst: R,
        name: u32,
        abase: R,
        nargs: u8,
    },
    /// printf with a static format string (`strs[fmt]`); `nargs` is the
    /// number of evaluated (conversion-matched) arguments.
    Printf {
        dst: R,
        fmt: u32,
        abase: R,
        nargs: u8,
    },
    /// printf with a runtime format pointer.
    PrintfD {
        dst: R,
        fmt: R,
        abase: R,
        nargs: u8,
    },
    /// CUDA-dialect kernel launch: `gb` is the first of six consecutive
    /// registers holding grid.xyz / block.xyz.
    Launch {
        name: u32,
        gb: R,
        abase: R,
        nargs: u8,
    },
    /// Launch-config component: `regs[dst] = I64(max(src, 1) as u32)`.
    DimFix {
        dst: R,
        src: R,
    },
    /// Load/store the three `u32` components of a `dim3` frame slot into
    /// three consecutive registers (as I64).
    Dim3Load {
        dst3: R,
        off: u32,
    },
    Dim3Store {
        off: u32,
        src3: R,
    },
    /// Unconditional trap with message `strs[msg]` (compile-time-known
    /// error paths: unresolved identifiers, bad casts, …).
    Trap {
        msg: u32,
    },
}

/// How an incoming argument binds to the callee frame.
#[derive(Clone, Debug)]
pub enum ParamSpec {
    /// Register-resident scalar: `regs[reg] = convert(arg, ty)`.
    Reg { reg: R, ty: TyK },
    /// Memory-resident (address-taken) parameter: typed store at the
    /// frame offset.
    Mem { off: u32, ty: TyK },
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct Chunk {
    pub name: String,
    /// Register window size.
    pub nregs: u16,
    /// Guest-stack frame size (identical to the walker's `FrameInfo::size`
    /// so stack-exhaustion behaviour is unchanged).
    pub frame_size: u64,
    pub params: Vec<ParamSpec>,
    /// Registers zero-initialized at entry to the typed zero of their
    /// slot (matching a typed load from zeroed frame memory).
    pub zero_init: Vec<(R, TyK)>,
    pub code: Vec<Op>,
    /// Index into [`CompiledProgram::line_tables`] — the pc→source-line
    /// map for this chunk.
    pub line_table: u32,
}

/// The whole program in bytecode form, plus its pools.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    pub chunks: Vec<Chunk>,
    /// Function name → chunk index.
    pub fn_chunk: std::collections::HashMap<String, u32>,
    /// Synthetic chunk running global initializers (guarded by the
    /// machine's `globals_ready` flag, like the walker).
    pub init_chunk: Option<u32>,
    pub consts: Vec<Value>,
    pub strs: Vec<String>,
    /// Run-length-encoded pc→line tables: `(pc_start, line)` pairs sorted
    /// by `pc_start`; an entry covers pcs up to the next entry. Tables are
    /// bit-exact-deduplicated like the constant pool (two chunks compiled
    /// from identical line shapes share one table).
    pub line_tables: Vec<Vec<(u32, u32)>>,
}

/// Source line for a pc given a chunk's RLE line table (binary search on
/// the run starts). Returns 0 for an empty table.
pub fn line_for_pc(table: &[(u32, u32)], pc: u32) -> u32 {
    match table.binary_search_by_key(&pc, |&(start, _)| start) {
        Ok(i) => table[i].1,
        Err(0) => 0,
        Err(i) => table[i - 1].1,
    }
}

/// Dispatch categories for the `vm.dispatch.*` observability counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCat {
    Mem = 0,
    Idx = 1,
    Alu = 2,
    Ctrl = 3,
    Call = 4,
    Misc = 5,
}

pub const OP_CATS: [&str; 6] = ["mem", "idx", "alu", "ctrl", "call", "misc"];

impl Op {
    /// Category for the dispatch counters.
    #[inline]
    pub fn cat(&self) -> OpCat {
        use Op::*;
        match self {
            LoadSlot { .. }
            | StoreSlot { .. }
            | LoadAbs { .. }
            | StoreAbs { .. }
            | Load { .. }
            | Store { .. }
            | Dim3Load { .. }
            | Dim3Store { .. } => OpCat::Mem,
            LoadIdx { .. }
            | StoreIdx { .. }
            | AddrIdx { .. }
            | LoadIdxD { .. }
            | StoreIdxD { .. }
            | AddrIdxD { .. } => OpCat::Idx,
            Conv { .. }
            | Bin { .. }
            | BinD { .. }
            | PtrDiff { .. }
            | PtrDiffD { .. }
            | FmaAssign { .. }
            | Neg { .. }
            | NotL { .. }
            | BitNot { .. }
            | Truth { .. }
            | Stride { .. }
            | StrideD { .. }
            | DimFix { .. } => OpCat::Alu,
            Jmp { .. } | Jz { .. } | Jnz { .. } | Ret { .. } => OpCat::Ctrl,
            Call { .. }
            | CallBuiltin { .. }
            | CallHook { .. }
            | Printf { .. }
            | PrintfD { .. }
            | Launch { .. } => OpCat::Call,
            Const { .. } | Mov { .. } | FrameAddr { .. } | ChkNull { .. } | Trap { .. } => {
                OpCat::Misc
            }
        }
    }
}
