//! The unified error taxonomy of the cudadev host module.
//!
//! Every driver-facing operation returns `Result<_, CudadevError>` instead
//! of panicking, so a dying (or fault-injected) device propagates cleanly
//! up to the OpenMP runtime, which can then retry or fall back to host
//! execution. Variants record *which phase* failed — the information the
//! runtime needs to decide between retry, recompile and fallback.

use gpusim::ExecError;

/// A failure in the cudadev host module.
#[derive(Clone, Debug)]
pub enum CudadevError {
    /// Lazy device initialization failed (device discovery, control-block
    /// allocation).
    Init(ExecError),
    /// The device was latched broken by an earlier terminal failure; the
    /// operation was not attempted.
    Broken,
    /// A data-environment operation failed (alloc, H2D/D2H copy, map
    /// bookkeeping), after any retries.
    Data(ExecError),
    /// `cuMemFree` rejected the pointer: double free or a pointer the
    /// driver never handed out. A host-side bookkeeping bug, not a device
    /// failure — the device stays usable.
    InvalidFree { dev_ptr: u64 },
    /// An unmap/update referenced a host address with no live mapping
    /// (never mapped, or already unmapped/evicted). A host-side
    /// bookkeeping error, not a device failure — the device stays usable.
    NotMapped { host_addr: u64 },
    /// Locating, decoding or verifying a kernel module failed.
    ModuleLoad { module: String, reason: String },
    /// JIT assembly/linking of a `.sptx` kernel failed.
    Jit { module: String, reason: String },
    /// A kernel launch failed, after any retries.
    Launch { kernel: String, error: ExecError },
    /// The watchdog expired an operation that exceeded its deadline
    /// (`OMPI_LAUNCH_TIMEOUT_MS`) and recovery could not bring the device
    /// back within the reset budget. Equivalent to a lost device.
    Timeout { site: String, deadline_ms: u64 },
}

impl CudadevError {
    /// Would retrying the operation plausibly help?
    pub fn is_transient(&self) -> bool {
        match self {
            CudadevError::Init(e) | CudadevError::Data(e) => e.is_transient(),
            CudadevError::Launch { error, .. } => error.is_transient(),
            _ => false,
        }
    }

    /// Is the device gone for good (the caller should latch it broken and
    /// fall back to the host)?
    pub fn is_device_lost(&self) -> bool {
        matches!(
            self,
            CudadevError::Broken
                | CudadevError::Timeout { .. }
                | CudadevError::Init(ExecError::DeviceLost(_) | ExecError::Hang(_))
                | CudadevError::Data(ExecError::DeviceLost(_) | ExecError::Hang(_))
                | CudadevError::Launch { error: ExecError::DeviceLost(_) | ExecError::Hang(_), .. }
        )
    }

    /// The underlying simulator error, when there is one.
    pub fn exec_error(&self) -> Option<&ExecError> {
        match self {
            CudadevError::Init(e) | CudadevError::Data(e) => Some(e),
            CudadevError::Launch { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl std::fmt::Display for CudadevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CudadevError::Init(e) => write!(f, "device initialization failed: {e}"),
            CudadevError::Broken => write!(f, "device is broken (latched by an earlier failure)"),
            CudadevError::Data(e) => write!(f, "device data operation failed: {e}"),
            CudadevError::InvalidFree { dev_ptr } => {
                write!(f, "invalid device free of {dev_ptr:#x} (double free or bad pointer)")
            }
            CudadevError::NotMapped { host_addr } => {
                write!(f, "host address {host_addr:#x} has no live device mapping")
            }
            CudadevError::ModuleLoad { module, reason } => {
                write!(f, "loading kernel module `{module}` failed: {reason}")
            }
            CudadevError::Jit { module, reason } => {
                write!(f, "JIT compilation of `{module}` failed: {reason}")
            }
            CudadevError::Launch { kernel, error } => {
                write!(f, "launch of kernel `{kernel}` failed: {error}")
            }
            CudadevError::Timeout { site, deadline_ms } => {
                write!(
                    f,
                    "watchdog timeout: `{site}` exceeded its {deadline_ms} ms deadline and \
                     recovery exhausted the reset budget"
                )
            }
        }
    }
}

impl std::error::Error for CudadevError {}

impl From<ExecError> for CudadevError {
    fn from(e: ExecError) -> Self {
        CudadevError::Data(e)
    }
}
