//! The plain-text per-device profile table (`OMPI_PROFILE=1`,
//! `fig4 --profile`): simulated time attributed to the offload phases the
//! paper's evaluation breaks down, one row per device.

/// One device's time breakdown. The seven time columns are exactly the
/// `DevClock` accumulators, so a row's [`ProfileRow::total_s`] equals the
/// device clock's `total_s()`: the phase columns keep full attribution
/// (what each engine was busy doing) while `overlap_s` — time where async
/// streams ran a copy under a kernel — is subtracted once from the total.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileRow {
    pub label: String,
    pub init_s: f64,
    pub modload_s: f64,
    pub h2d_s: f64,
    pub kernel_s: f64,
    pub d2h_s: f64,
    pub retry_backoff_s: f64,
    pub fallback_s: f64,
    pub overlap_s: f64,
    pub launches: u64,
    pub retries: u64,
    pub fallbacks: u64,
    /// Offload region latency percentiles in simulated microseconds, from
    /// the `region_latency_us` histogram ([`crate::Hist::percentile`]).
    /// Zero when the device ran no regions (e.g. the host-fallback row).
    pub lat_p50_us: u64,
    pub lat_p95_us: u64,
    pub lat_p99_us: u64,
}

impl ProfileRow {
    /// Sum of every time column, minus the transfer/compute overlap — the
    /// device's aggregate simulated (wall) time.
    pub fn total_s(&self) -> f64 {
        self.init_s
            + self.modload_s
            + self.h2d_s
            + self.kernel_s
            + self.d2h_s
            + self.retry_backoff_s
            + self.fallback_s
            - self.overlap_s
    }
}

/// Render the profile table. Times are in milliseconds of simulated time.
pub fn render_profile(rows: &[ProfileRow]) -> String {
    let cols = [
        "device",
        "init",
        "modload",
        "h2d",
        "kernel",
        "d2h",
        "retry",
        "fallback",
        "overlap",
        "total",
        "launches",
        "retries",
        "fallbacks",
        "p50us",
        "p95us",
        "p99us",
    ];
    let mut table: Vec<Vec<String>> = vec![cols.iter().map(|s| s.to_string()).collect()];
    for r in rows {
        table.push(vec![
            r.label.clone(),
            ms(r.init_s),
            ms(r.modload_s),
            ms(r.h2d_s),
            ms(r.kernel_s),
            ms(r.d2h_s),
            ms(r.retry_backoff_s),
            ms(r.fallback_s),
            ms(r.overlap_s),
            ms(r.total_s()),
            r.launches.to_string(),
            r.retries.to_string(),
            r.fallbacks.to_string(),
            r.lat_p50_us.to_string(),
            r.lat_p95_us.to_string(),
            r.lat_p99_us.to_string(),
        ]);
    }
    let widths: Vec<usize> =
        (0..cols.len()).map(|c| table.iter().map(|row| row[c].len()).max().unwrap_or(0)).collect();
    let mut out = String::from("per-device profile (simulated ms)\n");
    for (i, row) in table.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .enumerate()
            .map(
                |(c, (cell, w))| {
                    if c == 0 {
                        format!("{cell:<w$}")
                    } else {
                        format!("{cell:>w$}")
                    }
                },
            )
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

fn ms(s: f64) -> String {
    format!("{:.3}", s * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_time_columns() {
        let r = ProfileRow {
            label: "dev0".into(),
            init_s: 1.0,
            modload_s: 2.0,
            h2d_s: 3.0,
            kernel_s: 4.0,
            d2h_s: 5.0,
            retry_backoff_s: 6.0,
            fallback_s: 7.0,
            ..ProfileRow::default()
        };
        assert!((r.total_s() - 28.0).abs() < 1e-12);
        let overlapped = ProfileRow { overlap_s: 2.5, ..r };
        assert!((overlapped.total_s() - 25.5).abs() < 1e-12);
    }

    #[test]
    fn render_includes_every_phase_column_and_row_label() {
        let rows = vec![
            ProfileRow {
                label: "dev0".into(),
                kernel_s: 0.001,
                launches: 3,
                lat_p50_us: 511,
                lat_p95_us: 2047,
                lat_p99_us: 2047,
                ..Default::default()
            },
            ProfileRow {
                label: "host".into(),
                fallback_s: 0.002,
                fallbacks: 1,
                ..Default::default()
            },
        ];
        let text = render_profile(&rows);
        for col in [
            "init", "modload", "h2d", "kernel", "d2h", "retry", "fallback", "overlap", "total",
            "p50us", "p95us", "p99us",
        ] {
            assert!(text.contains(col), "missing column {col}:\n{text}");
        }
        assert!(text.contains("dev0"));
        assert!(text.contains("host"));
        assert!(text.contains("1.000"), "kernel ms:\n{text}");
        assert!(text.contains("2.000"), "fallback ms:\n{text}");
        assert!(text.contains("511"), "p50 column:\n{text}");
        assert!(text.contains("2047"), "p95/p99 columns:\n{text}");
    }
}
