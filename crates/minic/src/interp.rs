//! Tree-walking interpreter for host-side mini-C programs.
//!
//! This stands in for "compile the translated C with gcc and run it on the
//! A57 cores": the OMPi translator rewrites OpenMP constructs into plain C
//! plus runtime calls, and this interpreter executes that C faithfully,
//! delegating every unknown function to pluggable [`Hooks`] (the OMPi host
//! runtime: `hostomp` + `cudadev`).
//!
//! All program state lives in a guest [`MemArena`], so `&x`, pointer
//! arithmetic and byte-exact `memcpy` to the simulated device all behave
//! like real C. The interpreter is thread-safe: host `parallel` regions run
//! one `Interp` per OS thread over the shared arena.
//!
//! Untranslated OpenMP programs can also be executed directly: directives
//! are then ignored (a legal single-thread OpenMP execution), which provides
//! the sequential reference behaviour used by differential tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vmcommon::addr::{self, Space};
use vmcommon::alloc::AllocError;
use vmcommon::fmt::FmtArg;
use vmcommon::sync::Mutex;
use vmcommon::{BlockAllocator, MemArena, MemError, Value};

use crate::ast::*;
use crate::sema::ProgramInfo;
use crate::types::{ArrayLen, Ty};

/// Runtime error raised by guest execution.
#[derive(Clone, Debug)]
pub enum InterpError {
    Mem(MemError),
    Alloc(AllocError),
    /// Any other guest misbehaviour (unknown function, bad cast, …).
    Trap(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Mem(e) => write!(f, "memory fault: {e}"),
            InterpError::Alloc(e) => write!(f, "allocation fault: {e}"),
            InterpError::Trap(m) => write!(f, "trap: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

impl From<AllocError> for InterpError {
    fn from(e: AllocError) -> Self {
        InterpError::Alloc(e)
    }
}

pub type IResult<T> = Result<T, InterpError>;

/// Hooks connect the interpreter to the OMPi runtime libraries.
pub trait Hooks: Send + Sync {
    /// Handle a call to a function that is neither defined in the program
    /// nor a core builtin. Return `Ok(None)` to decline (the interpreter
    /// then traps with "unknown function").
    fn call(&self, name: &str, args: &[Value], ctx: &HookCtx<'_>) -> IResult<Option<Value>>;

    /// Handle a CUDA `kernel<<<grid, block>>>(args)` launch (host CUDA
    /// dialect). The default declines.
    fn kernel_launch(
        &self,
        name: &str,
        _grid: [u32; 3],
        _block: [u32; 3],
        _args: &[Value],
        _ctx: &HookCtx<'_>,
    ) -> IResult<()> {
        Err(InterpError::Trap(format!("no runtime to launch kernel `{name}`")))
    }
}

/// No-op hooks (pure programs).
pub struct NoHooks;

impl Hooks for NoHooks {
    fn call(&self, _name: &str, _args: &[Value], _ctx: &HookCtx<'_>) -> IResult<Option<Value>> {
        Ok(None)
    }
}

/// Context handed to hooks: enough to re-enter guest code and touch memory.
pub struct HookCtx<'a> {
    pub machine: &'a Arc<Machine>,
    pub hooks: &'a Arc<dyn Hooks>,
}

impl<'a> HookCtx<'a> {
    /// Call a guest function on the current thread (fresh stack).
    pub fn call_guest(&self, name: &str, args: &[Value]) -> IResult<Value> {
        let mut i = Interp::new(self.machine.clone(), self.hooks.clone())?;
        i.call(name, args)
    }

    pub fn mem(&self) -> &MemArena {
        &self.machine.mem
    }
}

/// Where `printf` and friends write.
pub type OutputSink = dyn Fn(&str) + Send + Sync;

/// A linked, executable program image plus its guest memory.
pub struct Machine {
    pub prog: Program,
    pub info: ProgramInfo,
    pub mem: MemArena,
    pub heap: Mutex<BlockAllocator>,
    /// Global-variable addresses, indexed like `ProgramInfo::globals`.
    global_addrs: Vec<u64>,
    /// Interned string literals.
    rodata: HashMap<String, u64>,
    /// Function name → item index (definitions only).
    fn_defs: HashMap<String, usize>,
    /// Output sink for printf (also always captured).
    output: Mutex<Option<Box<OutputSink>>>,
    /// Captured output.
    pub captured: Mutex<String>,
    globals_ready: AtomicBool,
}

/// Per-interp stack size (bytes).
const STACK_SIZE: u64 = 4 << 20;

impl Machine {
    /// Build a machine for an analyzed program with `mem_bytes` of guest
    /// memory. Global variables and string literals are laid out
    /// immediately; initializers run on the first [`Interp`] creation.
    pub fn new(prog: Program, info: ProgramInfo, mem_bytes: usize) -> IResult<Arc<Machine>> {
        let mem = MemArena::new(mem_bytes);
        // Reserve the first 256 bytes so offset 0 stays an unmapped "null".
        let mut cursor: u64 = 256;

        // Globals.
        let mut global_addrs = Vec::with_capacity(info.globals.len());
        for g in &info.globals {
            let size = g.ty.size().ok_or_else(|| {
                InterpError::Trap(format!("global `{}` has unsized type {}", g.name, g.ty))
            })?;
            cursor = cursor.next_multiple_of(g.ty.align().max(8));
            global_addrs.push(addr::make(Space::Host, cursor));
            cursor += size;
        }

        // String literals.
        let mut rodata = HashMap::new();
        let mut strings = Vec::new();
        collect_strings(&prog, &mut strings);
        for s in strings {
            if rodata.contains_key(&s) {
                continue;
            }
            cursor = cursor.next_multiple_of(8);
            mem.write_bytes(cursor, s.as_bytes())?;
            mem.store_u8(cursor + s.len() as u64, 0)?;
            rodata.insert(s.clone(), addr::make(Space::Host, cursor));
            cursor += s.len() as u64 + 1;
        }

        let heap = BlockAllocator::new(cursor, mem.size() as u64 - cursor);
        let mut fn_defs = HashMap::new();
        for (i, item) in prog.items.iter().enumerate() {
            if let Item::Func(f) = item {
                fn_defs.insert(f.sig.name.clone(), i);
            }
        }

        Ok(Arc::new(Machine {
            prog,
            info,
            mem,
            heap: Mutex::new(heap),
            global_addrs,
            rodata,
            fn_defs,
            output: Mutex::new(None),
            captured: Mutex::new(String::new()),
            globals_ready: AtomicBool::new(false),
        }))
    }

    /// Convenience: parse + analyze + build with a default 64 MiB arena.
    pub fn from_source(src: &str) -> IResult<Arc<Machine>> {
        Self::from_source_with_mem(src, 64 << 20)
    }

    pub fn from_source_with_mem(src: &str, mem_bytes: usize) -> IResult<Arc<Machine>> {
        let mut prog = crate::parser::parse(src).map_err(|e| InterpError::Trap(e.to_string()))?;
        let info = crate::sema::analyze(&mut prog).map_err(|e| InterpError::Trap(e.to_string()))?;
        Machine::new(prog, info, mem_bytes)
    }

    /// Guest address of a global by name.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        let i = self.info.globals.iter().position(|g| g.name == name)?;
        Some(self.global_addrs[i])
    }

    /// The function definition item, by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.fn_defs.get(name).and_then(|&i| match &self.prog.items[i] {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Install a live output sink for `printf` (output is captured too).
    pub fn set_output(&self, sink: Box<OutputSink>) {
        *self.output.lock() = Some(sink);
    }

    fn emit(&self, s: &str) {
        if let Some(sink) = self.output.lock().as_ref() {
            sink(s);
        }
        self.captured.lock().push_str(s);
    }

    /// Take everything printed so far.
    pub fn take_output(&self) -> String {
        std::mem::take(&mut *self.captured.lock())
    }
}

fn collect_strings(prog: &Program, out: &mut Vec<String>) {
    fn in_expr(e: &Expr, out: &mut Vec<String>) {
        if let ExprKind::StrLit(s) = &e.kind {
            out.push(s.clone());
        }
        visit_child_exprs(e, &mut |c| in_expr(c, out));
    }
    fn in_stmt(s: &Stmt, out: &mut Vec<String>) {
        visit_stmt_exprs(s, &mut |e| in_expr(e, out));
        visit_child_stmts(s, &mut |c| in_stmt(c, out));
    }
    for item in &prog.items {
        if let Item::Func(f) = item {
            for s in &f.body.stmts {
                in_stmt(s, out);
            }
        }
    }
}

/// Visit the direct child expressions of an expression.
pub fn visit_child_exprs(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    match &e.kind {
        ExprKind::Call { args, .. } => args.iter().for_each(&mut *f),
        ExprKind::KernelLaunch { grid, block, args, .. } => {
            f(grid);
            f(block);
            args.iter().for_each(&mut *f);
        }
        ExprKind::Dim3 { x, y, z } => {
            f(x);
            if let Some(y) = y {
                f(y);
            }
            if let Some(z) = z {
                f(z);
            }
        }
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::IncDec { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeofExpr(expr) => f(expr),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Ternary { cond, then_e, else_e } => {
            f(cond);
            f(then_e);
            f(else_e);
        }
        ExprKind::Comma(a, b) => {
            f(a);
            f(b);
        }
        _ => {}
    }
}

/// Visit the direct expressions of a statement (not recursing into child
/// statements).
pub fn visit_stmt_exprs(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match s {
        Stmt::Expr(e) => f(e),
        Stmt::Decl(d) => {
            if let Some(init) = &d.init {
                visit_init(init, f);
            }
        }
        Stmt::If { cond, .. } => f(cond),
        Stmt::For { cond, step, .. } => {
            if let Some(c) = cond {
                f(c);
            }
            if let Some(st) = step {
                f(st);
            }
        }
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => f(cond),
        Stmt::Return(Some(e)) => f(e),
        _ => {}
    }
}

fn visit_init(i: &Init, f: &mut dyn FnMut(&Expr)) {
    match i {
        Init::Expr(e) => f(e),
        Init::List(list) => list.iter().for_each(|it| visit_init(it, f)),
    }
}

/// Visit the direct child statements of a statement.
pub fn visit_child_stmts(s: &Stmt, f: &mut dyn FnMut(&Stmt)) {
    match s {
        Stmt::Block(b) => b.stmts.iter().for_each(&mut *f),
        Stmt::If { then_s, else_s, .. } => {
            f(then_s);
            if let Some(e) = else_s {
                f(e);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                f(i);
            }
            f(body);
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => f(body),
        Stmt::Omp(o) => {
            if let Some(b) = &o.body {
                f(b);
            }
        }
        _ => {}
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An execution context: one per OS thread, with its own guest stack.
pub struct Interp {
    machine: Arc<Machine>,
    hooks: Arc<dyn Hooks>,
    stack_block: u64,
    sp: u64,
    /// Base address of the current frame.
    frame_base: u64,
    /// Slot offsets of the current function's frame.
    frame: *const crate::sema::FrameInfo,
    depth: u32,
}

// SAFETY: `frame` points into `machine.prog`, which is kept alive by the
// `Arc<Machine>` held alongside it and is never mutated after construction.
unsafe impl Send for Interp {}

impl Interp {
    /// Create an interpreter with a fresh guest stack. Runs global
    /// initializers on first creation per machine.
    pub fn new(machine: Arc<Machine>, hooks: Arc<dyn Hooks>) -> IResult<Interp> {
        let stack_block = machine.heap.lock().alloc(STACK_SIZE)?;
        let mut it = Interp {
            machine,
            hooks,
            stack_block,
            sp: stack_block,
            frame_base: stack_block,
            frame: std::ptr::null(),
            depth: 0,
        };
        it.init_globals_once()?;
        Ok(it)
    }

    fn init_globals_once(&mut self) -> IResult<()> {
        if self.machine.globals_ready.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        // Evaluate global initializers in a synthetic frame.
        let globals: Vec<(usize, Ty, Init)> = self
            .machine
            .info
            .globals
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.init.clone().map(|init| (i, g.ty.clone(), init)))
            .collect();
        for (i, ty, init) in globals {
            let base = self.machine.global_addrs[i];
            self.store_init(base, &ty, &init)?;
        }
        Ok(())
    }

    fn store_init(&mut self, base: u64, ty: &Ty, init: &Init) -> IResult<()> {
        match (ty, init) {
            (Ty::Array(elem, _), Init::List(list)) => {
                let esz = self.sizeof_rt(elem)?;
                for (i, it) in list.iter().enumerate() {
                    self.store_init(base + i as u64 * esz, elem, it)?;
                }
                Ok(())
            }
            (_, Init::Expr(e)) => {
                let v = self.eval(e)?;
                self.store_typed(base, ty, v)
            }
            (_, Init::List(_)) => Err(InterpError::Trap("brace initializer on scalar".into())),
        }
    }

    /// Run `main` (or any entry) with no arguments.
    pub fn run_main(&mut self) -> IResult<Value> {
        self.call("main", &[])
    }

    /// Call a guest function by name.
    pub fn call(&mut self, name: &str, args: &[Value]) -> IResult<Value> {
        let idx = *self
            .machine
            .fn_defs
            .get(name)
            .ok_or_else(|| InterpError::Trap(format!("undefined function `{name}`")))?;
        let fd: &FuncDef = match &self.machine.prog.items[idx] {
            Item::Func(f) => f,
            _ => unreachable!(),
        };
        // SAFETY: see `Interp::frame` field comment — borrows from the Arc'd
        // immutable program.
        let fd: &'static FuncDef = unsafe { std::mem::transmute(fd) };
        self.call_def(fd, args)
    }

    fn call_def(&mut self, fd: &FuncDef, args: &[Value]) -> IResult<Value> {
        if self.depth > 200 {
            return Err(InterpError::Trap("guest stack overflow (recursion too deep)".into()));
        }
        if args.len() != fd.sig.params.len() {
            return Err(InterpError::Trap(format!(
                "call to `{}` with {} args (expected {})",
                fd.sig.name,
                args.len(),
                fd.sig.params.len()
            )));
        }
        let saved_sp = self.sp;
        let saved_base = self.frame_base;
        let saved_frame = self.frame;
        let base = self.sp.next_multiple_of(16);
        if base + fd.frame.size > self.stack_block + STACK_SIZE {
            return Err(InterpError::Trap("guest stack exhausted".into()));
        }
        self.frame_base = base;
        self.sp = base + fd.frame.size;
        self.frame = &fd.frame;
        self.depth += 1;

        for (p, v) in fd.sig.params.iter().zip(args) {
            let slot = &fd.frame.slots[p.slot as usize];
            let a = addr::offset(self.frame_base) + slot.offset;
            let a = addr::make(Space::Host, a);
            self.store_typed(a, &slot.ty, *v)?;
        }

        let mut ret = Value::I32(0);
        match self.exec_block_stmts(&fd.body.stmts)? {
            Flow::Return(v) => ret = v,
            Flow::Normal => {}
            Flow::Break | Flow::Continue => {
                return Err(InterpError::Trap("break/continue escaped function body".into()))
            }
        }
        self.depth -= 1;
        self.sp = saved_sp;
        self.frame_base = saved_base;
        self.frame = saved_frame;
        // Convert the return value to the declared type.
        Ok(convert(ret, &fd.sig.ret))
    }

    fn frame_info(&self) -> &crate::sema::FrameInfo {
        // SAFETY: set in call_def; valid for the duration of the call.
        unsafe { &*self.frame }
    }

    fn slot_addr(&self, slot: u32) -> u64 {
        let s = &self.frame_info().slots[slot as usize];
        addr::make(Space::Host, addr::offset(self.frame_base) + s.offset)
    }

    // ------------------------------------------------------- statements

    fn exec_block_stmts(&mut self, stmts: &[Stmt]) -> IResult<Flow> {
        for s in stmts {
            match self.exec(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &Stmt) -> IResult<Flow> {
        match s {
            Stmt::Block(b) => self.exec_block_stmts(&b.stmts),
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Decl(d) => {
                if let Some(init) = &d.init {
                    let a = self.slot_addr(d.slot);
                    let ty = self.frame_info().slots[d.slot as usize].ty.clone();
                    match (&ty, init) {
                        (Ty::Dim3, Init::Expr(e)) => {
                            let dims = self.eval_dim3(e)?;
                            self.machine.mem.store_u32(addr::offset(a), dims[0])?;
                            self.machine.mem.store_u32(addr::offset(a) + 4, dims[1])?;
                            self.machine.mem.store_u32(addr::offset(a) + 8, dims[2])?;
                        }
                        _ => self.store_init(a, &ty, init)?,
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_s, else_s } => {
                if self.eval(cond)?.is_truthy() {
                    self.exec(then_s)
                } else if let Some(e) = else_s {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.is_truthy() {
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if !self.eval(cond)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.exec(i)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c)?.is_truthy() {
                            break;
                        }
                    }
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(st)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::I32(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Omp(o) => {
                // Directives reaching the interpreter execute their body
                // sequentially (a valid 1-thread OpenMP execution). This is
                // the untranslated / host-fallback path.
                if let Some(b) = &o.body {
                    if o.dir.kind == crate::omp::DirKind::Sections {
                        // All sections run in order.
                        return self.exec(b);
                    }
                    self.exec(b)
                } else {
                    Ok(Flow::Normal)
                }
            }
        }
    }

    // ------------------------------------------------------ expressions

    fn eval(&mut self, e: &Expr) -> IResult<Value> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::I32(*v as i32)),
            ExprKind::FloatLit(v, true) => Ok(Value::F32(*v as f32)),
            ExprKind::FloatLit(v, false) => Ok(Value::F64(*v)),
            ExprKind::StrLit(s) => Ok(Value::Ptr(
                *self
                    .machine
                    .rodata
                    .get(s)
                    .ok_or_else(|| InterpError::Trap("unregistered string literal".into()))?,
            )),
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    let a = self.slot_addr(*slot);
                    let ty = self.frame_info().slots[*slot as usize].ty.clone();
                    if ty.is_array() {
                        Ok(Value::Ptr(a))
                    } else {
                        self.load_typed(a, &ty)
                    }
                }
                Resolved::Global(i) => {
                    let a = self.machine.global_addrs[*i as usize];
                    let ty = self.machine.info.globals[*i as usize].ty.clone();
                    if ty.is_array() {
                        Ok(Value::Ptr(a))
                    } else {
                        self.load_typed(a, &ty)
                    }
                }
                Resolved::Func => {
                    // Function designators evaluate to an opaque id; the
                    // runtime resolves them by name at registration time.
                    Err(InterpError::Trap(format!("function `{name}` used as a value on the host")))
                }
                Resolved::CudaBuiltin(_) => {
                    Err(InterpError::Trap(format!("CUDA builtin `{name}` referenced in host code")))
                }
                Resolved::Unresolved => Err(InterpError::Trap(format!(
                    "unresolved identifier `{name}` (sema not run?)"
                ))),
            },
            ExprKind::Call { callee, args } => self.eval_call(callee, args),
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                let g = self.eval_dim3(grid)?;
                let b = self.eval_dim3(block)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let hooks = self.hooks.clone();
                let ctx = HookCtx { machine: &self.machine, hooks: &self.hooks };
                hooks.kernel_launch(callee, g, b, &vals, &ctx)?;
                Ok(Value::I32(0))
            }
            ExprKind::Dim3 { .. } => {
                let d = self.eval_dim3(e)?;
                // A dim3 rvalue only appears in launch config position;
                // encode x for the rare scalar context.
                Ok(Value::I32(d[0] as i32))
            }
            ExprKind::Member { .. } => {
                let (a, ty) = self.lvalue(e)?;
                self.load_typed(a, &ty)
            }
            ExprKind::Index { .. } => {
                let (a, ty) = self.lvalue(e)?;
                if ty.is_array() {
                    Ok(Value::Ptr(a))
                } else {
                    self.load_typed(a, &ty)
                }
            }
            ExprKind::Unary { op, expr } => match op {
                UnOp::Neg => Ok(match self.eval(expr)? {
                    Value::I32(v) => Value::I32(v.wrapping_neg()),
                    Value::I64(v) => Value::I64(v.wrapping_neg()),
                    Value::F32(v) => Value::F32(-v),
                    Value::F64(v) => Value::F64(-v),
                    Value::Ptr(v) => Value::I64(-(v as i64)),
                }),
                UnOp::Not => Ok(Value::I32(!self.eval(expr)?.is_truthy() as i32)),
                UnOp::BitNot => Ok(match self.eval(expr)? {
                    Value::I64(v) => Value::I64(!v),
                    v => Value::I32(!v.as_i32()),
                }),
                UnOp::Deref => {
                    let (a, ty) = self.lvalue(e)?;
                    if ty.is_array() {
                        Ok(Value::Ptr(a))
                    } else {
                        self.load_typed(a, &ty)
                    }
                }
                UnOp::Addr => {
                    let (a, _) = self.lvalue(expr)?;
                    Ok(Value::Ptr(a))
                }
            },
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            ExprKind::Assign { op, lhs, rhs } => {
                let (a, ty) = self.lvalue(lhs)?;
                let v = match op {
                    None => self.eval(rhs)?,
                    Some(op) => {
                        let cur = self.load_typed(a, &ty)?;
                        let stride = self.ptr_stride(lhs)?;
                        let rval = self.eval(rhs)?;
                        self.apply_binop(*op, cur, stride, rval)?
                    }
                };
                let v = convert(v, &ty);
                self.store_typed(a, &ty, v)?;
                Ok(v)
            }
            ExprKind::IncDec { pre, inc, expr } => {
                let (a, ty) = self.lvalue(expr)?;
                let old = self.load_typed(a, &ty)?;
                let stride = self.ptr_stride(expr)?;
                let delta = Value::I64(if *inc { 1 } else { -1 });
                let new = self.apply_binop(BinOp::Add, old, stride, delta)?;
                let new = convert(new, &ty);
                self.store_typed(a, &ty, new)?;
                Ok(if *pre { new } else { old })
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                if self.eval(cond)?.is_truthy() {
                    self.eval(then_e)
                } else {
                    self.eval(else_e)
                }
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(expr)?;
                Ok(convert(v, ty))
            }
            ExprKind::SizeofTy(ty) => Ok(Value::I64(self.sizeof_rt(ty)? as i64)),
            ExprKind::SizeofExpr(inner) => Ok(Value::I64(self.sizeof_rt(&inner.ty)? as i64)),
            ExprKind::Comma(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
        }
    }

    /// Evaluate a grid/block configuration expression: a `dim3` value, a
    /// `dim3` variable, or a bare integer.
    pub fn eval_dim3(&mut self, e: &Expr) -> IResult<[u32; 3]> {
        match &e.kind {
            ExprKind::Dim3 { x, y, z } => {
                let xv = self.eval(x)?.as_i64().max(1) as u32;
                let yv = match y {
                    Some(y) => self.eval(y)?.as_i64().max(1) as u32,
                    None => 1,
                };
                let zv = match z {
                    Some(z) => self.eval(z)?.as_i64().max(1) as u32,
                    None => 1,
                };
                Ok([xv, yv, zv])
            }
            ExprKind::Ident(_, Resolved::Local(slot))
                if self.frame_info().slots[*slot as usize].ty == Ty::Dim3 =>
            {
                let a = addr::offset(self.slot_addr(*slot));
                Ok([
                    self.machine.mem.load_u32(a)?,
                    self.machine.mem.load_u32(a + 4)?,
                    self.machine.mem.load_u32(a + 8)?,
                ])
            }
            _ => {
                let v = self.eval(e)?.as_i64().max(1) as u32;
                Ok([v, 1, 1])
            }
        }
    }

    /// Stride for pointer arithmetic on `e` (1 for non-pointers).
    fn ptr_stride(&mut self, e: &Expr) -> IResult<u64> {
        match e.ty.decayed() {
            Ty::Ptr(inner) => self.sizeof_rt(&inner),
            _ => Ok(1),
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> IResult<Value> {
        // Short-circuit logicals.
        if op == BinOp::LogAnd {
            return Ok(Value::I32(
                (self.eval(lhs)?.is_truthy() && self.eval(rhs)?.is_truthy()) as i32,
            ));
        }
        if op == BinOp::LogOr {
            return Ok(Value::I32(
                (self.eval(lhs)?.is_truthy() || self.eval(rhs)?.is_truthy()) as i32,
            ));
        }
        let lv = self.eval(lhs)?;
        let rv = self.eval(rhs)?;
        // Pointer arithmetic uses the pointer operand's stride.
        let lt = lhs.ty.decayed();
        let rt = rhs.ty.decayed();
        if lt.is_ptr() && rt.is_ptr() && op == BinOp::Sub {
            let stride = self.ptr_stride(lhs)?.max(1);
            return Ok(Value::I64((lv.as_ptr() as i64 - rv.as_ptr() as i64) / stride as i64));
        }
        let stride = if lt.is_ptr() {
            self.ptr_stride(lhs)?
        } else if rt.is_ptr() {
            self.ptr_stride(rhs)?
        } else {
            1
        };
        self.apply_binop(op, lv, stride, rv)
    }

    fn apply_binop(&self, op: BinOp, lv: Value, lstride: u64, rv: Value) -> IResult<Value> {
        use BinOp::*;
        // Pointer ± integer.
        if let Value::Ptr(p) = lv {
            if matches!(op, Add | Sub) {
                let off = rv.as_i64() * lstride as i64;
                let np = if op == Add { (p as i64 + off) as u64 } else { (p as i64 - off) as u64 };
                return Ok(Value::Ptr(np));
            }
        }
        if let Value::Ptr(p) = rv {
            if op == Add {
                let off = lv.as_i64() * lstride as i64;
                return Ok(Value::Ptr((p as i64 + off) as u64));
            }
        }
        let float = matches!(lv, Value::F32(_) | Value::F64(_))
            || matches!(rv, Value::F32(_) | Value::F64(_));
        let both_f32 = matches!(lv, Value::F32(_) | Value::I32(_) | Value::I64(_))
            && matches!(rv, Value::F32(_) | Value::I32(_) | Value::I64(_))
            && (matches!(lv, Value::F32(_)) || matches!(rv, Value::F32(_)));
        if float {
            let a = lv.as_f64();
            let b = rv.as_f64();
            let r = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Rem => a % b,
                Lt => return Ok(Value::I32((a < b) as i32)),
                Gt => return Ok(Value::I32((a > b) as i32)),
                Le => return Ok(Value::I32((a <= b) as i32)),
                Ge => return Ok(Value::I32((a >= b) as i32)),
                Eq => return Ok(Value::I32((a == b) as i32)),
                Ne => return Ok(Value::I32((a != b) as i32)),
                _ => return Err(InterpError::Trap(format!("bitwise op {op:?} on float"))),
            };
            // Preserve f32 semantics when no f64 operand participates.
            if both_f32 {
                return Ok(Value::F32(lv.as_f32().pseudo_op(op, rv.as_f32())));
            }
            return Ok(Value::F64(r));
        }
        let wide = matches!(lv, Value::I64(_) | Value::Ptr(_))
            || matches!(rv, Value::I64(_) | Value::Ptr(_));
        let a = lv.as_i64();
        let b = rv.as_i64();
        let r: i64 = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return Err(InterpError::Trap("integer division by zero".into()));
                }
                a.wrapping_div(b)
            }
            Rem => {
                if b == 0 {
                    return Err(InterpError::Trap("integer remainder by zero".into()));
                }
                a.wrapping_rem(b)
            }
            Shl => a.wrapping_shl(b as u32),
            Shr => a.wrapping_shr(b as u32),
            BitAnd => a & b,
            BitOr => a | b,
            BitXor => a ^ b,
            Lt => return Ok(Value::I32((a < b) as i32)),
            Gt => return Ok(Value::I32((a > b) as i32)),
            Le => return Ok(Value::I32((a <= b) as i32)),
            Ge => return Ok(Value::I32((a >= b) as i32)),
            Eq => return Ok(Value::I32((a == b) as i32)),
            Ne => return Ok(Value::I32((a != b) as i32)),
            LogAnd | LogOr => unreachable!("handled above"),
        };
        Ok(if wide { Value::I64(r) } else { Value::I32(r as i32) })
    }

    // ---------------------------------------------------------- lvalues

    fn lvalue(&mut self, e: &Expr) -> IResult<(u64, Ty)> {
        match &e.kind {
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    Ok((self.slot_addr(*slot), self.frame_info().slots[*slot as usize].ty.clone()))
                }
                Resolved::Global(i) => Ok((
                    self.machine.global_addrs[*i as usize],
                    self.machine.info.globals[*i as usize].ty.clone(),
                )),
                _ => Err(InterpError::Trap(format!("`{name}` is not an lvalue"))),
            },
            ExprKind::Unary { op: UnOp::Deref, expr } => {
                let p = self.eval(expr)?.as_ptr();
                if p == 0 {
                    return Err(InterpError::Mem(MemError::Null));
                }
                let ty = match expr.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => {
                        return Err(InterpError::Trap(format!("deref of non-pointer {other}")))
                    }
                };
                Ok((p, ty))
            }
            ExprKind::Index { base, index } => {
                let bv = self.eval(base)?;
                let p = bv.as_ptr();
                if p == 0 {
                    return Err(InterpError::Mem(MemError::Null));
                }
                let elem = match base.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => {
                        return Err(InterpError::Trap(format!("index of non-pointer {other}")))
                    }
                };
                let stride = self.sizeof_rt(&elem)?;
                let i = self.eval(index)?.as_i64();
                Ok(((p as i64 + i * stride as i64) as u64, elem))
            }
            ExprKind::Member { base, field } => {
                let (a, ty) = self.lvalue(base)?;
                if ty != Ty::Dim3 {
                    return Err(InterpError::Trap(format!("member access on {ty}")));
                }
                let off = match field.as_str() {
                    "x" => 0,
                    "y" => 4,
                    "z" => 8,
                    _ => return Err(InterpError::Trap(format!("dim3 has no member {field}"))),
                };
                Ok((a + off, Ty::Int))
            }
            ExprKind::Cast { expr, .. } => self.lvalue(expr),
            _ => Err(InterpError::Trap("expression is not an lvalue".into())),
        }
    }

    /// Runtime sizeof, evaluating VLA extents in the current frame.
    fn sizeof_rt(&mut self, ty: &Ty) -> IResult<u64> {
        match ty {
            Ty::Array(elem, len) => {
                let n = match len {
                    ArrayLen::Const(n) => *n,
                    ArrayLen::Expr(e) => {
                        let v = self.eval(e)?.as_i64();
                        if v < 0 {
                            return Err(InterpError::Trap("negative VLA extent".into()));
                        }
                        v as u64
                    }
                    ArrayLen::Unspec => {
                        return Err(InterpError::Trap("sizeof of unsized array".into()))
                    }
                };
                Ok(self.sizeof_rt(elem)? * n)
            }
            other => other
                .size()
                .ok_or_else(|| InterpError::Trap(format!("sizeof of unsized type {other}"))),
        }
    }

    // ------------------------------------------------------ typed memory

    pub fn load_typed(&self, a: u64, ty: &Ty) -> IResult<Value> {
        let mem = self.resolve_space(a)?;
        let off = addr::offset(a);
        Ok(match ty {
            Ty::Char => Value::I32(mem.load_u8(off)? as i8 as i32),
            Ty::Int => Value::I32(mem.load_u32(off)? as i32),
            Ty::Long => Value::I64(mem.load_u64(off)? as i64),
            Ty::Float => Value::F32(f32::from_bits(mem.load_u32(off)?)),
            Ty::Double => Value::F64(f64::from_bits(mem.load_u64(off)?)),
            Ty::Ptr(_) => Value::Ptr(mem.load_u64(off)?),
            other => return Err(InterpError::Trap(format!("cannot load value of type {other}"))),
        })
    }

    pub fn store_typed(&self, a: u64, ty: &Ty, v: Value) -> IResult<()> {
        let mem = self.resolve_space(a)?;
        let off = addr::offset(a);
        match ty {
            Ty::Char => mem.store_u8(off, v.as_i64() as u8)?,
            Ty::Int => mem.store_u32(off, v.as_i32() as u32)?,
            Ty::Long => mem.store_u64(off, v.as_i64() as u64)?,
            Ty::Float => mem.store_u32(off, v.as_f32().to_bits())?,
            Ty::Double => mem.store_u64(off, v.as_f64().to_bits())?,
            Ty::Ptr(_) => mem.store_u64(off, v.as_ptr())?,
            Ty::Dim3 => {
                // Stored elementwise via eval_dim3 paths; scalar store sets x.
                mem.store_u32(off, v.as_i64() as u32)?;
            }
            other => return Err(InterpError::Trap(format!("cannot store value of type {other}"))),
        }
        Ok(())
    }

    fn resolve_space(&self, a: u64) -> IResult<&MemArena> {
        match addr::space(a) {
            Some(Space::Host) => Ok(&self.machine.mem),
            _ => Err(InterpError::Mem(MemError::BadSpace { addr: a })),
        }
    }

    // ----------------------------------------------------------- calls

    fn eval_call(&mut self, callee: &str, args: &[Expr]) -> IResult<Value> {
        // Guest-defined function?
        if self.machine.fn_defs.contains_key(callee) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(a)?);
            }
            return self.call(callee, &vals);
        }
        // printf needs raw format access.
        if callee == "printf" {
            return self.do_printf(args);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a)?);
        }
        if let Some(v) = self.builtin(callee, &vals)? {
            return Ok(v);
        }
        let hooks = self.hooks.clone();
        let ctx = HookCtx { machine: &self.machine, hooks: &self.hooks };
        if let Some(v) = hooks.call(callee, &vals, &ctx)? {
            return Ok(v);
        }
        Err(InterpError::Trap(format!("unknown function `{callee}`")))
    }

    fn do_printf(&mut self, args: &[Expr]) -> IResult<Value> {
        if args.is_empty() {
            return Err(InterpError::Trap("printf needs a format".into()));
        }
        let fmt = match &args[0].kind {
            ExprKind::StrLit(s) => s.clone(),
            _ => {
                let p = self.eval(&args[0])?.as_ptr();
                self.machine.mem.read_cstr(addr::offset(p))?
            }
        };
        let mut fargs = Vec::new();
        for (a, spec_is_str) in args[1..].iter().zip(printf_arg_kinds(&fmt)) {
            let v = self.eval(a)?;
            if spec_is_str {
                let s = self.machine.mem.read_cstr(addr::offset(v.as_ptr()))?;
                fargs.push(FmtArg::Str(s));
            } else {
                fargs.push(FmtArg::Val(v));
            }
        }
        let out = vmcommon::fmt::format(&fmt, &fargs);
        let n = out.len();
        self.machine.emit(&out);
        Ok(Value::I32(n as i32))
    }

    fn builtin(&mut self, name: &str, args: &[Value]) -> IResult<Option<Value>> {
        let a0 = || args.first().copied().unwrap_or(Value::I32(0));
        let a1 = || args.get(1).copied().unwrap_or(Value::I32(0));
        Ok(Some(match name {
            "sqrt" => Value::F64(a0().as_f64().sqrt()),
            "sqrtf" => Value::F32(a0().as_f32().sqrt()),
            "fabs" => Value::F64(a0().as_f64().abs()),
            "fabsf" => Value::F32(a0().as_f32().abs()),
            "pow" => Value::F64(a0().as_f64().powf(a1().as_f64())),
            "powf" => Value::F32(a0().as_f32().powf(a1().as_f32())),
            "exp" => Value::F64(a0().as_f64().exp()),
            "expf" => Value::F32(a0().as_f32().exp()),
            "log" => Value::F64(a0().as_f64().ln()),
            "logf" => Value::F32(a0().as_f32().ln()),
            "sin" => Value::F64(a0().as_f64().sin()),
            "cos" => Value::F64(a0().as_f64().cos()),
            "floor" => Value::F64(a0().as_f64().floor()),
            "ceil" => Value::F64(a0().as_f64().ceil()),
            "fmax" => Value::F64(a0().as_f64().max(a1().as_f64())),
            "fmin" => Value::F64(a0().as_f64().min(a1().as_f64())),
            "fmaxf" => Value::F32(a0().as_f32().max(a1().as_f32())),
            "fminf" => Value::F32(a0().as_f32().min(a1().as_f32())),
            "abs" => Value::I32(a0().as_i32().wrapping_abs()),
            "malloc" => {
                let size = a0().as_i64().max(0) as u64;
                let off = self.machine.heap.lock().alloc(size)?;
                Value::Ptr(addr::make(Space::Host, off))
            }
            "free" => {
                let p = a0().as_ptr();
                if p != 0 {
                    self.machine.heap.lock().free(addr::offset(p))?;
                }
                Value::I32(0)
            }
            "memset" => {
                let p = addr::offset(a0().as_ptr());
                let byte = a1().as_i32() as u8;
                let len = args.get(2).copied().unwrap_or(Value::I32(0)).as_i64() as u64;
                for i in 0..len {
                    self.machine.mem.store_u8(p + i, byte)?;
                }
                a0()
            }
            "exit" => {
                return Err(InterpError::Trap(format!("guest called exit({})", a0().as_i32())))
            }
            _ => return Ok(None),
        }))
    }
}

impl Drop for Interp {
    fn drop(&mut self) {
        let _ = self.machine.heap.lock().free(self.stack_block);
    }
}

/// For each conversion in a printf format: does it consume a string?
fn printf_arg_kinds(fmt: &str) -> Vec<bool> {
    let mut out = Vec::new();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            continue;
        }
        // Skip flags/width/precision/length.
        let mut conv = None;
        for c in chars.by_ref() {
            if c.is_ascii_alphabetic() && !matches!(c, 'l' | 'z' | 'h') {
                conv = Some(c);
                break;
            }
        }
        if let Some(conv) = conv {
            out.push(conv == 's');
        }
    }
    out
}

/// Convert a value to a C type (cast semantics).
pub fn convert(v: Value, ty: &Ty) -> Value {
    match ty {
        Ty::Char => Value::I32(v.as_i64() as i8 as i32),
        Ty::Int => Value::I32(v.as_i32()),
        Ty::Long => Value::I64(v.as_i64()),
        Ty::Float => Value::F32(v.as_f32()),
        Ty::Double => Value::F64(v.as_f64()),
        Ty::Ptr(_) => Value::Ptr(v.as_ptr()),
        _ => v,
    }
}

/// f32 helper so `f32 op f32` keeps single-precision rounding.
trait PseudoOp {
    fn pseudo_op(self, op: BinOp, rhs: Self) -> Self;
}

impl PseudoOp for f32 {
    fn pseudo_op(self, op: BinOp, rhs: f32) -> f32 {
        match op {
            BinOp::Add => self + rhs,
            BinOp::Sub => self - rhs,
            BinOp::Mul => self * rhs,
            BinOp::Div => self / rhs,
            BinOp::Rem => self % rhs,
            _ => f32::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Arc<Machine>, Value) {
        let m = Machine::from_source(src).unwrap();
        let mut i = Interp::new(m.clone(), Arc::new(NoHooks)).unwrap();
        let v = i.run_main().unwrap();
        (m, v)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (_, v) =
            run("int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }");
        assert_eq!(v, Value::I32(55));
    }

    #[test]
    fn while_break_continue() {
        let (_, v) = run(
            "int main() { int s = 0; int i = 0; while (1) { i++; if (i > 10) break; if (i % 2) continue; s += i; } return s; }",
        );
        assert_eq!(v, Value::I32(30));
    }

    #[test]
    fn functions_and_recursion() {
        let (_, v) = run("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(10); }");
        assert_eq!(v, Value::I32(55));
    }

    #[test]
    fn arrays_pointers_addressof() {
        let (_, v) = run(r#"
void twice(int *p) { *p = *p * 2; }
int main() {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i + 1;
    twice(&a[2]);
    int *p = a;
    return p[0] + p[1] + p[2] + p[3];
}
"#);
        assert_eq!(v, Value::I32(1 + 2 + 6 + 4));
    }

    #[test]
    fn two_d_arrays() {
        let (_, v) = run(r#"
int main() {
    int m[3][4];
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    return m[2][3];
}
"#);
        assert_eq!(v, Value::I32(23));
    }

    #[test]
    fn vla_param_indexing() {
        let (_, v) = run(r#"
int get(int n, int a[n][n], int i, int j) { return a[i][j]; }
int main() {
    int m[3][3];
    m[1][2] = 42;
    return get(3, m, 1, 2);
}
"#);
        assert_eq!(v, Value::I32(42));
    }

    #[test]
    fn float_precision_f32() {
        // f32 arithmetic must round to single precision.
        let (_, v) =
            run("int main() { float a = 16777216.0f; float b = a + 1.0f; return b == a; }");
        assert_eq!(v, Value::I32(1));
    }

    #[test]
    fn printf_capture() {
        let (m, _) = run(r#"int main() { printf("x=%d y=%5.2f %s\n", 3, 1.5, "hi"); return 0; }"#);
        assert_eq!(m.take_output(), "x=3 y= 1.50 hi\n");
    }

    #[test]
    fn malloc_free() {
        let (_, v) = run(r#"
int main() {
    float *p = (float *) malloc(16 * sizeof(float));
    for (int i = 0; i < 16; i++) p[i] = (float) i;
    float s = 0.0f;
    for (int i = 0; i < 16; i++) s += p[i];
    free(p);
    return (int) s;
}
"#);
        assert_eq!(v, Value::I32(120));
    }

    #[test]
    fn globals_with_initializers() {
        let (_, v) = run("int g = 7; int arr[3] = {1, 2, 3}; int main() { return g + arr[1]; }");
        assert_eq!(v, Value::I32(9));
    }

    #[test]
    fn ternary_and_logical() {
        let (_, v) = run(
            "int main() { int a = 5; int b = 3; return (a > b ? a : b) + (a && b) + (0 || 0); }",
        );
        assert_eq!(v, Value::I32(6));
    }

    #[test]
    fn pointer_arithmetic_strided() {
        let (_, v) = run(r#"
int main() {
    double d[4];
    d[0] = 1.5; d[1] = 2.5; d[2] = 3.5; d[3] = 4.5;
    double *p = d + 1;
    p++;
    return (int)(*p * 2.0);
}
"#);
        assert_eq!(v, Value::I32(7));
    }

    #[test]
    fn omp_pragmas_ignored_sequentially() {
        // Directly executing an OpenMP program = 1-thread semantics.
        let (_, v) = run(r#"
int main() {
    int s = 0;
    #pragma omp parallel for reduction(+: s)
    for (int i = 0; i < 10; i++)
        s += i;
    return s;
}
"#);
        assert_eq!(v, Value::I32(45));
    }

    #[test]
    fn null_deref_traps() {
        let m = Machine::from_source("int main() { int *p = (int*)0; return *p; }").unwrap();
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        assert!(i.run_main().is_err());
    }

    #[test]
    fn division_by_zero_traps() {
        let m = Machine::from_source("int main() { int z = 0; return 4 / z; }").unwrap();
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        assert!(i.run_main().is_err());
    }

    #[test]
    fn hooks_receive_unknown_calls() {
        struct H;
        impl Hooks for H {
            fn call(
                &self,
                name: &str,
                args: &[Value],
                _ctx: &HookCtx<'_>,
            ) -> IResult<Option<Value>> {
                if name == "magic" {
                    Ok(Some(Value::I32(args[0].as_i32() * 10)))
                } else {
                    Ok(None)
                }
            }
        }
        let m = Machine::from_source("int main() { return magic(4); }").unwrap();
        let mut i = Interp::new(m, Arc::new(H)).unwrap();
        assert_eq!(i.run_main().unwrap(), Value::I32(40));
    }

    #[test]
    fn hook_can_reenter_guest() {
        struct H;
        impl Hooks for H {
            fn call(
                &self,
                name: &str,
                _args: &[Value],
                ctx: &HookCtx<'_>,
            ) -> IResult<Option<Value>> {
                if name == "call_twice" {
                    let a = ctx.call_guest("work", &[Value::I32(1)])?;
                    let b = ctx.call_guest("work", &[Value::I32(2)])?;
                    Ok(Some(Value::I32(a.as_i32() + b.as_i32())))
                } else {
                    Ok(None)
                }
            }
        }
        let m = Machine::from_source(
            "int work(int x) { return x * 100; } int main() { return call_twice(); }",
        )
        .unwrap();
        let mut i = Interp::new(m, Arc::new(H)).unwrap();
        assert_eq!(i.run_main().unwrap(), Value::I32(300));
    }

    #[test]
    fn dim3_variables() {
        let (_, v) = run("int main() { dim3 b(32, 8); return b.x + b.y + b.z; }");
        assert_eq!(v, Value::I32(41));
    }

    #[test]
    fn concurrent_interps_share_memory() {
        let m = Machine::from_source(
            "int counter; void bump() { counter = counter + 1; } int main() { return 0; }",
        )
        .unwrap();
        // Serialize bumps via per-thread interps (atomicity is not the point;
        // each thread writes disjoint slots here).
        let g = m.global_addr("counter").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
                    i.call("bump", &[]).unwrap();
                });
            }
        });
        // At least one bump landed; memory is shared and valid.
        let v = m.mem.load_u32(vmcommon::addr::offset(g)).unwrap();
        assert!((1..=4).contains(&v));
    }

    #[test]
    fn sizeof_expressions() {
        let (_, v) = run(
            "int main() { float x[10]; return (int)(sizeof(x) + sizeof(long) + sizeof(float*)); }",
        );
        assert_eq!(v, Value::I32(40 + 8 + 8));
    }
}
