//! Guest resource governor: the typed limit-error taxonomy and the
//! per-[`Machine`](crate::interp::Machine) budget state shared by both
//! execution engines.
//!
//! Every limit here exists so an untrusted guest program cannot wedge the
//! host process: a `while(1);` burns fuel, a malloc loop hits the memory
//! ceiling, runaway recursion hits the stack limit, and a job that is slow
//! for any other reason hits the wall-clock deadline. All four surface as
//! [`GuestLimitError`] — a typed, recoverable error, never a panic.
//!
//! Parity contract: the VM and the tree-walker must trap **bit-identically**
//! on stack and memory limits, so every message below mentions only
//! *configured* values (budget, ceiling, depth), never consumed counts —
//! the engines execute different step granularities and their counters
//! would diverge. Fuel and deadline are checked at engine-specific
//! boundaries, so differential tests treat those traps as "both terminated"
//! rather than comparing outputs.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Instructions (VM ops / walker steps) between fuel + deadline checks.
/// Small enough that a hostile loop is caught within microseconds, large
/// enough that the atomic traffic is invisible next to dispatch itself.
pub const FUEL_CHECK_INTERVAL: u64 = 1024;

/// Sentinel meaning "no limit configured" for the u64-valued budgets.
const UNLIMITED: u64 = u64::MAX;

/// A guest program exceeded a configured resource limit. Typed and
/// recoverable: the runner returns it from the job, salvages device state,
/// and leaves the recovery breaker untouched — guest misbehavior must
/// never latch a healthy device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuestLimitError {
    /// The per-job instruction budget ran out (`OMPI_GUEST_FUEL`).
    FuelExhausted { budget: u64 },
    /// Guest heap + stack-frame bytes would exceed the per-job ceiling
    /// (`OMPI_GUEST_MEM`).
    MemExceeded { limit: u64 },
    /// Call depth exceeded the recursion limit (`OMPI_GUEST_STACK`).
    StackOverflow { limit: u32 },
    /// The wall-clock job deadline passed (`OMPI_JOB_TIMEOUT_MS`).
    DeadlineExceeded { ms: u64 },
}

impl GuestLimitError {
    /// Metric suffix: the violation shows up as `guest_limit.<kind>`.
    pub fn kind(&self) -> &'static str {
        match self {
            GuestLimitError::FuelExhausted { .. } => "fuel",
            GuestLimitError::MemExceeded { .. } => "mem",
            GuestLimitError::StackOverflow { .. } => "stack",
            GuestLimitError::DeadlineExceeded { .. } => "deadline",
        }
    }
}

impl fmt::Display for GuestLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestLimitError::FuelExhausted { budget } => {
                write!(f, "guest fuel exhausted (budget {budget} instructions)")
            }
            GuestLimitError::MemExceeded { limit } => {
                write!(f, "guest memory limit exceeded ({limit}-byte ceiling)")
            }
            GuestLimitError::StackOverflow { limit } => {
                write!(f, "guest stack overflow (recursion deeper than {limit} frames)")
            }
            GuestLimitError::DeadlineExceeded { ms } => {
                write!(f, "guest job deadline exceeded ({ms} ms)")
            }
        }
    }
}

impl std::error::Error for GuestLimitError {}

/// Per-machine governor state. Lives on the shared `Machine` so both
/// engines — and the runtime builtins (`malloc`/`free`) — charge against
/// the same pools. All fields are atomics: parallel-region worker threads
/// share the machine.
pub struct GuestLimits {
    /// Remaining fuel; [`UNLIMITED`] = no budget configured.
    fuel_left: AtomicU64,
    /// Configured budget, kept for the trap message.
    fuel_budget: AtomicU64,
    /// Heap + frame byte ceiling; [`UNLIMITED`] = no ceiling.
    mem_limit: AtomicU64,
    /// Live guest heap bytes (malloc minus free). Tracked even with no
    /// ceiling so a limit set later starts from an honest figure.
    heap_used: AtomicU64,
    /// Maximum call depth (frames).
    stack_limit: AtomicU32,
    /// Job deadline as nanoseconds since `epoch`; 0 = no deadline armed.
    deadline_ns: AtomicU64,
    /// Configured deadline duration in ms, kept for the trap message.
    deadline_ms: AtomicU64,
    epoch: Instant,
}

/// The historical hard-coded recursion trap depth, now the default.
pub const DEFAULT_STACK_LIMIT: u32 = 200;

impl Default for GuestLimits {
    fn default() -> GuestLimits {
        GuestLimits {
            fuel_left: AtomicU64::new(UNLIMITED),
            fuel_budget: AtomicU64::new(UNLIMITED),
            mem_limit: AtomicU64::new(UNLIMITED),
            heap_used: AtomicU64::new(0),
            stack_limit: AtomicU32::new(DEFAULT_STACK_LIMIT),
            deadline_ns: AtomicU64::new(0),
            deadline_ms: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

impl GuestLimits {
    /// Limits from the environment: `OMPI_GUEST_FUEL` (instructions),
    /// `OMPI_GUEST_MEM` (bytes, size suffixes allowed), `OMPI_GUEST_STACK`
    /// (frames). Malformed values are a loud, typed error — a mistyped
    /// limit must not silently mean "unlimited".
    pub fn from_env() -> Result<GuestLimits, String> {
        let l = GuestLimits::default();
        if let Ok(v) = std::env::var("OMPI_GUEST_FUEL") {
            let n = v
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("OMPI_GUEST_FUEL: `{v}` is not an instruction count"))?;
            l.set_fuel(Some(n));
        }
        if let Ok(v) = std::env::var("OMPI_GUEST_MEM") {
            let n = vmcommon::fmt::parse_size(&v).map_err(|e| format!("OMPI_GUEST_MEM: {e}"))?;
            l.set_mem_limit(Some(n));
        }
        if let Ok(v) = std::env::var("OMPI_GUEST_STACK") {
            let n = v
                .trim()
                .parse::<u32>()
                .map_err(|_| format!("OMPI_GUEST_STACK: `{v}` is not a frame count"))?;
            l.set_stack_limit(n);
        }
        Ok(l)
    }

    // ------------------------------------------------------------- fuel

    /// Install (or clear) the instruction budget, refilling the pool.
    pub fn set_fuel(&self, budget: Option<u64>) {
        let b = budget.unwrap_or(UNLIMITED);
        self.fuel_budget.store(b, Ordering::Relaxed);
        self.fuel_left.store(b, Ordering::Relaxed);
    }

    /// The configured budget, if any.
    pub fn fuel_budget(&self) -> Option<u64> {
        match self.fuel_budget.load(Ordering::Relaxed) {
            UNLIMITED => None,
            b => Some(b),
        }
    }

    /// Bill `n` retired instructions against the pool; errors when the
    /// budget is exhausted.
    pub fn consume_fuel(&self, n: u64) -> Result<(), GuestLimitError> {
        if self.fuel_left.load(Ordering::Relaxed) == UNLIMITED {
            return Ok(());
        }
        let prev = self
            .fuel_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_sub(n)))
            .unwrap_or(0);
        if prev < n {
            return Err(GuestLimitError::FuelExhausted {
                budget: self.fuel_budget.load(Ordering::Relaxed),
            });
        }
        Ok(())
    }

    /// Bill without trapping — used when flushing a partial interval at
    /// the end of a top-level call. A drained pool then traps at the first
    /// checkpoint of the next call.
    pub fn drain_fuel(&self, n: u64) {
        if self.fuel_left.load(Ordering::Relaxed) == UNLIMITED {
            return;
        }
        let _ = self
            .fuel_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_sub(n)));
    }

    /// Fuel + deadline check, the per-interval engine checkpoint.
    pub fn checkpoint(&self, n: u64) -> Result<(), GuestLimitError> {
        self.consume_fuel(n)?;
        self.check_deadline()
    }

    // ----------------------------------------------------------- memory

    /// Install (or clear) the heap + frame byte ceiling.
    pub fn set_mem_limit(&self, limit: Option<u64>) {
        self.mem_limit.store(limit.unwrap_or(UNLIMITED), Ordering::Relaxed);
    }

    /// The configured ceiling, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        match self.mem_limit.load(Ordering::Relaxed) {
            UNLIMITED => None,
            l => Some(l),
        }
    }

    /// Live guest heap bytes (malloc minus free).
    pub fn heap_used(&self) -> u64 {
        self.heap_used.load(Ordering::Relaxed)
    }

    /// Charge a heap allocation against the ceiling; call *before* the
    /// allocator so a rejected request never touches the arena.
    pub fn charge_heap(&self, bytes: u64) -> Result<(), GuestLimitError> {
        let limit = self.mem_limit.load(Ordering::Relaxed);
        let used = self.heap_used.fetch_add(bytes, Ordering::Relaxed);
        if limit != UNLIMITED && used.saturating_add(bytes) > limit {
            self.heap_used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(GuestLimitError::MemExceeded { limit });
        }
        Ok(())
    }

    /// Grow the charge without a ceiling check — for allocator rounding
    /// discovered after a successful `charge_heap`, so `credit_heap` of the
    /// actual block size stays symmetric.
    pub fn charge_heap_unchecked(&self, bytes: u64) {
        self.heap_used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Return freed heap bytes to the pool.
    pub fn credit_heap(&self, bytes: u64) {
        let _ = self.heap_used.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }

    /// Frame-entry check: would `stack_used` bytes of call frames plus the
    /// live heap exceed the ceiling? Both engines call this with the same
    /// figure (frame layouts are shared), keeping the trap bit-identical.
    pub fn check_footprint(&self, stack_used: u64) -> Result<(), GuestLimitError> {
        let limit = self.mem_limit.load(Ordering::Relaxed);
        if limit != UNLIMITED
            && self.heap_used.load(Ordering::Relaxed).saturating_add(stack_used) > limit
        {
            return Err(GuestLimitError::MemExceeded { limit });
        }
        Ok(())
    }

    // ------------------------------------------------------------ stack

    /// Maximum call depth (frames).
    pub fn stack_limit(&self) -> u32 {
        self.stack_limit.load(Ordering::Relaxed)
    }

    pub fn set_stack_limit(&self, frames: u32) {
        self.stack_limit.store(frames, Ordering::Relaxed);
    }

    // --------------------------------------------------------- deadline

    /// Arm (or clear) the wall-clock deadline, `d` from now. Checked at
    /// the same fuel-check boundary as the instruction budget.
    pub fn arm_deadline(&self, d: Option<Duration>) {
        match d {
            Some(d) => {
                let at = self.epoch.elapsed().saturating_add(d);
                self.deadline_ms.store(d.as_millis() as u64, Ordering::Relaxed);
                // 0 means "none"; a zero-duration deadline still arms.
                self.deadline_ns.store((at.as_nanos() as u64).max(1), Ordering::Relaxed);
            }
            None => {
                self.deadline_ns.store(0, Ordering::Relaxed);
                self.deadline_ms.store(0, Ordering::Relaxed);
            }
        }
    }

    pub fn check_deadline(&self) -> Result<(), GuestLimitError> {
        let at = self.deadline_ns.load(Ordering::Relaxed);
        if at != 0 && self.epoch.elapsed().as_nanos() as u64 >= at {
            return Err(GuestLimitError::DeadlineExceeded {
                ms: self.deadline_ms.load(Ordering::Relaxed),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_pool_traps_exactly_at_budget() {
        let l = GuestLimits::default();
        l.set_fuel(Some(2048));
        assert!(l.consume_fuel(1024).is_ok());
        assert!(l.consume_fuel(1024).is_ok()); // pool hits exactly zero
        let err = l.consume_fuel(1024).unwrap_err();
        assert_eq!(err, GuestLimitError::FuelExhausted { budget: 2048 });
        assert_eq!(err.kind(), "fuel");
        // Refilling restores the pool.
        l.set_fuel(Some(10));
        assert!(l.consume_fuel(5).is_ok());
    }

    #[test]
    fn unlimited_fuel_never_traps() {
        let l = GuestLimits::default();
        for _ in 0..100 {
            assert!(l.consume_fuel(u64::MAX / 2).is_ok());
        }
    }

    #[test]
    fn heap_charges_and_credits_balance() {
        let l = GuestLimits::default();
        l.set_mem_limit(Some(100));
        assert!(l.charge_heap(60).is_ok());
        assert_eq!(l.charge_heap(50), Err(GuestLimitError::MemExceeded { limit: 100 }));
        // The failed charge must not leak into the accounting.
        assert_eq!(l.heap_used(), 60);
        l.credit_heap(60);
        assert!(l.charge_heap(100).is_ok());
    }

    #[test]
    fn footprint_combines_stack_and_heap() {
        let l = GuestLimits::default();
        l.set_mem_limit(Some(1000));
        l.charge_heap(600).unwrap();
        assert!(l.check_footprint(400).is_ok());
        assert_eq!(l.check_footprint(401), Err(GuestLimitError::MemExceeded { limit: 1000 }));
    }

    #[test]
    fn deadline_zero_duration_trips_immediately() {
        let l = GuestLimits::default();
        assert!(l.check_deadline().is_ok());
        l.arm_deadline(Some(Duration::from_millis(0)));
        assert_eq!(l.check_deadline(), Err(GuestLimitError::DeadlineExceeded { ms: 0 }));
        l.arm_deadline(None);
        assert!(l.check_deadline().is_ok());
    }

    #[test]
    fn messages_mention_only_configured_values() {
        // The parity contract: no consumed counts in the text.
        assert_eq!(
            GuestLimitError::FuelExhausted { budget: 9 }.to_string(),
            "guest fuel exhausted (budget 9 instructions)"
        );
        assert_eq!(
            GuestLimitError::MemExceeded { limit: 4096 }.to_string(),
            "guest memory limit exceeded (4096-byte ceiling)"
        );
        assert_eq!(
            GuestLimitError::StackOverflow { limit: 200 }.to_string(),
            "guest stack overflow (recursion deeper than 200 frames)"
        );
        assert_eq!(
            GuestLimitError::DeadlineExceeded { ms: 50 }.to_string(),
            "guest job deadline exceeded (50 ms)"
        );
    }
}
