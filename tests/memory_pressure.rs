//! Memory-pressure golden tests: every tier-1 app, run with the device
//! arena capped below its working set, must produce results bit-identical
//! to the uncapped run (relative-error tolerance only for apps with float
//! reductions, whose device-side atomics reorder the accumulation), and
//! the observability layer must record which ladder rung — evict, stage,
//! tile, or host fallback — resolved each pressure event.

use gpusim::ExecMode;
use ompi_nano::unibench::{
    all_apps, app_by_name, build_variant_cfg, max_rel_err, run_once, runner_config, App, Variant,
};

/// Run one app at size `n` through the OMPi/cudadev variant with the given
/// device-arena size; returns the outputs and the device-0 metric counters.
fn run_with_arena(app: &App, n: u32, device_mem: Option<usize>) -> (Vec<f32>, Vec<(String, u64)>) {
    let tag = device_mem.map_or("uncapped".to_string(), |m| m.to_string());
    let work = std::env::temp_dir().join(format!(
        "ompinano-mempress-{}-{}-{tag}",
        std::process::id(),
        app.name
    ));
    let obs = obs::Obs::enabled();
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);
    cfg.obs = Some(obs.clone());
    if let Some(m) = device_mem {
        cfg.device_mem = Some(m);
    }
    let built = build_variant_cfg(app, Variant::OmpiCudadev, &work, &cfg);
    let out = run_once(app, &built.runner, n)
        .unwrap_or_else(|e| panic!("{} (arena {tag}) failed at n={n}: {e}", app.name));
    (out, obs.metrics.counters_for(0))
}

fn pressure_rungs(counters: &[(String, u64)]) -> Vec<(String, u64)> {
    counters
        .iter()
        .filter(|(k, _)| k.starts_with("pressure."))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// The acceptance-criteria sweep: each app runs at its functional test size
/// with the arena capped to half its footprint. The cap is below the mapped
/// working set, so at least one pressure event must fire, and the governor
/// must degrade (through whatever rung applies) without changing results.
#[test]
fn capped_arena_is_bit_identical_for_every_app() {
    for app in all_apps() {
        let n = app.test_size;
        let cap = ((app.footprint)(n) / 2) as usize;
        let (baseline, base_counters) = run_with_arena(&app, n, None);
        let (capped, counters) = run_with_arena(&app, n, Some(cap));

        assert!(
            pressure_rungs(&base_counters).is_empty(),
            "{}: uncapped run must not hit memory pressure, got {base_counters:?}",
            app.name
        );
        let rungs = pressure_rungs(&counters);
        assert!(
            !rungs.is_empty(),
            "{}: arena capped to {cap} bytes must trigger at least one pressure \
             event, counters: {counters:?}",
            app.name
        );

        assert_eq!(baseline.len(), capped.len(), "{}: output length", app.name);
        if app.name == "gramschmidt" {
            // Float reductions are device-side atomics: accumulation order
            // differs between the device and the host-fallback rung.
            let err = max_rel_err(&baseline, &capped);
            assert!(
                err <= app.tolerance,
                "{}: capped run drifted {err:.2e} > {:.1e} (rungs {rungs:?})",
                app.name,
                app.tolerance
            );
        } else {
            for (i, (a, b)) in baseline.iter().zip(&capped).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{}: output[{i}] differs under pressure: {a} vs {b} (rungs {rungs:?})",
                    app.name
                );
            }
        }
    }
}

/// At n=1024 atax's first kernel maps a 4 MiB matrix with a sliceable
/// row-major access (`a[i*n+j]`, distribute variable `i`), so a 2 MiB arena
/// must be resolved by the **tile** rung — not by falling all the way back
/// to the host — and the results must still be bit-identical. The second
/// kernel walks the matrix by columns (distribute variable `j`), which is
/// not sliceable, so the same run must also record an annotated fallback.
#[test]
fn atax_large_resolves_via_tiling() {
    let app = app_by_name("atax").expect("atax");
    let n = 1024;
    let (baseline, _) = run_with_arena(&app, n, None);
    let (capped, counters) = run_with_arena(&app, n, Some(2 << 20));

    let get = |k: &str| counters.iter().find(|(name, _)| name == k).map_or(0, |(_, v)| *v);
    assert!(get("pressure.tile") >= 1, "tile rung must fire, counters: {counters:?}");
    assert!(get("tile_launches") >= 2, "the tiled kernel must split into >1 tile");
    assert!(
        get("pressure.fallback") >= 1,
        "the column-walk kernel is unsliceable and must fall back"
    );

    for (i, (a, b)) in baseline.iter().zip(&capped).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "output[{i}] differs: {a} vs {b}");
    }
}

/// The trace must record the rung that resolved each pressure event: every
/// `pressure` instant carries a `rung` argument from the ladder vocabulary.
#[test]
fn trace_names_the_resolving_rung() {
    let app = app_by_name("atax").expect("atax");
    let n = 1024;
    let work = std::env::temp_dir().join(format!("ompinano-mempress-{}-trace", std::process::id()));
    let obs = obs::Obs::enabled();
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);
    cfg.obs = Some(obs.clone());
    cfg.device_mem = Some(2 << 20);
    let built = build_variant_cfg(&app, Variant::OmpiCudadev, &work, &cfg);
    run_once(&app, &built.runner, n).expect("capped atax run");

    let path =
        std::env::temp_dir().join(format!("ompinano-mempress-trace-{}.json", std::process::id()));
    built.runner.write_trace(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = obs::json::parse(&text).expect("trace must be valid JSON");
    let arr = parsed.as_array().expect("Chrome trace array form");

    // The `pressure` category also carries `map pending` deferral markers;
    // only the `pressure` instants themselves resolve through a rung.
    let rungs: Vec<String> = arr
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("pressure")
                && e.get("name").and_then(|n| n.as_str()) == Some("pressure")
        })
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("rung"))
                .and_then(|r| r.as_str())
                .expect("every pressure event names its rung")
                .to_string()
        })
        .collect();
    assert!(!rungs.is_empty(), "capped run must emit pressure events");
    for r in &rungs {
        assert!(["evict", "stage", "tile", "fallback"].contains(&r.as_str()), "unknown rung `{r}`");
    }
    assert!(rungs.iter().any(|r| r == "tile"), "tile rung must appear, got {rungs:?}");
}
