//! Loop-scheduling math shared by the host OpenMP runtime and the cudadev
//! device library (§3.1, §4.2.2 of the paper: `get_distribute_chunk`,
//! `get_static_chunk`, `get_dynamic_chunk`, `get_guided_chunk`).
//!
//! All functions work on a normalized iteration space `0..total` and return
//! half-open `[start, end)` ranges.

use std::sync::atomic::{AtomicU64, Ordering};

/// Blocked static partition: thread `tid` of `nthr` gets one contiguous
/// chunk; the first `total % nthr` threads get one extra iteration.
/// This is the distribution `distribute` and unchunked `schedule(static)`
/// use.
pub fn static_block(total: u64, nthr: u64, tid: u64) -> (u64, u64) {
    debug_assert!(nthr > 0);
    if tid >= nthr {
        return (0, 0);
    }
    let base = total / nthr;
    let extra = total % nthr;
    let start = tid * base + tid.min(extra);
    let len = base + if tid < extra { 1 } else { 0 };
    (start, start + len)
}

/// Chunked static (cyclic) schedule: `schedule(static, chunk)`. Returns the
/// `k`-th chunk assigned to `tid`, or `None` when exhausted.
pub fn static_cyclic(total: u64, nthr: u64, tid: u64, chunk: u64, k: u64) -> Option<(u64, u64)> {
    debug_assert!(nthr > 0 && chunk > 0);
    let start = (tid + k * nthr) * chunk;
    if start >= total {
        return None;
    }
    Some((start, (start + chunk).min(total)))
}

/// Shared state for `schedule(dynamic, chunk)`: threads grab chunks
/// first-come-first-served.
#[derive(Debug, Default)]
pub struct DynamicState {
    next: AtomicU64,
}

impl DynamicState {
    pub fn new() -> DynamicState {
        DynamicState { next: AtomicU64::new(0) }
    }

    /// Claim the next chunk; `None` when the space is exhausted. Once
    /// exhausted the counter stops advancing, so a worker spinning on an
    /// empty schedule cannot creep `next` toward u64 wraparound.
    pub fn next_chunk(&self, total: u64, chunk: u64) -> Option<(u64, u64)> {
        let chunk = chunk.max(1);
        loop {
            let start = self.next.load(Ordering::Acquire);
            if start >= total {
                return None;
            }
            let end = start.saturating_add(chunk).min(total);
            if self
                .next
                .compare_exchange_weak(start, end, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((start, end));
            }
        }
    }
}

/// Shared state for `schedule(guided, min_chunk)`: chunk size is
/// `remaining / nthr`, decreasing exponentially, never below `min_chunk`.
#[derive(Debug, Default)]
pub struct GuidedState {
    taken: AtomicU64,
}

impl GuidedState {
    pub fn new() -> GuidedState {
        GuidedState { taken: AtomicU64::new(0) }
    }

    /// Claim the next guided chunk.
    pub fn next_chunk(&self, total: u64, nthr: u64, min_chunk: u64) -> Option<(u64, u64)> {
        let min_chunk = min_chunk.max(1);
        let nthr = nthr.max(1);
        loop {
            let taken = self.taken.load(Ordering::Acquire);
            if taken >= total {
                return None;
            }
            let remaining = total - taken;
            let size = (remaining.div_ceil(nthr)).max(min_chunk).min(remaining);
            if self
                .taken
                .compare_exchange_weak(taken, taken + size, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((taken, taken + size));
            }
        }
    }
}

/// Number of iterations of a canonical loop `for (i = lb; i <cmp> ub; i += step)`.
pub fn trip_count(lb: i64, ub: i64, step: i64, inclusive: bool) -> u64 {
    if step == 0 {
        return 0;
    }
    // Widen to i128: `ub + 1` overflows i64 for inclusive loops ending at
    // i64::MAX, and `-step` overflows for step == i64::MIN.
    let inc = inclusive as i128;
    let (lo, hi, st): (i128, i128, i128) = if step > 0 {
        (lb as i128, ub as i128 + inc, step as i128)
    } else {
        (ub as i128 - inc, lb as i128, -(step as i128))
    };
    if lo >= hi {
        0
    } else {
        ((hi - lo) as u128).div_ceil(st as u128).min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;

    #[test]
    fn static_block_partitions_exactly() {
        let (s, e) = static_block(10, 3, 0);
        assert_eq!((s, e), (0, 4));
        assert_eq!(static_block(10, 3, 1), (4, 7));
        assert_eq!(static_block(10, 3, 2), (7, 10));
        // More threads than work.
        assert_eq!(static_block(2, 4, 3), (2, 2));
    }

    #[test]
    fn trip_counts() {
        assert_eq!(trip_count(0, 10, 1, false), 10);
        assert_eq!(trip_count(0, 10, 3, false), 4);
        assert_eq!(trip_count(0, 10, 1, true), 11);
        assert_eq!(trip_count(10, 0, -1, false), 10);
        assert_eq!(trip_count(10, 0, -2, true), 6);
        assert_eq!(trip_count(5, 5, 1, false), 0);
    }

    /// Boundary inputs that used to overflow i64 arithmetic.
    #[test]
    fn trip_count_boundaries() {
        // `ub + 1` would overflow for an inclusive loop ending at i64::MAX.
        assert_eq!(trip_count(i64::MAX - 5, i64::MAX, 1, true), 6);
        assert_eq!(trip_count(i64::MAX - 9, i64::MAX, 3, true), 4);
        // `-step` would overflow for step == i64::MIN.
        assert_eq!(trip_count(10, 0, i64::MIN, false), 1);
        assert_eq!(trip_count(i64::MAX, i64::MIN, i64::MIN, true), 2);
        // Span wider than i64; the inclusive case exceeds u64 and is capped.
        assert_eq!(trip_count(i64::MIN, i64::MAX, 1, false), u64::MAX);
        assert_eq!(trip_count(i64::MIN, i64::MAX, 1, true), u64::MAX);
        // Empty/degenerate spaces are still empty.
        assert_eq!(trip_count(i64::MAX, i64::MAX, 1, false), 0);
        assert_eq!(trip_count(i64::MIN, i64::MIN, -1, false), 0);
    }

    /// Once the space is exhausted, polling must not advance the counter
    /// (regression: unconditional fetch_add crept toward u64 wraparound).
    #[test]
    fn dynamic_exhausted_does_not_advance() {
        let st = DynamicState::new();
        while st.next_chunk(100, 7).is_some() {}
        let settled = st.next.load(Ordering::Acquire);
        assert_eq!(settled, 100, "end of last chunk is clamped to total");
        for _ in 0..10_000 {
            assert!(st.next_chunk(100, 7).is_none());
        }
        assert_eq!(st.next.load(Ordering::Acquire), settled, "exhausted polls must not advance");
        // Huge chunks saturate instead of wrapping.
        let st = DynamicState::new();
        assert_eq!(st.next_chunk(u64::MAX, u64::MAX), Some((0, u64::MAX)));
        assert!(st.next_chunk(u64::MAX, u64::MAX).is_none());
    }

    #[test]
    fn dynamic_chunks_cover_space() {
        let st = DynamicState::new();
        let mut seen = [false; 100];
        while let Some((s, e)) = st.next_chunk(100, 7) {
            for i in s..e {
                assert!(!seen[i as usize], "iteration {i} assigned twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn guided_chunks_decrease() {
        let st = GuidedState::new();
        let mut sizes = Vec::new();
        while let Some((s, e)) = st.next_chunk(1000, 4, 1) {
            sizes.push(e - s);
        }
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sizes must be non-increasing: {sizes:?}");
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
    }

    /// Static blocking covers 0..total exactly once across threads.
    #[test]
    fn static_block_exact_cover() {
        for seed in 0..256u64 {
            let mut rng = XorShift64::new(seed);
            let total = rng.below(5000);
            let nthr = rng.range_u64(1, 17);
            let mut covered = 0u64;
            let mut prev_end = 0u64;
            for tid in 0..nthr {
                let (s, e) = static_block(total, nthr, tid);
                assert_eq!(s, prev_end, "chunks must be contiguous");
                assert!(e >= s);
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, total);
            assert_eq!(prev_end, total);
        }
    }

    /// Cyclic static covers the space exactly once across threads/rounds.
    #[test]
    fn static_cyclic_exact_cover() {
        for seed in 0..128u64 {
            let mut rng = XorShift64::new(seed);
            let total = rng.below(2000);
            let nthr = rng.range_u64(1, 9);
            let chunk = rng.range_u64(1, 40);
            let mut seen = vec![false; total as usize];
            for tid in 0..nthr {
                for k in 0.. {
                    match static_cyclic(total, nthr, tid, chunk, k) {
                        None => break,
                        Some((s, e)) => {
                            for i in s..e {
                                assert!(!seen[i as usize], "iteration {i} twice");
                                seen[i as usize] = true;
                            }
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    /// Dynamic scheduling covers the space exactly once even under
    /// concurrent claimants.
    #[test]
    fn dynamic_concurrent_cover() {
        for seed in 0..24u64 {
            let mut rng = XorShift64::new(seed);
            let total = rng.range_u64(1, 3000);
            let chunk = rng.range_u64(1, 50);
            let nthr = rng.range_u64(1, 8) as usize;
            let st = DynamicState::new();
            let claimed: Vec<(u64, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..nthr)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            while let Some(c) = st.next_chunk(total, chunk) {
                                mine.push(c);
                            }
                            mine
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            let mut seen = vec![false; total as usize];
            for (s, e) in claimed {
                for i in s..e {
                    assert!(!seen[i as usize]);
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    /// Guided scheduling covers the space exactly once even under
    /// concurrent claimants (the sequential `guided_cover` below cannot
    /// catch CAS races).
    #[test]
    fn guided_concurrent_cover() {
        for seed in 0..24u64 {
            let mut rng = XorShift64::new(seed);
            let total = rng.range_u64(1, 3000);
            let minc = rng.range_u64(1, 30);
            let nthr = rng.range_u64(2, 8);
            let st = GuidedState::new();
            let claimed: Vec<(u64, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..nthr)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            while let Some(c) = st.next_chunk(total, nthr, minc) {
                                mine.push(c);
                            }
                            mine
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            let mut seen = vec![false; total as usize];
            for (s, e) in claimed {
                assert!(s < e && e <= total);
                for i in s..e {
                    assert!(!seen[i as usize], "iteration {i} assigned twice");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&x| x), "guided chunks must cover the space");
        }
    }

    /// Guided scheduling covers the space exactly, respects min chunk.
    #[test]
    fn guided_cover() {
        for seed in 0..128u64 {
            let mut rng = XorShift64::new(seed);
            let total = rng.range_u64(1, 3000);
            let nthr = rng.range_u64(1, 9);
            let minc = rng.range_u64(1, 30);
            let st = GuidedState::new();
            let mut covered = 0u64;
            while let Some((s, e)) = st.next_chunk(total, nthr, minc) {
                assert_eq!(s, covered);
                let size = e - s;
                assert!(size >= minc.min(total - s), "chunk below minimum");
                covered = e;
            }
            assert_eq!(covered, total);
        }
    }
}
