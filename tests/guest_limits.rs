//! End-to-end guest resource governor tests: hostile guests through the
//! full Runner (OMPi translate → device registry → interpreter) must come
//! back as *typed* limit errors — never a panic, never a hang — with the
//! device salvaged for the next job:
//!
//! * `guest_limit.<kind>` counters appear on the host shim's pid,
//! * live device mappings of the aborted job are released,
//! * the recovery breaker stays untouched (a guest limit is the guest's
//!   fault, not the device's).
//!
//! The `OMPI_GUEST_*` environment variables configure the same limits for
//! uninstrumented binaries; tests here serialize on a lock because env
//! vars are process-global and `Machine::new` reads them at construction.

use std::sync::Mutex;

use ompi_nano::{Ompicc, Runner, RunnerConfig};

/// Serializes tests in this binary: the env-var test mutates process
/// globals that `Runner::new` reads.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-limits-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A guest that maps a buffer with `target data`, then spins forever while
/// the mapping is live.
const HOSTILE_LOOP: &str = r#"
int main() {
    int n = 256;
    float x[256];
    for (int i = 0; i < n; i++) x[i] = 1.0f;
    #pragma omp target data map(tofrom: x[0:n])
    {
        while (1);
    }
    return 0;
}
"#;

#[test]
fn hostile_loop_returns_typed_fuel_error_from_runner() {
    let _g = ENV_LOCK.lock().unwrap();
    let app = Ompicc::new(work("fuel")).compile(HOSTILE_LOOP).unwrap();
    let obs = obs::Obs::enabled();
    let cfg = RunnerConfig { fuel: Some(50_000), obs: Some(obs.clone()), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    let err = runner.run_main().expect_err("an unbounded loop must hit the budget");
    assert_eq!(err.to_string(), "guest limit: guest fuel exhausted (budget 50000 instructions)");
    let host_pid = runner.registry().num_devices() as u64;
    assert_eq!(obs.metrics.counter(host_pid, "guest_limit.fuel"), 1);
    assert!(
        obs.metrics.counter(0, "maps_released") >= 1,
        "the aborted job's live `target data` mapping must be released"
    );
    assert!(!runner.device_broken(), "a guest limit must not latch the breaker");
}

#[test]
fn unbounded_alloc_returns_typed_mem_error_from_runner() {
    let _g = ENV_LOCK.lock().unwrap();
    let src = r#"
int main() {
    while (1) { void* p = malloc(65536); }
    return 0;
}
"#;
    let app = Ompicc::new(work("mem")).compile(src).unwrap();
    let obs = obs::Obs::enabled();
    let cfg =
        RunnerConfig { guest_mem: Some(1 << 20), obs: Some(obs.clone()), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    let err = runner.run_main().expect_err("a leak loop must hit the ceiling");
    assert_eq!(err.to_string(), "guest limit: guest memory limit exceeded (1048576-byte ceiling)");
    let host_pid = runner.registry().num_devices() as u64;
    assert_eq!(obs.metrics.counter(host_pid, "guest_limit.mem"), 1);
    assert!(!runner.device_broken());
}

#[test]
fn job_deadline_returns_typed_error_from_runner() {
    let _g = ENV_LOCK.lock().unwrap();
    let src = "int main() { while (1); return 0; }";
    let app = Ompicc::new(work("deadline")).compile(src).unwrap();
    let obs = obs::Obs::enabled();
    let cfg = RunnerConfig {
        job_timeout: Some(std::time::Duration::from_millis(50)),
        obs: Some(obs.clone()),
        ..Default::default()
    };
    let runner = Runner::new(&app, &cfg).unwrap();
    let t0 = std::time::Instant::now();
    let err = runner.run_main().expect_err("the deadline must interrupt the loop");
    assert_eq!(err.to_string(), "guest limit: guest job deadline exceeded (50 ms)");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "deadline checks ride the fuel checkpoints; 50 ms must not become seconds"
    );
    let host_pid = runner.registry().num_devices() as u64;
    assert_eq!(obs.metrics.counter(host_pid, "guest_limit.deadline"), 1);
    assert!(!runner.device_broken());
}

/// The `OMPI_GUEST_FUEL` env var configures the same governor for runs
/// that never touch `RunnerConfig` (fig4, external harnesses).
#[test]
fn env_var_configures_fuel_budget() {
    let _g = ENV_LOCK.lock().unwrap();
    let app = Ompicc::new(work("env")).compile(HOSTILE_LOOP).unwrap();
    std::env::set_var("OMPI_GUEST_FUEL", "30000");
    let runner = Runner::new(&app, &RunnerConfig::default());
    std::env::remove_var("OMPI_GUEST_FUEL");
    let err = runner.unwrap().run_main().expect_err("env-configured budget must apply");
    assert_eq!(err.to_string(), "guest limit: guest fuel exhausted (budget 30000 instructions)");
}

/// A malformed limit env var is a typed construction error, not a silent
/// unlimited run.
#[test]
fn malformed_limit_env_is_a_construction_error() {
    let _g = ENV_LOCK.lock().unwrap();
    let app = Ompicc::new(work("badenv")).compile("int main() { return 0; }").unwrap();
    std::env::set_var("OMPI_GUEST_FUEL", "lots");
    let r = Runner::new(&app, &RunnerConfig::default());
    std::env::remove_var("OMPI_GUEST_FUEL");
    let e = r.err().expect("a bad budget must not be ignored").to_string();
    assert!(e.contains("OMPI_GUEST_FUEL"), "error must name the variable, got: {e}");
}

/// Limits above real usage are invisible: a governed run is bit-identical
/// to an ungoverned one, on both engines. (The six-app sweep lives in
/// `vm_differential.rs`; gemm here proves the governor doesn't perturb
/// results or the simulated clock.)
#[test]
fn generous_limits_do_not_perturb_results() {
    use minic::interp::Engine;
    use ompi_nano::unibench::{app_by_name, compile_omp, run_once, runner_config};
    use ompi_nano::ExecMode;

    let _g = ENV_LOCK.lock().unwrap();
    let app = app_by_name("gemm").unwrap();
    let n = app.test_size;
    let compiled = compile_omp(&app, &work("parity"));
    let base_cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);

    let baseline = {
        let runner = Runner::new(&compiled, &base_cfg).unwrap();
        run_once(&app, &runner, n).unwrap()
    };
    for engine in [Engine::Vm, Engine::Walker] {
        let cfg = RunnerConfig {
            fuel: Some(200_000_000),
            guest_mem: Some(1 << 32),
            guest_stack: Some(200),
            job_timeout: Some(std::time::Duration::from_secs(600)),
            ..base_cfg.clone()
        };
        let runner = Runner::new(&compiled, &cfg).unwrap();
        runner.machine.set_engine(engine);
        let out = run_once(&app, &runner, n)
            .unwrap_or_else(|e| panic!("generous limits tripped under {engine:?}: {e}"));
        assert_eq!(out.len(), baseline.len());
        for (i, (a, b)) in out.iter().zip(&baseline).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{engine:?}: output[{i}] differs under generous limits ({a} vs {b})"
            );
        }
    }
}
